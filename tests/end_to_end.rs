//! End-to-end integration tests: every clustering × bounding combination
//! over a realistic workload, audited against ground truth.

use nela::cluster::knn::TieBreak;
use nela::{audit_result, BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};

fn system() -> System {
    System::build(&Params {
        k: 5,
        ..Params::scaled(3_000)
    })
}

#[test]
fn every_algorithm_combination_passes_audit() {
    let system = system();
    let hosts = system.host_sequence(25, 3);
    let clusterings = [
        ClusteringAlgo::TConnDistributed,
        ClusteringAlgo::TConnCentralized,
        ClusteringAlgo::Knn(TieBreak::Id),
        ClusteringAlgo::Knn(TieBreak::SmallestDegree),
    ];
    let boundings = [
        BoundingAlgo::Optimal,
        BoundingAlgo::Secure,
        BoundingAlgo::Linear,
        BoundingAlgo::Exponential,
    ];
    for c in clusterings {
        for b in boundings {
            let mut engine = CloakingEngine::new(&system, c, b);
            let mut served = 0;
            for &h in &hosts {
                let Ok(result) = engine.request(h) else {
                    continue;
                };
                served += 1;
                let audit = audit_result(&system, &result);
                assert!(
                    audit.passed(),
                    "audit failed for {c:?}/{b:?} host {h}: {audit:?}"
                );
                assert!(result.cluster_size >= system.params.k);
                assert!(audit.users_in_region >= result.cluster_size);
            }
            assert!(served > 0, "{c:?}/{b:?}: nothing served");
        }
    }
}

#[test]
fn cluster_members_share_the_exact_region() {
    // Reciprocity at the region level: every member of a served cluster
    // requesting later receives byte-identical cloaking.
    let system = system();
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let mut checked = 0;
    for h in system.host_sequence(40, 11) {
        let Ok(first) = engine.request(h) else {
            continue;
        };
        let members = engine
            .registry()
            .cluster_of(h)
            .expect("host registered")
            .cluster
            .members
            .clone();
        for m in members {
            let again = engine.request(m).expect("member request must succeed");
            assert_eq!(
                again.region, first.region,
                "member {m} got a different region"
            );
            assert_eq!(again.clustering_messages, 0);
            assert_eq!(again.bounding_messages, 0);
        }
        checked += 1;
        if checked >= 5 {
            break;
        }
    }
    assert!(checked > 0);
}

#[test]
fn secure_bounding_never_undershoots_any_member() {
    let system = system();
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    for h in system.host_sequence(60, 5) {
        let Ok(result) = engine.request(h) else {
            continue;
        };
        let members = &engine.registry().cluster_of(h).unwrap().cluster.members;
        for &m in members {
            assert!(
                result.region.contains(&system.points[m as usize]),
                "member {m} outside its own cloaked region"
            );
        }
    }
}

#[test]
fn stats_accounting_is_internally_consistent() {
    let system = system();
    let hosts = system.host_sequence(80, 7);
    let stats = nela::metrics::run_workload(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
        &hosts,
    );
    assert_eq!(stats.served + stats.failed, hosts.len());
    assert!(stats.reused <= stats.served);
    let area = stats.avg_cloaked_area.unwrap();
    let request_cost = stats.avg_request_cost.unwrap();
    assert!(stats.avg_cluster_size.unwrap() >= system.params.k as f64);
    assert!(area > 0.0);
    assert!(request_cost > 0.0);
    assert!((stats.failure_rate - stats.failed as f64 / hosts.len() as f64).abs() < 1e-12);
    // Request cost is area-proportional by definition.
    let expected = nela::service_request_cost(area, &system.params);
    assert!(
        (request_cost - expected).abs() / expected < 1e-9,
        "request cost must be the area-proportional model"
    );
}

#[test]
fn same_seed_same_everything() {
    let params = Params {
        k: 5,
        ..Params::scaled(2_000)
    };
    let run = || {
        let system = System::build(&params);
        let hosts = system.host_sequence(30, 1);
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        );
        hosts
            .iter()
            .filter_map(|&h| engine.request(h).ok())
            .map(|r| (r.host, r.region, r.clustering_messages, r.bounding_messages))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1, y.1);
        assert_eq!(x.2, y.2);
        assert_eq!(x.3, y.3);
    }
}
