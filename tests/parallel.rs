//! Batched-request equivalence: `request_many` against the serial
//! `request` loop, and safety invariants of the concurrent path.

use nela::cluster::registry::ClusterRegistry;
use nela::geo::UserId;
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};

fn system() -> System {
    System::build(&Params {
        k: 5,
        ..Params::scaled(2_000)
    })
}

/// Canonical view of the live registry state: each active cluster's sorted
/// membership plus its published region, sorted for order-independence.
type Snapshot = Vec<(Vec<UserId>, Option<(f64, f64, f64, f64)>)>;

fn registry_snapshot(reg: &ClusterRegistry) -> Snapshot {
    let mut snap: Vec<_> = reg
        .active_clusters()
        .map(|(_, c)| {
            let mut members = c.cluster.members.clone();
            members.sort_unstable();
            let region = c.region.map(|r| (r.min_x, r.min_y, r.max_x, r.max_y));
            (members, region)
        })
        .collect();
    snap.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

#[test]
fn single_thread_request_many_matches_request_loop() {
    let s = system();
    let hosts = s.host_sequence(80, 9);

    let mut serial_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let serial: Vec<_> = hosts.iter().map(|&h| serial_engine.request(h)).collect();

    let mut batched_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let batched = batched_engine.request_many(&hosts, 1);

    assert_eq!(serial.len(), batched.len());
    for (a, b) in serial.iter().zip(&batched) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.host, y.host);
                assert_eq!(x.region, y.region);
                assert_eq!(x.cluster_size, y.cluster_size);
                assert_eq!(x.clustering_messages, y.clustering_messages);
                assert_eq!(x.bounding_messages, y.bounding_messages);
                assert_eq!(x.reused, y.reused);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("outcome diverged: {a:?} vs {b:?}"),
        }
    }
    assert_eq!(
        registry_snapshot(serial_engine.registry()),
        registry_snapshot(batched_engine.registry()),
        "single-thread batch must leave the registry exactly as the loop"
    );
}

#[test]
fn concurrent_request_many_preserves_cloaking_invariants() {
    let s = system();
    let hosts = s.host_sequence(120, 17);

    for threads in [2usize, 4, 8] {
        let mut engine =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let outcomes = engine.request_many(&hosts, threads);
        assert_eq!(outcomes.len(), hosts.len());

        let mut served = 0usize;
        for (h, outcome) in hosts.iter().zip(&outcomes) {
            if let Ok(r) = outcome {
                served += 1;
                assert_eq!(r.host, *h);
                assert!(r.cluster_size >= s.params.k, "cluster below k");
                assert!(
                    r.region.contains(&s.points[*h as usize]),
                    "region must cover its host"
                );
            }
        }
        assert!(served > 0, "no request served at {threads} threads");
        // The shared registry must stay mutually consistent: reciprocity
        // (every member of a cluster maps back to it) and no user in two
        // live clusters.
        assert_eq!(
            engine.registry().reciprocity_violation(),
            None,
            "registry corrupted at {threads} threads"
        );
    }
}

#[test]
fn non_tconn_batches_fall_back_to_serial_order() {
    let s = system();
    let hosts = s.host_sequence(40, 23);
    let mut loop_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Optimal);
    let serial: Vec<_> = hosts.iter().map(|&h| loop_engine.request(h)).collect();
    let mut batch_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Optimal);
    let batched = batch_engine.request_many(&hosts, 8);
    for (a, b) in serial.iter().zip(&batched) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.region, y.region);
                assert_eq!(x.reused, y.reused);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("fallback diverged: {a:?} vs {b:?}"),
        }
    }
}
