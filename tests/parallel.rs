//! Batched-request equivalence: `request_many` (sharded and locked paths)
//! against the serial `request` loop, and safety invariants of the
//! concurrent paths.

use nela::cluster::registry::ClusterRegistry;
use nela::geo::UserId;
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, RequestError, System};
use proptest::prelude::*;
use std::sync::OnceLock;

fn system() -> System {
    System::build(&Params {
        k: 5,
        ..Params::scaled(2_000)
    })
}

/// One shared system for the property tests — building it per case would
/// dominate the suite's runtime.
fn shared_system() -> &'static System {
    static SYSTEM: OnceLock<System> = OnceLock::new();
    SYSTEM.get_or_init(system)
}

/// Canonical view of the live registry state: each active cluster's sorted
/// membership plus its published region, sorted for order-independence.
type Snapshot = Vec<(Vec<UserId>, Option<(f64, f64, f64, f64)>)>;

fn registry_snapshot(reg: &ClusterRegistry) -> Snapshot {
    let mut snap: Vec<_> = reg
        .active_clusters()
        .map(|(_, c)| {
            let mut members = c.cluster.members.clone();
            members.sort_unstable();
            let region = c.region.map(|r| (r.min_x, r.min_y, r.max_x, r.max_y));
            (members, region)
        })
        .collect();
    snap.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

#[test]
fn single_thread_request_many_matches_request_loop() {
    let s = system();
    let hosts = s.host_sequence(80, 9);

    let mut serial_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let serial: Vec<_> = hosts.iter().map(|&h| serial_engine.request(h)).collect();

    let mut batched_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let batched = batched_engine.request_many(&hosts, 1);

    assert_eq!(serial.len(), batched.len());
    for (a, b) in serial.iter().zip(&batched) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.host, y.host);
                assert_eq!(x.region, y.region);
                assert_eq!(x.cluster_size, y.cluster_size);
                assert_eq!(x.clustering_messages, y.clustering_messages);
                assert_eq!(x.bounding_messages, y.bounding_messages);
                assert_eq!(x.reused, y.reused);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("outcome diverged: {a:?} vs {b:?}"),
        }
    }
    assert_eq!(
        registry_snapshot(serial_engine.registry()),
        registry_snapshot(batched_engine.registry()),
        "single-thread batch must leave the registry exactly as the loop"
    );
}

#[test]
fn concurrent_request_many_preserves_cloaking_invariants() {
    let s = system();
    let hosts = s.host_sequence(120, 17);

    for threads in [2usize, 4, 8] {
        let mut engine =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let outcomes = engine.request_many(&hosts, threads);
        assert_eq!(outcomes.len(), hosts.len());

        let mut served = 0usize;
        for (h, outcome) in hosts.iter().zip(&outcomes) {
            if let Ok(r) = outcome {
                served += 1;
                assert_eq!(r.host, *h);
                assert!(r.cluster_size >= s.params.k, "cluster below k");
                assert!(
                    r.region.contains(&s.points[*h as usize]),
                    "region must cover its host"
                );
            }
        }
        assert!(served > 0, "no request served at {threads} threads");
        // The shared registry must stay mutually consistent: reciprocity
        // (every member of a cluster maps back to it) and no user in two
        // live clusters.
        assert_eq!(
            engine.registry().reciprocity_violation(),
            None,
            "registry corrupted at {threads} threads"
        );
    }
}

/// Field-by-field equality of two result vectors (errors must match in
/// presence, not necessarily in kind — phase-1 failures are deterministic,
/// so in practice the kinds agree too).
fn assert_results_match(
    serial: &[Result<nela::CloakingResult, RequestError>],
    other: &[Result<nela::CloakingResult, RequestError>],
    label: &str,
) {
    assert_eq!(serial.len(), other.len(), "{label}: length diverged");
    for (a, b) in serial.iter().zip(other) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.host, y.host, "{label}");
                assert_eq!(x.region, y.region, "{label}");
                assert_eq!(x.cluster_size, y.cluster_size, "{label}");
                assert_eq!(x.clustering_messages, y.clustering_messages, "{label}");
                assert_eq!(x.bounding_messages, y.bounding_messages, "{label}");
                assert_eq!(x.reused, y.reused, "{label}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{label}: outcome diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn sharded_one_worker_matches_serial_loop_across_shard_counts() {
    let s = system();
    let hosts = s.host_sequence(80, 9);

    let mut serial_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let serial: Vec<_> = hosts.iter().map(|&h| serial_engine.request(h)).collect();
    let serial_snap = registry_snapshot(serial_engine.registry());

    // The sharded machinery at one worker must be bit-identical to the
    // serial loop for ANY shard layout — sharding only changes who holds
    // which lock, never what is computed.
    for axis in [1usize, 2, 3, 8] {
        let mut engine =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let batched = engine.request_many_sharded(&hosts, 1, axis);
        assert_results_match(&serial, &batched, &format!("axis={axis}"));
        assert_eq!(
            serial_snap,
            registry_snapshot(engine.registry()),
            "registry diverged at axis={axis}"
        );
    }
}

#[test]
fn sharded_and_locked_paths_agree_under_concurrency() {
    let s = system();
    let hosts = s.host_sequence(120, 31);
    for threads in [2usize, 4] {
        let mut locked =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let _ = locked.request_many_locked(&hosts, threads);
        let mut sharded =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let _ = sharded.request_many(&hosts, threads);
        // Concurrent interleavings may attribute work differently, but both
        // paths must uphold the same safety contract.
        assert_eq!(locked.registry().reciprocity_violation(), None);
        assert_eq!(sharded.registry().reciprocity_violation(), None);
    }
}

#[test]
fn depleted_neighborhood_yields_typed_errors_not_panics() {
    // Serve hosts until their neighborhoods deplete (everyone around them
    // is clustered), then keep requesting: every failure must surface as a
    // typed RequestError — never a panic — and the engine must keep serving
    // afterwards.
    let s = System::build(&Params {
        k: 8,
        ..Params::scaled(600)
    });
    let mut engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
    let mut served = 0usize;
    let mut failed = 0usize;
    for h in 0..s.points.len() as UserId {
        match engine.request(h) {
            Ok(r) => {
                served += 1;
                assert!(r.cluster_size >= s.params.k);
            }
            Err(
                RequestError::Cluster(_)
                | RequestError::Bounding(_)
                | RequestError::HostNotClustered,
            ) => failed += 1,
            Err(e) => panic!("unexpected error kind from serial request: {e:?}"),
        }
    }
    assert!(served > 0, "nothing served before depletion");
    assert!(failed > 0, "population never depleted — test is vacuous");
    // The depleted registry must also survive a batch round on both paths.
    let hosts: Vec<UserId> = (0..200).collect();
    for result in engine.request_many(&hosts, 4) {
        if let Err(e) = result {
            assert!(
                matches!(
                    e,
                    RequestError::Cluster(_)
                        | RequestError::Bounding(_)
                        | RequestError::HostNotClustered
                        | RequestError::Contention { .. }
                ),
                "unexpected error kind from batch: {e:?}"
            );
        }
    }
    assert_eq!(engine.registry().reciprocity_violation(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any host sample and shard layout, one sharded worker reproduces
    /// the serial loop exactly; any worker count preserves the invariants.
    #[test]
    fn sharded_batches_equiv_serial_and_safe(
        seed in 0u64..1_000,
        count in 10usize..60,
        axis in 1usize..9,
        threads in 2usize..6,
    ) {
        let s = shared_system();
        let hosts = s.host_sequence(count, seed);

        let mut serial_engine =
            CloakingEngine::new(s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let serial: Vec<_> = hosts.iter().map(|&h| serial_engine.request(h)).collect();

        let mut one =
            CloakingEngine::new(s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let batched = one.request_many_sharded(&hosts, 1, axis);
        assert_results_match(&serial, &batched, &format!("seed={seed} axis={axis}"));
        prop_assert_eq!(
            registry_snapshot(serial_engine.registry()),
            registry_snapshot(one.registry())
        );

        let mut many =
            CloakingEngine::new(s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let outcomes = many.request_many_sharded(&hosts, threads, axis);
        prop_assert_eq!(outcomes.len(), hosts.len());
        for (h, outcome) in hosts.iter().zip(&outcomes) {
            if let Ok(r) = outcome {
                prop_assert_eq!(r.host, *h);
                prop_assert!(r.cluster_size >= s.params.k);
                prop_assert!(r.region.contains(&s.points[*h as usize]));
            }
        }
        prop_assert_eq!(many.registry().reciprocity_violation(), None);
    }
}

/// Differential test for the thread-count invariance promised by
/// `run_workload_threads`: with one host per t-connectivity component the
/// requests touch pairwise disjoint user sets, so no interleaving can change
/// what is computed — served / failed / reused and the exact message totals
/// must be bit-equal to the serial run at every worker count.
#[test]
fn aggregate_stats_are_thread_count_invariant_for_independent_hosts() {
    use nela::metrics::run_workload_threads;
    use nela::wpg::connectivity::{components_under, nothing_removed};
    use nela::wpg::Weight;

    let s = system();
    let mut comps = components_under(&s.wpg, s.params.max_peers as Weight, &nothing_removed);
    // One representative per component, largest components first so most
    // sampled hosts can actually reach k users.
    comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let hosts: Vec<UserId> = comps.iter().take(32).map(|c| c[0]).collect();
    assert!(
        hosts.len() >= 4,
        "graph too connected for a meaningful differential sample"
    );

    let run = |threads| {
        run_workload_threads(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            &hosts,
            threads,
        )
    };
    let serial = run(1);
    assert!(serial.served > 0, "differential baseline served nothing");
    for threads in [2usize, 4, 8] {
        let par = run(threads);
        assert_eq!(serial.served, par.served, "served diverged at {threads}");
        assert_eq!(serial.failed, par.failed, "failed diverged at {threads}");
        assert_eq!(serial.reused, par.reused, "reused diverged at {threads}");
        assert_eq!(
            serial.clustering_messages_total, par.clustering_messages_total,
            "clustering messages diverged at {threads} threads"
        );
        assert_eq!(
            serial.bounding_messages_total, par.bounding_messages_total,
            "bounding messages diverged at {threads} threads"
        );
    }
}

#[test]
fn non_tconn_batches_fall_back_to_serial_order() {
    let s = system();
    let hosts = s.host_sequence(40, 23);
    let mut loop_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Optimal);
    let serial: Vec<_> = hosts.iter().map(|&h| loop_engine.request(h)).collect();
    let mut batch_engine =
        CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Optimal);
    let batched = batch_engine.request_many(&hosts, 8);
    for (a, b) in serial.iter().zip(&batched) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.region, y.region);
                assert_eq!(x.reused, y.reused);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("fallback diverged: {a:?} vs {b:?}"),
        }
    }
}
