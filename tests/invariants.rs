//! Property-based invariants spanning the workspace, driven by proptest.

use nela::bounding::baselines::LinearPolicy;
use nela::bounding::cost::AreaCost;
use nela::bounding::distribution::Uniform;
use nela::bounding::nbound::SecurePolicy;
use nela::bounding::protocol::progressive_upper_bound;
use nela::bounding::unary::{unary_optimal, unary_uniform_area};
use nela::cluster::centralized::centralized_k_clustering;
use nela::cluster::distributed::distributed_k_clustering;
use nela::wpg::connectivity::{are_t_connected, nothing_removed};
use nela::wpg::{Edge, Wpg};
use nela_geo::{Point, Rect, UserId};
use proptest::prelude::*;

/// Strategy: a random undirected weighted graph with `n ≤ 24` vertices and
/// deduplicated edges with weights 1..=6.
fn arb_wpg() -> impl Strategy<Value = Wpg> {
    (4usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(
            (0..n as UserId, 0..n as UserId, 1u32..=6),
            0..max_edges.min(60),
        )
        .prop_map(move |raw| {
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<Edge> = raw
                .into_iter()
                .filter(|&(a, b, _)| a != b)
                .map(|(a, b, w)| Edge::new(a, b, w))
                .filter(|e| seen.insert((e.u, e.v)))
                .collect();
            Wpg::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_is_a_valid_partition(g in arb_wpg(), k in 1usize..6) {
        let r = centralized_k_clustering(&g, k);
        prop_assert!(r.is_partition_of(g.n()));
        for c in &r.clusters {
            prop_assert!(c.len() >= k, "undersized cluster {:?}", c.members);
        }
        for u in &r.underfilled {
            prop_assert!(u.len() < k);
        }
    }

    #[test]
    fn packing_never_produces_undersized_or_oversplit_groups(
        g in arb_wpg(),
        k in 2usize..5,
    ) {
        // The packing pass divides unsplittable t-classes into groups of
        // size ≥ k; no group may fall below k, every group must stay
        // t-connected, and packing must not lose or duplicate members
        // (is_partition_of covers the latter).
        let r = centralized_k_clustering(&g, k);
        prop_assert!(r.is_partition_of(g.n()));
        for c in &r.clusters {
            prop_assert!(c.len() >= k);
            // Groups larger than 2k−1 are only legitimate when the spanning
            // tree had no residual subtree of size ≥ k to carve — accept but
            // sanity-bound against runaway sizes relative to the component.
            let set: std::collections::HashSet<UserId> =
                c.members.iter().copied().collect();
            let outside = |u: UserId| !set.contains(&u);
            for &m in &c.members[1..] {
                prop_assert!(are_t_connected(&g, c.members[0], m, c.connectivity, &outside));
            }
        }
    }

    #[test]
    fn clusters_are_internally_t_connected(g in arb_wpg(), k in 1usize..5) {
        let r = centralized_k_clustering(&g, k);
        for c in &r.clusters {
            let set: std::collections::HashSet<UserId> =
                c.members.iter().copied().collect();
            let outside = |u: UserId| !set.contains(&u);
            for &m in &c.members[1..] {
                prop_assert!(
                    are_t_connected(&g, c.members[0], m, c.connectivity, &outside),
                    "members {} and {} not {}-connected inside the cluster",
                    c.members[0], m, c.connectivity
                );
            }
        }
    }

    #[test]
    fn t_connected_is_an_equivalence_relation(g in arb_wpg(), t in 1u32..7) {
        let n = g.n() as UserId;
        let none = nothing_removed;
        for a in 0..n.min(8) {
            prop_assert!(are_t_connected(&g, a, a, t, &none));
            for b in 0..n.min(8) {
                let ab = are_t_connected(&g, a, b, t, &none);
                prop_assert_eq!(ab, are_t_connected(&g, b, a, t, &none));
                if ab {
                    for c in 0..n.min(8) {
                        if are_t_connected(&g, b, c, t, &none) {
                            prop_assert!(are_t_connected(&g, a, c, t, &none));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_outcome_is_always_valid(g in arb_wpg(), k in 1usize..5, host_raw in 0u32..24) {
        let host = host_raw % g.n() as UserId;
        let none = |_: UserId| false;
        if let Ok(out) = distributed_k_clustering(&g, host, k, &none) {
            prop_assert!(out.host_cluster.contains(host));
            prop_assert!(out.host_cluster.len() >= k);
            // Every produced cluster is valid and inside the super-cluster.
            let mut all: Vec<UserId> = out
                .all_clusters
                .iter()
                .flat_map(|c| c.members.clone())
                .collect();
            all.sort_unstable();
            prop_assert_eq!(all, out.super_cluster);
        }
    }

    #[test]
    fn bounding_always_covers_and_terminates(
        values in proptest::collection::vec(0.0f64..1.0, 1..20),
        step in 0.01f64..0.5,
    ) {
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step)).unwrap();
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(run.bound >= max);
        prop_assert!(run.slack(&values) <= step + 1e-12);
        prop_assert_eq!(run.records.len(), values.len());
        for r in &run.records {
            prop_assert!(values[r.index] <= r.upper);
            prop_assert!(values[r.index] > r.lower - 1e-12 || r.round == 1);
        }
    }

    #[test]
    fn secure_policy_bounding_covers(
        values in proptest::collection::vec(0.0f64..0.05, 2..30),
        span_exp in 1u32..8,
    ) {
        let span = 2f64.powi(-(span_exp as i32)); // 0.5 .. 0.0078
        let mut policy = SecurePolicy::new(
            Uniform::new(span),
            AreaCost { cr: 1.0e7 },
            1.0,
        );
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut policy).unwrap();
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(run.bound >= max);
        prop_assert!(run.rounds < 10_000);
    }

    #[test]
    fn unary_closed_form_is_stationary(
        cb in 0.1f64..10.0,
        cr in 1.0f64..10_000.0,
        span in 0.001f64..1.0,
    ) {
        let closed = unary_uniform_area(cb, cr, span);
        let numeric = unary_optimal(&Uniform::new(span), &AreaCost { cr }, cb);
        prop_assert!((closed.cost - numeric.cost).abs() / numeric.cost < 1e-4,
            "closed {} vs numeric {}", closed.cost, numeric.cost);
    }

    #[test]
    fn rect_bounding_is_tight_and_covering(
        pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let r = Rect::bounding(&points).unwrap();
        for p in &points {
            prop_assert!(r.contains(p));
        }
        // Tightness: every edge of the rectangle touches some point.
        let eps = 1e-12;
        prop_assert!(points.iter().any(|p| (p.x - r.min_x).abs() < eps));
        prop_assert!(points.iter().any(|p| (p.x - r.max_x).abs() < eps));
        prop_assert!(points.iter().any(|p| (p.y - r.min_y).abs() < eps));
        prop_assert!(points.iter().any(|p| (p.y - r.max_y).abs() < eps));
    }

    #[test]
    fn grid_index_agrees_with_linear_scan(
        pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..60),
        radius in 0.01f64..0.3,
        q in 0usize..60,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let q = q % points.len();
        let idx = nela_geo::GridIndex::build(&points, radius.min(0.2));
        let mut got: Vec<UserId> = idx
            .neighbors_within_sorted(q as UserId, radius)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<UserId> = (0..points.len())
            .filter(|&i| i != q && points[q].dist_sq(&points[i]) < radius * radius)
            .map(|i| i as UserId)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
