//! Cross-crate integration: the clustering and bounding protocols running
//! over the simulated radio network (`nela-netsim`) must agree with their
//! analytic counterparts, and degrade gracefully under loss, crashes and
//! concurrency.

use nela::bounding::baselines::LinearPolicy;
use nela::bounding::protocol::{progressive_upper_bound, progressive_upper_bound_with};
use nela::cluster::distributed::{distributed_k_clustering, distributed_k_clustering_with};
use nela::netsim::concurrency::{ConcurrentWorkload, RequestResolution};
use nela::netsim::network::{Network, NetworkConfig};
use nela::netsim::proto::{SimFetch, SimVerify};
use nela::{Params, System};
use nela_geo::UserId;

fn system() -> System {
    System::build(&Params {
        k: 5,
        ..Params::scaled(3_000)
    })
}

fn servable_hosts(system: &System, want: usize) -> Vec<UserId> {
    let none = |_: UserId| false;
    system
        .host_sequence(500, 9)
        .into_iter()
        .filter(|&h| distributed_k_clustering(&system.wpg, h, system.params.k, &none).is_ok())
        .take(want)
        .collect()
}

#[test]
fn simulated_clustering_equals_analytic_clustering() {
    let system = system();
    let none = |_: UserId| false;
    for host in servable_hosts(&system, 5) {
        let analytic = distributed_k_clustering(&system.wpg, host, system.params.k, &none).unwrap();
        let mut net = Network::reliable();
        let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
        let simulated =
            distributed_k_clustering_with(&mut fetch, host, system.params.k, &none).unwrap();
        assert_eq!(analytic.host_cluster, simulated.host_cluster);
        assert_eq!(analytic.involved_users, simulated.involved_users);
        assert_eq!(net.stats().rpcs_ok as usize, simulated.involved_users);
        assert_eq!(net.stats().lost, 0);
    }
}

#[test]
fn lossy_network_changes_cost_but_not_result() {
    let system = system();
    let none = |_: UserId| false;
    let host = servable_hosts(&system, 1)[0];
    let analytic = distributed_k_clustering(&system.wpg, host, system.params.k, &none).unwrap();
    let mut net = Network::new(NetworkConfig {
        loss: 0.2,
        max_retries: 8,
        seed: 5,
        ..Default::default()
    })
    .expect("config is valid");
    let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
    let simulated =
        distributed_k_clustering_with(&mut fetch, host, system.params.k, &none).unwrap();
    assert_eq!(
        analytic.host_cluster, simulated.host_cluster,
        "loss affects transmissions, never the protocol outcome"
    );
    assert!(net.stats().lost > 0, "20% loss should have lost something");
    assert!(net.stats().transmissions > 2 * net.stats().rpcs_ok);
}

#[test]
fn simulated_bounding_equals_local_bounding() {
    let system = system();
    let none = |_: UserId| false;
    let host = servable_hosts(&system, 1)[0];
    let cluster = distributed_k_clustering(&system.wpg, host, system.params.k, &none)
        .unwrap()
        .host_cluster;
    let participants: Vec<(UserId, f64)> = cluster
        .members
        .iter()
        .map(|&m| (m, system.points[m as usize].x))
        .collect();
    let values: Vec<f64> = participants.iter().map(|&(_, v)| v).collect();
    let x0 = system.points[host as usize].x;

    let local = progressive_upper_bound(&values, x0, 0.0, &mut LinearPolicy::new(1e-3)).unwrap();
    let mut net = Network::reliable();
    let mut transport = SimVerify::new(&mut net, host, &participants);
    let simulated =
        progressive_upper_bound_with(&mut transport, x0, 0.0, &mut LinearPolicy::new(1e-3))
            .unwrap();
    assert_eq!(local.bound, simulated.bound);
    assert_eq!(local.rounds, simulated.rounds);
    assert_eq!(local.messages, simulated.messages);
    // The host's own verifications are local; everyone else's cost an RPC.
    assert!(net.stats().rpcs_ok <= local.messages);
}

#[test]
fn concurrent_workload_matches_reciprocity_and_k() {
    let system = system();
    let hosts = servable_hosts(&system, 20);
    let workload = ConcurrentWorkload {
        k: system.params.k,
        max_attempts: 10,
        threads: 4,
    };
    let (registry, resolutions) = workload.run(&system.wpg, &hosts);
    assert_eq!(registry.reciprocity_violation(), None);
    for (host, res) in hosts.iter().zip(&resolutions) {
        match res {
            RequestResolution::Served { cluster, .. } | RequestResolution::Reused { cluster } => {
                assert!(cluster.contains(*host));
                assert!(cluster.len() >= system.params.k);
            }
            RequestResolution::Unservable { .. } | RequestResolution::Contention { .. } => {}
        }
    }
}

#[test]
fn crashed_peer_is_survivable_when_alternatives_exist() {
    // Crash one arbitrary non-neighbor peer: the host's protocol must be
    // unaffected (it never contacts it).
    let system = system();
    let none = |_: UserId| false;
    let host = servable_hosts(&system, 1)[0];
    let analytic = distributed_k_clustering(&system.wpg, host, system.params.k, &none).unwrap();
    // A peer far from the host: the last user id not in the super-cluster.
    let far = (0..system.wpg.n() as UserId)
        .rev()
        .find(|u| analytic.super_cluster.binary_search(u).is_err() && *u != host)
        .unwrap();
    let mut net = Network::reliable();
    net.crash_peer(far);
    let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
    let simulated = distributed_k_clustering_with(&mut fetch, host, system.params.k, &none);
    // Either the protocol never needed the crashed peer (equal result), or
    // it legitimately aborted because the peer was on its contact path.
    if let Ok(sim) = simulated {
        assert_eq!(sim.host_cluster, analytic.host_cluster);
    }
}
