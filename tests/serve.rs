//! Integration tests of the serving subsystem: deterministic replay,
//! zero-shed under covered capacity, multi-worker accounting, and the
//! single-worker session's equivalence to a hand-driven serial pipeline.

use nela::{auto_shard_axis, BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use nela_lbs::{refine_knn, refine_range, CloakedQuery, LbsServer, PoiStore};
use nela_serve::report::answer_hash;
use nela_serve::{run_with_system, QueryKind, QueryMix, ServeConfig};

fn small_system(n: usize) -> System {
    System::build(&Params {
        threads: 1,
        ..Params::scaled(n)
    })
}

/// A config whose queue capacity covers every request, so shedding is
/// impossible and the run is a pure function of the seed.
fn covered_config(seed: u64) -> ServeConfig {
    ServeConfig {
        requests: 80,
        rate: 20_000.0,
        workers: 1,
        queue_capacity: 128,
        seed,
        query: QueryMix::Mixed {
            radius: 0.05,
            k: 4,
            range_frac: 0.5,
        },
        ..ServeConfig::default()
    }
}

#[test]
fn same_seed_replays_identically() {
    let system = small_system(1_500);
    let cfg = covered_config(11);
    let a = run_with_system(&system, &cfg).unwrap();
    let b = run_with_system(&system, &cfg).unwrap();
    assert_eq!(a.shed, 0, "capacity covers all requests");
    assert_eq!(
        (a.served, a.shed, a.failed, a.expired),
        (b.served, b.shed, b.failed, b.expired)
    );
    assert_eq!(
        a.answers_digest, b.answers_digest,
        "per-request answer sets must replay bit-identically"
    );
    assert_eq!(a.mean_transfer_units, b.mean_transfer_units);
}

#[test]
fn different_seed_changes_the_workload() {
    let system = small_system(1_500);
    let a = run_with_system(&system, &covered_config(11)).unwrap();
    let b = run_with_system(&system, &covered_config(12)).unwrap();
    // Different hosts and queries: the digests agreeing would mean the
    // digest is insensitive to the workload.
    assert_ne!(a.answers_digest, b.answers_digest);
}

#[test]
fn single_worker_session_matches_hand_driven_serial_pipeline() {
    let system = small_system(1_500);
    let cfg = covered_config(7);
    let report = run_with_system(&system, &cfg).unwrap();

    // Drive the identical pipeline by hand: same schedule, same shard
    // layout, serial loop. The engine's 1-worker sharded path is pinned
    // equal to the serial path, so the digests must agree.
    let session = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    )
    .into_session(auto_shard_axis(cfg.workers));
    let server = LbsServer::new(PoiStore::from_points(
        &system.points,
        system.params.cr as u32,
    ));
    let mut served = 0usize;
    let mut failed = 0usize;
    let mut digest = 0u64;
    for arrival in nela_serve::schedule(&cfg, system.points.len()) {
        let result = match session.request(arrival.host) {
            Ok(result) => result,
            Err(_) => {
                failed += 1;
                continue;
            }
        };
        let position = system.points[arrival.host as usize];
        let answer = match arrival.query {
            QueryKind::Range(radius) => {
                let resp = server.handle(&result.region, &CloakedQuery::Range { radius });
                refine_range(server.store(), &resp.candidates, position, radius)
            }
            QueryKind::Knn(k) => {
                let resp = server.handle(&result.region, &CloakedQuery::Knn { k });
                refine_knn(server.store(), &resp.candidates, position, k)
            }
        };
        served += 1;
        digest ^= answer_hash(arrival.id, &answer);
    }
    session.finish();

    assert_eq!(report.served, served);
    assert_eq!(report.failed, failed);
    assert_eq!(
        report.answers_digest, digest,
        "the serving loop must compute exactly the serial pipeline's answers"
    );
}

#[test]
fn multi_worker_run_accounts_for_every_arrival() {
    let system = small_system(2_000);
    let cfg = ServeConfig {
        workers: 4,
        requests: 120,
        queue_capacity: 256,
        ..covered_config(3)
    };
    let report = run_with_system(&system, &cfg).unwrap();
    assert_eq!(report.workers, 4);
    assert_eq!(report.admitted + report.shed, report.requests);
    assert_eq!(
        report.served + report.failed + report.expired,
        report.admitted
    );
    assert_eq!(report.shed, 0, "capacity covers all requests");
    assert!(report.served > 0, "a healthy pool serves requests");
    assert!(report.shards >= 4, "auto sharding scales with workers");
    assert_eq!(report.e2e.count, report.served);
    assert!(report.e2e.p50_ns <= report.e2e.p95_ns);
    assert!(report.e2e.p95_ns <= report.e2e.p99_ns);
    assert!(report.e2e.p99_ns <= report.e2e.max_ns);
}

#[test]
fn tiny_queue_under_overload_sheds_but_never_loses_accounting() {
    let system = small_system(1_500);
    let cfg = ServeConfig {
        requests: 150,
        rate: 1_000_000.0, // far beyond service capacity
        workers: 1,
        queue_capacity: 4,
        seed: 5,
        query: QueryMix::Knn { k: 4 },
        ..ServeConfig::default()
    };
    let report = run_with_system(&system, &cfg).unwrap();
    assert!(report.shed > 0, "a 4-deep queue under overload must shed");
    assert_eq!(report.admitted + report.shed, report.requests);
    assert_eq!(
        report.served + report.failed + report.expired,
        report.admitted
    );
    assert!(report.max_queue_depth <= 4);
}
