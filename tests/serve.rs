//! Integration tests of the serving subsystem: deterministic replay,
//! zero-shed under covered capacity, multi-worker accounting, the
//! single-worker session's equivalence to a hand-driven serial pipeline,
//! netsim-transport replay, cross-session carry-over, and property-based
//! shedding/outcome accounting invariants.

use nela::netsim::NetworkConfig;
use nela::{auto_shard_axis, BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use nela_lbs::{refine_knn, refine_range, CloakedQuery, LbsServer, PoiStore};
use nela_serve::report::answer_hash;
use nela_serve::{run_session, run_with_system, QueryKind, QueryMix, ServeConfig, Transport};
use proptest::prelude::*;
use std::sync::OnceLock;

fn small_system(n: usize) -> System {
    System::build(&Params {
        threads: 1,
        ..Params::scaled(n)
    })
}

/// One shared system for the property tests — building the WPG per proptest
/// case would dominate the suite's runtime.
fn shared_system() -> &'static System {
    static SYSTEM: OnceLock<System> = OnceLock::new();
    SYSTEM.get_or_init(|| small_system(1_500))
}

/// A config whose queue capacity covers every request, so shedding is
/// impossible and the run is a pure function of the seed.
fn covered_config(seed: u64) -> ServeConfig {
    ServeConfig {
        requests: 80,
        rate: 20_000.0,
        workers: 1,
        queue_capacity: 128,
        seed,
        query: QueryMix::Mixed {
            radius: 0.05,
            k: 4,
            range_frac: 0.5,
        },
        ..ServeConfig::default()
    }
}

#[test]
fn same_seed_replays_identically() {
    let system = small_system(1_500);
    let cfg = covered_config(11);
    let a = run_with_system(&system, &cfg).unwrap();
    let b = run_with_system(&system, &cfg).unwrap();
    assert_eq!(a.shed, 0, "capacity covers all requests");
    assert_eq!(
        (a.served, a.shed, a.failed, a.expired),
        (b.served, b.shed, b.failed, b.expired)
    );
    assert_eq!(
        a.answers_digest, b.answers_digest,
        "per-request answer sets must replay bit-identically"
    );
    assert_eq!(a.mean_transfer_units, b.mean_transfer_units);
}

#[test]
fn different_seed_changes_the_workload() {
    let system = small_system(1_500);
    let a = run_with_system(&system, &covered_config(11)).unwrap();
    let b = run_with_system(&system, &covered_config(12)).unwrap();
    // Different hosts and queries: the digests agreeing would mean the
    // digest is insensitive to the workload.
    assert_ne!(a.answers_digest, b.answers_digest);
}

#[test]
fn single_worker_session_matches_hand_driven_serial_pipeline() {
    let system = small_system(1_500);
    let cfg = covered_config(7);
    let report = run_with_system(&system, &cfg).unwrap();

    // Drive the identical pipeline by hand: same schedule, same shard
    // layout, serial loop. The engine's 1-worker sharded path is pinned
    // equal to the serial path, so the digests must agree.
    let session = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    )
    .into_session(auto_shard_axis(cfg.workers));
    let server = LbsServer::new(PoiStore::from_points(
        &system.points,
        system.params.cr as u32,
    ));
    let mut served = 0usize;
    let mut failed = 0usize;
    let mut digest = 0u64;
    for arrival in nela_serve::schedule(&cfg, system.points.len()) {
        let result = match session.request(arrival.host) {
            Ok(result) => result,
            Err(_) => {
                failed += 1;
                continue;
            }
        };
        let position = system.points[arrival.host as usize];
        let answer = match arrival.query {
            QueryKind::Range(radius) => {
                let resp = server.handle(&result.region, &CloakedQuery::Range { radius });
                refine_range(server.store(), &resp.candidates, position, radius)
            }
            QueryKind::Knn(k) => {
                let resp = server.handle(&result.region, &CloakedQuery::Knn { k });
                refine_knn(server.store(), &resp.candidates, position, k)
            }
        };
        served += 1;
        digest ^= answer_hash(arrival.id, &answer);
    }
    session.finish();

    assert_eq!(report.served, served);
    assert_eq!(report.failed, failed);
    assert_eq!(
        report.answers_digest, digest,
        "the serving loop must compute exactly the serial pipeline's answers"
    );
}

#[test]
fn multi_worker_run_accounts_for_every_arrival() {
    let system = small_system(2_000);
    let cfg = ServeConfig {
        workers: 4,
        requests: 120,
        queue_capacity: 256,
        ..covered_config(3)
    };
    let report = run_with_system(&system, &cfg).unwrap();
    assert_eq!(report.workers, 4);
    assert_eq!(report.admitted + report.shed, report.requests);
    assert_eq!(
        report.served + report.failed + report.expired,
        report.admitted
    );
    assert_eq!(report.shed, 0, "capacity covers all requests");
    assert!(report.served > 0, "a healthy pool serves requests");
    assert!(report.shards >= 4, "auto sharding scales with workers");
    assert_eq!(report.e2e.count, report.served);
    assert!(report.e2e.p50_ns <= report.e2e.p95_ns);
    assert!(report.e2e.p95_ns <= report.e2e.p99_ns);
    assert!(report.e2e.p99_ns <= report.e2e.max_ns);
    assert!(
        report.e2e.p50_ns.is_some(),
        "served requests have latencies"
    );
}

#[test]
fn tiny_queue_under_overload_sheds_but_never_loses_accounting() {
    let system = small_system(1_500);
    let cfg = ServeConfig {
        requests: 150,
        rate: 1_000_000.0, // far beyond service capacity
        workers: 1,
        queue_capacity: 4,
        seed: 5,
        query: QueryMix::Knn { k: 4 },
        ..ServeConfig::default()
    };
    let report = run_with_system(&system, &cfg).unwrap();
    assert!(report.shed > 0, "a 4-deep queue under overload must shed");
    assert_eq!(report.admitted + report.shed, report.requests);
    assert_eq!(
        report.served + report.failed + report.expired,
        report.admitted
    );
    assert!(report.max_queue_depth <= 4);
}

#[test]
fn netsim_single_worker_replays_bit_identically() {
    let system = small_system(1_500);
    let cfg = ServeConfig {
        transport: Transport::Netsim(NetworkConfig {
            loss: 0.05,
            seed: 21,
            ..NetworkConfig::default()
        }),
        ..covered_config(13)
    };
    let a = run_with_system(&system, &cfg).unwrap();
    let b = run_with_system(&system, &cfg).unwrap();
    assert_eq!(a.shed, 0, "capacity covers all requests");
    assert_eq!(
        (a.served, a.failed, a.expired),
        (b.served, b.failed, b.expired)
    );
    assert_eq!(
        a.answers_digest, b.answers_digest,
        "lossy netsim replay must be bit-identical at a fixed seed"
    );
    let (na, nb) = (a.net.unwrap(), b.net.unwrap());
    assert_eq!(na.transmissions, nb.transmissions);
    assert_eq!(na.retransmits, nb.retransmits);
    assert_eq!(na.timeouts, nb.timeouts);
    assert!(
        na.transmissions > 0,
        "netsim run must put traffic on the air"
    );
}

#[test]
fn netsim_transport_matches_in_process_results_when_lossless() {
    let system = small_system(1_500);
    let cfg = covered_config(17);
    let in_proc = run_with_system(&system, &cfg).unwrap();
    let simmed = run_with_system(
        &system,
        &ServeConfig {
            transport: Transport::Netsim(NetworkConfig::default()),
            ..cfg
        },
    )
    .unwrap();
    // A lossless network never changes a protocol outcome — only adds
    // virtual latency accounting — so the answer digests must agree.
    assert_eq!(in_proc.answers_digest, simmed.answers_digest);
    assert_eq!(in_proc.served, simmed.served);
    assert_eq!(simmed.net.unwrap().rpcs_failed, 0);
}

#[test]
fn zero_survivor_carry_over_serves_bit_identically_to_cold() {
    // Checkpoint taken over system A, resumed against system B (same size,
    // different placement seed): every position differs bitwise, the epoch
    // audit drops every carried cluster, and the resumed session must be
    // indistinguishable from a cold start — counts and digest.
    let a = small_system(1_500);
    let b = System::build(&Params {
        threads: 1,
        seed: 999,
        ..Params::scaled(1_500)
    });
    let cfg = covered_config(19);
    let checkpoint = run_session(&a, &cfg, None).unwrap().checkpoint;
    assert!(checkpoint.active_clusters() > 0);

    let cold = run_session(&b, &cfg, None).unwrap().report;
    let resumed = run_session(&b, &cfg, Some(checkpoint)).unwrap().report;
    assert_eq!(resumed.carried_clusters, 0, "audit must drop everything");
    assert_eq!(
        (cold.served, cold.failed, cold.expired, cold.reused),
        (
            resumed.served,
            resumed.failed,
            resumed.expired,
            resumed.reused
        )
    );
    assert_eq!(
        cold.answers_digest, resumed.answers_digest,
        "zero-survivor resume must replay the cold session bit for bit"
    );
}

#[test]
fn carry_over_lifts_reuse_rate_at_steady_state() {
    let system = small_system(1_500);
    let cfg = ServeConfig {
        requests: 200,
        ..covered_config(23)
    };
    let first = run_session(&system, &cfg, None).unwrap();
    let cold = run_session(&system, &cfg, None).unwrap().report;
    let resumed = run_session(&system, &cfg, Some(first.checkpoint))
        .unwrap()
        .report;
    assert!(resumed.carried_clusters > 0);
    assert!(
        resumed.reuse_rate.unwrap() > cold.reuse_rate.unwrap(),
        "carried clusters must lift the reuse rate: {:?} vs {:?}",
        resumed.reuse_rate,
        cold.reuse_rate
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two conservation laws of the serving loop, under any mix of
    /// overload, worker count, queue depth, deadline pressure, and
    /// carry-over: every arrival is admitted or shed, and every admitted
    /// request reaches exactly one of served / failed / expired.
    #[test]
    fn shedding_accounting_balances_under_any_load(
        rate in (0usize..3).prop_map(|i| [2_000.0f64, 50_000.0, 1_000_000.0][i]),
        workers in 1usize..5,
        cap in (0usize..3).prop_map(|i| [4usize, 32, 256][i]),
        deadline_us in (0u8..2).prop_map(|i| (i == 1).then_some(200u64)),
        carry in (0u8..2).prop_map(|i| i == 1),
        seed in 0u64..1_000,
    ) {
        let system = shared_system();
        let cfg = ServeConfig {
            requests: 40,
            rate,
            workers,
            queue_capacity: cap,
            deadline: deadline_us.map(std::time::Duration::from_micros),
            seed,
            query: QueryMix::Knn { k: 4 },
            ..ServeConfig::default()
        };
        let prior = if carry {
            Some(run_session(system, &cfg, None).unwrap().checkpoint)
        } else {
            None
        };
        let r = run_session(system, &cfg, prior).unwrap().report;
        prop_assert_eq!(r.admitted + r.shed, r.requests, "offered = admitted + shed");
        prop_assert_eq!(
            r.served + r.failed + r.expired,
            r.admitted,
            "served + failed + expired = admitted"
        );
        prop_assert!(r.reused <= r.served, "reuse is a subset of served");
        prop_assert!(r.max_queue_depth <= cap);
        prop_assert_eq!(r.e2e.count, r.served);
        if r.served == 0 {
            prop_assert!(r.e2e.p50_ns.is_none(), "no samples, no percentiles");
        }
    }
}
