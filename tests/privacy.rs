//! Privacy property suite: collusion monotonicity, exposure-threshold
//! monotonicity, and the personalized-k ≡ uniform-k differential.
//!
//! These pin the adversary-model contracts the scenario matrix relies on:
//!
//! - growing a coalition of colluding peers never *widens* the interval it
//!   pins a victim into (knowledge pooling is monotone), and the victim's
//!   true value always stays inside the pooled interval;
//! - exposure counts are monotone in the reporting threshold;
//! - a personalized-k run where every user carries the same `k_i` is
//!   bit-identical to the uniform-k run — same clusters, same regions,
//!   same digests — all the way through the concurrent `EngineSession`.

use nela::bounding::{
    collusion_exposed_interval, collusion_leak_report, leak_report, progressive_upper_bound,
    LinearPolicy,
};
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use proptest::prelude::*;

const EPS: f64 = 1e-12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-victim collusion monotonicity: for any coalition C ⊆ C', the
    /// interval C' pins a victim into is nested inside C's interval, and
    /// the victim's true value lies in both.
    #[test]
    fn growing_a_coalition_never_widens_a_victim_interval(
        values in collection::vec(0.0f64..1.0, 3..24),
        m1 in collection::vec(0u32..2, 24..25),
        m2 in collection::vec(0u32..2, 24..25),
        step in 0.005f64..0.2,
    ) {
        let n = values.len();
        let small: Vec<usize> = (0..n).filter(|&i| m1[i] == 1).collect();
        let big: Vec<usize> = (0..n).filter(|&i| m1[i] == 1 || m2[i] == 1).collect();
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step))
            .expect("honest run succeeds");
        for (v, &value) in values.iter().enumerate() {
            if big.contains(&v) {
                continue;
            }
            let (lo_s, hi_s) = collusion_exposed_interval(&run, &small, v)
                .expect("victim is in the transcript");
            let (lo_b, hi_b) = collusion_exposed_interval(&run, &big, v)
                .expect("victim is in the transcript");
            prop_assert!(
                lo_b >= lo_s - EPS && hi_b <= hi_s + EPS,
                "superset coalition widened victim {v}: ({lo_s}, {hi_s}] -> ({lo_b}, {hi_b}]"
            );
            prop_assert!(
                value <= hi_b + EPS,
                "victim {v} value {value} escaped pooled interval ({lo_b}, {hi_b}]"
            );
            if lo_b.is_finite() {
                prop_assert!(
                    value > lo_b - EPS,
                    "victim {v} value {value} below pooled interval ({lo_b}, {hi_b}]"
                );
            }
        }
    }

    /// The aggregate report's worst width never falls below the narrowest
    /// individual transcript interval — collusion pools knowledge but
    /// cannot mint new precision.
    #[test]
    fn coalition_worst_width_is_transcript_bounded(
        values in collection::vec(0.0f64..1.0, 3..24),
        mask in collection::vec(0u32..2, 24..25),
        step in 0.005f64..0.2,
    ) {
        let n = values.len();
        let coalition: Vec<usize> = (0..n).filter(|&i| mask[i] == 1).collect();
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step))
            .expect("honest run succeeds");
        let lr = leak_report(&run, 0.0);
        let cr = collusion_leak_report(&run, &coalition, 0.0);
        prop_assert!(
            cr.worst_width >= lr.min_width - EPS,
            "coalition width {} beat transcript floor {}",
            cr.worst_width,
            lr.min_width
        );
    }

    /// Exposure counts are monotone in the threshold, for both the
    /// per-user and the coalition report.
    #[test]
    fn exposure_counts_are_monotone_in_threshold(
        values in collection::vec(0.0f64..1.0, 2..24),
        mask in collection::vec(0u32..2, 24..25),
        step in 0.005f64..0.2,
        t1 in 0.0f64..0.6,
        t2 in 0.0f64..0.6,
    ) {
        let n = values.len();
        let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let coalition: Vec<usize> = (0..n).filter(|&i| mask[i] == 1).collect();
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step))
            .expect("honest run succeeds");
        prop_assert!(
            leak_report(&run, lo_t).exposed_below_threshold
                <= leak_report(&run, hi_t).exposed_below_threshold
        );
        prop_assert!(
            collusion_leak_report(&run, &coalition, lo_t).exposed_below_threshold
                <= collusion_leak_report(&run, &coalition, hi_t).exposed_below_threshold
        );
    }
}

/// FNV-1a over the bit patterns of a served workload, so "bit-identical"
/// is checked as a single number per run.
fn digest(results: &[Option<nela::CloakingResult>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in results {
        match r {
            None => mix(u64::MAX),
            Some(r) => {
                mix(r.host as u64);
                mix(r.region.min_x.to_bits());
                mix(r.region.min_y.to_bits());
                mix(r.region.max_x.to_bits());
                mix(r.region.max_y.to_bits());
                mix(r.cluster_size as u64);
                mix(r.required_k as u64);
                mix(r.reused as u64);
            }
        }
    }
    h
}

/// Runs a fixed workload through a concurrent `EngineSession` (single
/// caller, so the serial determinism contract applies) and returns the
/// per-request results.
fn session_workload(
    system: &System,
    k_of: Option<Vec<usize>>,
) -> Vec<Option<nela::CloakingResult>> {
    let mut engine = CloakingEngine::new(
        system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    if let Some(k_of) = k_of {
        engine = engine.with_personalized_k(k_of);
    }
    let session = engine.into_session(2);
    let results = system
        .host_sequence(50, 23)
        .into_iter()
        .map(|h| session.request(h).ok())
        .collect();
    session.finish();
    results
}

/// A personalized-k engine where every user carries the same `k_i` must be
/// bit-identical to the uniform-k engine: same serve/degrade pattern, same
/// regions, same required_k, same digest — through the full concurrent
/// session path.
#[test]
fn personalized_all_equal_is_bit_identical_to_uniform_through_session() {
    for seed in [1u64, 9, 77] {
        let params = Params {
            k: 6,
            seed,
            ..Params::scaled(2_000)
        };
        let system = System::build(&params);
        let uniform = session_workload(&system, None);
        let personalized = session_workload(&system, Some(vec![params.k; 2_000]));
        assert_eq!(
            uniform.len(),
            personalized.len(),
            "workload lengths diverged at seed {seed}"
        );
        for (i, (u, p)) in uniform.iter().zip(&personalized).enumerate() {
            match (u, p) {
                (None, None) => {}
                (Some(u), Some(p)) => {
                    assert_eq!(
                        u.region, p.region,
                        "region diverged at request {i}, seed {seed}"
                    );
                    assert_eq!(
                        u.cluster_size, p.cluster_size,
                        "cluster size diverged at {i}"
                    );
                    assert_eq!(u.required_k, p.required_k, "required_k diverged at {i}");
                    assert_eq!(u.reused, p.reused, "reuse flag diverged at {i}");
                }
                _ => panic!("serve/degrade pattern diverged at request {i}, seed {seed}"),
            }
        }
        assert_eq!(
            digest(&uniform),
            digest(&personalized),
            "digest diverged at seed {seed}"
        );
    }
}

/// Personalized levels genuinely above the uniform k must produce clusters
/// that are audited against the strict member — required_k of a served
/// request is at least the host's own level.
#[test]
fn personalized_required_k_reflects_the_strict_member() {
    let params = Params {
        k: 4,
        seed: 3,
        ..Params::scaled(2_000)
    };
    let system = System::build(&params);
    let levels = nela::personalized_k_levels(2_000, params.k, 5);
    let engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    )
    .with_personalized_k(levels.clone());
    let session = engine.into_session(2);
    let mut served = 0;
    let mut strict_served = 0;
    for h in system.host_sequence(60, 29) {
        if let Ok(r) = session.request(h) {
            served += 1;
            assert!(
                r.required_k >= levels[h as usize],
                "host {h} (k_i = {}) served with required_k {}",
                levels[h as usize],
                r.required_k
            );
            assert!(r.cluster_size >= r.required_k);
            strict_served += usize::from(levels[h as usize] > params.k);
        }
    }
    session.finish();
    assert!(served > 0, "no request served");
    assert!(
        strict_served > 0,
        "workload never exercised a stricter-than-default host"
    );
}
