//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the thin slice of `rand`'s API it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom`] with `shuffle` and
//! `choose`. Semantics match upstream where the workspace depends on them
//! (uniformity, determinism per seed); the exact output streams are **not**
//! bit-identical to upstream `rand` and must not be relied on across crate
//! swaps.

/// Core trait for generators: a source of uniformly random words.
pub trait RngCore {
    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the ChaCha family).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// deterministic, well-mixed, and independent of the seed width.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator (the role of upstream's
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

macro_rules! standard_from_word {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_from_word!(u8, u16, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection on the top of the
/// 64-bit word (Lemire-style widening would also do; rejection keeps it
/// simple and exact).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (upstream `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffle and uniform element choice.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::rngs` namespace for API compatibility.
pub mod rngs {
    /// A small fast non-cryptographic PRNG (xorshift64*), used where upstream
    /// code asks for `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = u64::from_le_bytes(seed);
            if state == 0 {
                state = 0x9E3779B97F4A7C15; // xorshift must not start at 0
            }
            SmallRng { state }
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u32..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(7));
        b.shuffle(&mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut SmallRng::seed_from_u64(1)).is_none());
    }

    #[test]
    fn uniform_below_is_unbiased_enough() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
