//! Offline vendored subset of `serde`.
//!
//! Upstream serde's zero-copy visitor architecture is far more than this
//! workspace needs: every use site serializes small result/parameter structs
//! to JSON or round-trips them in tests. This vendored replacement uses a
//! simple tree model — [`Content`] — with [`Serialize`] producing a tree and
//! [`Deserialize`] consuming one. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the sibling `serde_derive` proc-macro crate)
//! generate field-by-field tree conversions for structs with named fields
//! and for enums with unit/newtype/struct variants, using serde's externally
//! tagged enum representation so the JSON shape matches upstream.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree — the interchange format between `Serialize`,
/// `Deserialize`, and the `serde_json` front end.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    /// Signed integers (also carries unsigned values ≤ `i64::MAX`).
    Int(i64),
    /// Unsigned values above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key–value pairs in insertion order (JSON objects; struct fields).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i128` when it is any integer form.
    pub fn as_integer(&self) -> Option<i128> {
        match self {
            Content::Int(i) => Some(*i as i128),
            Content::UInt(u) => Some(*u as i128),
            // Floats that are exactly integral deserialize into int fields
            // (JSON has one number type).
            Content::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i128),
            _ => None,
        }
    }

    /// The value as `f64` when it is any numeric form.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Content::Int(i) => Some(*i as f64),
            Content::UInt(u) => Some(*u as f64),
            Content::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl std::fmt::Display for Content {
    /// Compact JSON — what `println!("{}", serde_json::json!(...))` prints.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Content::Null => f.write_str("null"),
            Content::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Content::Int(i) => write!(f, "{i}"),
            Content::UInt(u) => write!(f, "{u}"),
            Content::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Content::Float(_) => f.write_str("null"),
            Content::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Content::Seq(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Content::Map(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Content::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor used by generated code.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if *self <= i64::MAX as u64 {
            Content::Int(*self as i64)
        } else {
            Content::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        (*self as u64).to_content()
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---- Deserialize impls ----

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let i = c.as_integer().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {c:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::msg(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_float()
            .ok_or_else(|| DeError::msg(format!("expected number, got {c:?}")))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::msg(format!("expected bool, got {c:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg(format!("expected string, got {c:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::msg(format!("expected array, got {c:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            _ => Err(DeError::msg(format!("expected 2-element array, got {c:?}"))),
        }
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

/// Helpers the derive macro expands to (kept out of the trait namespace).
pub mod __private {
    use super::{Content, DeError};

    /// Struct-field lookup with a missing-field error naming the field.
    pub fn field<'c>(c: &'c Content, ty: &str, name: &str) -> Result<&'c Content, DeError> {
        c.get(name)
            .ok_or_else(|| DeError::msg(format!("missing field `{name}` for {ty}")))
    }

    /// Externally tagged enum dispatch: `"Variant"` or `{"Variant": data}`.
    pub fn variant<'c>(
        c: &'c Content,
        ty: &str,
    ) -> Result<(&'c str, Option<&'c Content>), DeError> {
        match c {
            Content::Str(name) => Ok((name, None)),
            Content::Map(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
            _ => Err(DeError::msg(format!(
                "expected externally tagged {ty} variant, got {c:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn u64_above_i64_max() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_content(&big.to_content()), Ok(big));
    }

    #[test]
    fn int_range_errors() {
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(u32::from_content(&Content::Int(-1)).is_err());
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()), Ok(v));
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(
            Option::<u32>::from_content(&Content::Int(5)),
            Ok(Some(5u32))
        );
    }

    #[test]
    fn float_accepts_integral_json_number() {
        // `1.0` may print as `1.0` but other encoders write `1`.
        assert_eq!(f64::from_content(&Content::Int(1)), Ok(1.0));
    }
}
