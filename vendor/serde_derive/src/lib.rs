//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde subset.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! hand-rolled token walker extracts the type's shape and the impls are
//! emitted as source strings. Supported shapes — the ones the workspace
//! uses — are structs with named fields and enums with unit, newtype, and
//! struct variants; anything else produces a `compile_error!` naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed shape of the deriving type.
enum Shape {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let body = match (&shape, mode) {
                (Shape::Struct { fields }, Mode::Serialize) => ser_struct(&name, fields),
                (Shape::Struct { fields }, Mode::Deserialize) => de_struct(&name, fields),
                (Shape::Enum { variants }, Mode::Serialize) => ser_enum(&name, variants),
                (Shape::Enum { variants }, Mode::Deserialize) => de_enum(&name, variants),
            };
            body.parse().expect("generated impl must parse")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error token"),
    }
}

/// Extracts the type name and shape from the derive input tokens.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"struct" => "struct",
        Some(TokenTree::Ident(id)) if *id.to_string() == *"enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generics (type `{name}`)"
        ));
    }
    // The body group (braces). Tuple structs have a paren group here.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde derive does not support tuple structs (type `{name}`)"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("no body found for type `{name}`")),
        }
    };
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = if kind == "struct" {
        Shape::Struct {
            fields: parse_named_fields(&inner)?,
        }
    } else {
        Shape::Enum {
            variants: parse_variants(&inner)?,
        }
    };
    Ok((name, shape))
}

/// Advances past `#[...]` attributes (incl. doc comments) and `pub`
/// visibility with optional `(crate)` restriction.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // (crate) / (super)
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(tokens, &mut i);
        fields.push(name);
        // Optional trailing comma already consumed by skip_type.
    }
    Ok(fields)
}

/// Advances past a type, stopping after the top-level `,` (or at the end).
/// Tracks `<...>` nesting so commas inside generics don't terminate early.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Parses enum variants.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip discriminant (`= expr`) if present, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Number of fields in a tuple-variant field list (top-level comma count).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                n += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        n -= 1;
    }
    n
}

// ---- Code generation ----

fn ser_struct(name: &str, fields: &[String]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{}])\n\
             }}\n\
         }}",
        pairs.join(", ")
    )
}

fn de_struct(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\
                     ::serde::__private::field(__c, {name:?}, {f:?})?)?"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n\
             }}\n\
         }}",
        inits.join(", ")
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => \
                         ::serde::Content::Str(::std::string::String::from({vname:?})),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::to_content(__f0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_content({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binds = fields.join(", ");
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_content({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Content::Map(::std::vec![{}]))]),",
                        pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            let path = format!("{name}::{vname}");
            match &v.kind {
                VariantKind::Unit => {
                    format!("{vname:?} => ::std::result::Result::Ok({path}),")
                }
                VariantKind::Tuple(1) => format!(
                    "{vname:?} => {{\n\
                         let __d = __data.ok_or_else(|| ::serde::DeError::msg(\
                             format!(\"variant {path} expects data\")))?;\n\
                         ::std::result::Result::Ok({path}(\
                             ::serde::Deserialize::from_content(__d)?))\n\
                     }}"
                ),
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_content(&__items[{k}])?"))
                        .collect();
                    format!(
                        "{vname:?} => {{\n\
                             let __d = __data.ok_or_else(|| ::serde::DeError::msg(\
                                 format!(\"variant {path} expects data\")))?;\n\
                             let ::serde::Content::Seq(__items) = __d else {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::msg(\
                                     format!(\"variant {path} expects an array\")));\n\
                             }};\n\
                             if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::msg(\
                                     format!(\"variant {path} expects {n} elements\")));\n\
                             }}\n\
                             ::std::result::Result::Ok({path}({}))\n\
                         }}",
                        items.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                     ::serde::__private::field(__d, {path:?}, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "{vname:?} => {{\n\
                             let __d = __data.ok_or_else(|| ::serde::DeError::msg(\
                                 format!(\"variant {path} expects fields\")))?;\n\
                             ::std::result::Result::Ok({path} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let (__name, __data) = ::serde::__private::variant(__c, {name:?})?;\n\
                 match __name {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::msg(\
                         format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}
