//! Offline vendored subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro over named strategy inputs, range strategies for
//! integers and floats, tuple strategies, [`collection::vec`],
//! `prop_map`/`prop_flat_map`, `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a deterministic
//! per-test seed (the test name hashed), so failures reproduce; shrinking is
//! not implemented — the failing case's number is reported instead.

/// Test-case generation config.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (returned by `prop_assert!` through the test body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples the
    /// result (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span.max(1)) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy: length drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Asserts inside a property body; failures abort only the current case
/// with context rather than unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __base = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __base ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e.0
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn tuples_and_map(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| collection::vec(0u64..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let a = Strategy::sample(&strat, &mut crate::TestRng::new(9));
        let b = Strategy::sample(&strat, &mut crate::TestRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn just_yields_value() {
        assert_eq!(Strategy::sample(&Just(7u8), &mut crate::TestRng::new(1)), 7);
    }
}
