//! Offline vendored subset of `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `criterion_group!`/`criterion_main!` —
//! with a simple timing loop instead of criterion's statistical machinery:
//! each benchmark is warmed up once, then timed over `sample_size`
//! batches and reported as mean time per iteration on stdout. Good enough
//! to compare alternatives on the same machine, which is all the repo's
//! benches are used for offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter display value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form (group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Mean wall time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
    iters_done: u64,
    samples: usize,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count so the measurement
    /// lasts long enough to be readable above timer resolution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count taking ≥ ~5 ms.
        let mut iters: u64 = 1;
        let per_once = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || iters >= 1 << 20 {
                break took / iters.max(1) as u32;
            }
            iters *= 8;
        };
        // Measurement: `samples` batches of the calibrated count.
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            total += start.elapsed();
            n += iters;
        }
        self.elapsed_per_iter = if n > 0 { total / n as u32 } else { per_once };
        self.iters_done = n;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement batches (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API compatibility; the simple loop has no fixed
    /// measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.samples, f);
    }

    /// Benchmarks `f` with an input reference, criterion-style.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.samples, |b| f(b, input));
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(name, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        let mut bencher = Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters_done: 0,
            samples,
        };
        f(&mut bencher);
        println!(
            "{label:<50} {:>12} /iter  ({} iterations)",
            format_duration(bencher.elapsed_per_iter),
            bencher.iters_done
        );
    }
}

/// Human-readable duration with criterion-like units.
fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 500).to_string(), "build/500");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn format_duration_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
