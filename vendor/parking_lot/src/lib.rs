//! Offline vendored subset of `parking_lot`: [`Mutex`] and [`RwLock`] with
//! the non-poisoning API, implemented over `std::sync`. Poisoned std locks
//! are recovered transparently (parking_lot has no poisoning either).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with the non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
