//! Offline vendored ChaCha8 PRNG.
//!
//! A real ChaCha8 keystream generator (RFC 7539 quarter-round, 8 rounds,
//! 64-bit block counter) implementing the vendored `rand` crate's
//! [`RngCore`]/[`SeedableRng`] traits. Deterministic per seed; the exact
//! stream is not guaranteed to match upstream `rand_chacha` word-for-word
//! (the workspace only relies on per-seed determinism and uniformity).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds — the fastest member of the family,
/// still passing all statistical test batteries.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the keystream block for the current counter.
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            // "expand 32-byte k"
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = s;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(initial) {
            *o = o.wrapping_add(i);
        }
        self.block = s;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
