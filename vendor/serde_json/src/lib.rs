//! Offline vendored JSON front end for the vendored serde subset.
//!
//! Provides the slice of `serde_json`'s API the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`], the
//! [`json!`] macro, and a [`Value`] type (the serde tree itself). Floats are
//! printed with Rust's shortest-round-trip formatting, so a serialize →
//! parse cycle is lossless and reaches a fixed point after one trip.

pub use serde::Content as Value;
use serde::{DeError, Deserialize, Serialize};

/// Serializes any [`Serialize`] value to its tree form.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, DeError> {
    let value = parse_value(s)?;
    T::from_content(&value)
}

/// Builds a [`Value`] from JSON-like syntax. Supports object and array
/// literals whose values are arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$val) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($val:expr) => { $crate::to_value(&$val) };
}

// ---- Encoding ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(pairs) => write_map(out, pairs, indent, depth),
    }
}

/// Shortest-round-trip float formatting; integral floats keep a `.0` suffix
/// (Rust's `{:?}`) so they re-parse as floats, matching upstream behaviour.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; upstream emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, pairs: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if pairs.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

// ---- Parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(DeError::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(DeError::msg("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| DeError::msg("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| DeError::msg("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(DeError::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(DeError::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(DeError::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| DeError::msg("bad \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| DeError::msg("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError::msg(format!("bad number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Integer overflowing u64: fall back to float like upstream's
            // arbitrary-precision-off mode.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "a": 1,
            "b": json!([1.5, 2.5]),
            "c": json!({ "nested": "x\"y" }),
            "d": Value::Null,
        });
        let text = v.to_string();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"k": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\""), "pretty output: {pretty}");
    }

    #[test]
    fn float_roundtrip_is_fixed_point() {
        for f in [0.002, 1.0, 1e-9, 123.456, -0.1] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "text {text}");
        }
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse_value(r#""a\nA😀""#).unwrap();
        assert_eq!(v, Value::Str("a\nA😀".to_string()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{").is_err());
    }

    #[test]
    fn negative_and_large_numbers() {
        assert_eq!(parse_value("-5").unwrap(), Value::Int(-5));
        assert_eq!(
            parse_value("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse_value("2.5e3").unwrap(), Value::Float(2500.0));
    }
}
