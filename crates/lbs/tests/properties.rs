//! Property-based tests for the LBS query processor.

use nela_geo::{Point, Rect};
use nela_lbs::query::{cloaked_krnn, cloaked_range, refine_knn, refine_range};
use nela_lbs::server::{CloakedQuery, LbsServer};
use nela_lbs::store::PoiStore;
use proptest::prelude::*;

fn arb_store() -> impl Strategy<Value = PoiStore> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20..150).prop_map(|v| {
        let points: Vec<Point> = v.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        PoiStore::from_points(&points, 100)
    })
}

fn arb_region() -> impl Strategy<Value = Rect> {
    (0.0f64..0.8, 0.0f64..0.8, 0.01f64..0.2, 0.01f64..0.2)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_knn_matches_linear_scan(store in arb_store(), qx in 0.0f64..1.0, qy in 0.0f64..1.0, k in 1usize..12) {
        let q = Point::new(qx, qy);
        let got = store.knn(q, k);
        let mut expect: Vec<(f64, u32)> = (0..store.len() as u32)
            .map(|i| (store.get(i).position.dist_sq(&q), i))
            .collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        expect.truncate(k.min(store.len()));
        prop_assert_eq!(got, expect.into_iter().map(|(_, i)| i).collect::<Vec<_>>());
    }

    #[test]
    fn range_matches_linear_scan(store in arb_store(), region in arb_region()) {
        let got = store.range(&region);
        let expect: Vec<u32> = (0..store.len() as u32)
            .filter(|&i| region.contains(&store.get(i).position))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn cloaked_range_refines_exactly(
        store in arb_store(),
        region in arb_region(),
        radius in 0.0f64..0.2,
        px in 0.0f64..1.0,
        py in 0.0f64..1.0,
    ) {
        // Clamp the "true position" into the region (the contract).
        let p = Point::new(
            px.clamp(region.min_x, region.max_x),
            py.clamp(region.min_y, region.max_y),
        );
        let candidates = cloaked_range(&store, &region, radius);
        let refined = refine_range(&store, &candidates, p, radius);
        let exact: Vec<u32> = (0..store.len() as u32)
            .filter(|&i| store.get(i).position.dist(&p) <= radius)
            .collect();
        prop_assert_eq!(refined, exact);
    }

    #[test]
    fn cloaked_krnn_refines_exactly(
        store in arb_store(),
        region in arb_region(),
        k in 1usize..8,
        px in 0.0f64..1.0,
        py in 0.0f64..1.0,
    ) {
        let p = Point::new(
            px.clamp(region.min_x, region.max_x),
            py.clamp(region.min_y, region.max_y),
        );
        let candidates = cloaked_krnn(&store, &region, k);
        let refined = refine_knn(&store, &candidates, p, k);
        prop_assert_eq!(refined, store.knn(p, k));
    }

    // The server façade loses no answers: for a range query through
    // `LbsServer::handle`, refining the response at the true position gives
    // exactly the brute-force scan from that position — the server never saw
    // the position, yet the client recovers the exact answer.
    #[test]
    fn server_range_response_loses_no_answers(
        store in arb_store(),
        region in arb_region(),
        radius in 0.0f64..0.2,
        px in 0.0f64..1.0,
        py in 0.0f64..1.0,
    ) {
        let p = Point::new(
            px.clamp(region.min_x, region.max_x),
            py.clamp(region.min_y, region.max_y),
        );
        let server = LbsServer::new(store);
        let resp = server.handle(&region, &CloakedQuery::Range { radius });
        let refined = refine_range(server.store(), &resp.candidates, p, radius);
        let exact: Vec<u32> = (0..server.store().len() as u32)
            .filter(|&i| server.store().get(i).position.dist(&p) <= radius)
            .collect();
        prop_assert_eq!(refined, exact, "refined range answer must equal brute force");
        // The response accounting covers exactly the candidate contents.
        prop_assert_eq!(resp.transfer_units, server.store().transfer_units(&resp.candidates));
        prop_assert_eq!(server.queries_served(), 1);
    }

    // Same contract for kRNN through the façade: exact k nearest recovered
    // from the cloaked response for any position inside the region.
    #[test]
    fn server_krnn_response_loses_no_answers(
        store in arb_store(),
        region in arb_region(),
        k in 1usize..8,
        px in 0.0f64..1.0,
        py in 0.0f64..1.0,
    ) {
        let p = Point::new(
            px.clamp(region.min_x, region.max_x),
            py.clamp(region.min_y, region.max_y),
        );
        let server = LbsServer::new(store);
        let resp = server.handle(&region, &CloakedQuery::Knn { k });
        let refined = refine_knn(server.store(), &resp.candidates, p, k);
        prop_assert_eq!(refined, server.store().knn(p, k),
            "refined kNN answer must equal brute force");
        prop_assert!(resp.candidates.len() >= k.min(server.store().len()),
            "candidate set must cover the answer size");
    }
}
