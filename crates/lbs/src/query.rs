//! Cloaked-region query processing and client-side refinement.
//!
//! The server receives only a cloaked rectangle and must return a candidate
//! set that is a superset of the exact answer for *any* possible user
//! position inside the rectangle (Casper-style processing, paper \[3\]). The
//! client — who alone knows the true position — refines locally.

use crate::store::PoiStore;
use nela_geo::{Point, Rect};

/// Server-side range query over a cloaked region: a user anywhere in
/// `region` asking for POIs within `radius` of itself is answered by the
/// POIs within `radius` of the *region* (its Minkowski expansion) — the
/// minimal position-oblivious superset for this query class.
pub fn cloaked_range(store: &PoiStore, region: &Rect, radius: f64) -> Vec<u32> {
    assert!(radius >= 0.0, "radius must be non-negative");
    let _span = nela_obs::span(nela_obs::stage::LBS_RANGE);
    let expanded = Rect::new(
        (region.min_x - radius).max(0.0),
        (region.min_y - radius).max(0.0),
        (region.max_x + radius).min(1.0),
        (region.max_y + radius).min(1.0),
    );
    // Rectangle pre-filter, then exact distance-to-rectangle test so the
    // candidate set is tight for the query semantics.
    store
        .range(&expanded)
        .into_iter()
        .filter(|&id| dist_to_rect(store.get(id).position, region) <= radius)
        .collect()
}

/// Server-side k-range-nearest-neighbor (kRNN) query: a candidate set
/// guaranteed to contain the k nearest POIs of every point in `region`.
///
/// Bound: let `d_max` be the largest k-th-NN distance over the region's four
/// corners. For any point p in the region and its nearest corner c,
/// `|pc| ≤ diag(region)`, so p's k-th NN lies within `|pc| + kth(c) ≤ diag +
/// d_max`. All POIs within that distance of the region are returned — a
/// correct, conservative superset (the classic corner bound).
pub fn cloaked_krnn(store: &PoiStore, region: &Rect, k: usize) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    let _span = nela_obs::span(nela_obs::stage::LBS_KRNN);
    let corners = [
        Point::new(region.min_x, region.min_y),
        Point::new(region.min_x, region.max_y),
        Point::new(region.max_x, region.min_y),
        Point::new(region.max_x, region.max_y),
    ];
    let d_max = corners
        .iter()
        .map(|&c| store.kth_nn_dist(c, k))
        .fold(0.0f64, f64::max);
    let diag = region.width().hypot(region.height());
    cloaked_range(store, region, d_max + diag)
}

/// Client-side refinement of a range candidate set: keep candidates within
/// `radius` of the true position.
pub fn refine_range(
    store: &PoiStore,
    candidates: &[u32],
    position: Point,
    radius: f64,
) -> Vec<u32> {
    let _span = nela_obs::span(nela_obs::stage::LBS_REFINE);
    candidates
        .iter()
        .copied()
        .filter(|&id| store.get(id).position.dist(&position) <= radius)
        .collect()
}

/// Client-side refinement of a kRNN candidate set: the exact k nearest
/// among the candidates (ascending by distance, ties by id).
pub fn refine_knn(store: &PoiStore, candidates: &[u32], position: Point, k: usize) -> Vec<u32> {
    let _span = nela_obs::span(nela_obs::stage::LBS_REFINE);
    let mut scored: Vec<(f64, u32)> = candidates
        .iter()
        .map(|&id| (store.get(id).position.dist_sq(&position), id))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

/// Euclidean distance from a point to a rectangle (0 inside).
fn dist_to_rect(p: Point, r: &Rect) -> f64 {
    let dx = (r.min_x - p.x).max(0.0).max(p.x - r.max_x);
    let dy = (r.min_y - p.y).max(0.0).max(p.y - r.max_y);
    dx.hypot(dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn store(n: usize, seed: u64) -> PoiStore {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        PoiStore::from_points(&points, 1000)
    }

    fn random_inner_points(region: &Rect, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    region.min_x + rng.gen::<f64>() * region.width(),
                    region.min_y + rng.gen::<f64>() * region.height(),
                )
            })
            .collect()
    }

    #[test]
    fn cloaked_range_is_superset_for_any_inner_position() {
        let s = store(800, 1);
        let region = Rect::new(0.4, 0.4, 0.48, 0.46);
        let radius = 0.05;
        let candidates = cloaked_range(&s, &region, radius);
        for p in random_inner_points(&region, 25, 9) {
            let exact: Vec<u32> = (0..s.len() as u32)
                .filter(|&i| s.get(i).position.dist(&p) <= radius)
                .collect();
            for id in exact {
                assert!(candidates.contains(&id), "missing POI {id} for {p:?}");
            }
        }
    }

    #[test]
    fn refined_range_equals_direct_query() {
        let s = store(600, 2);
        let region = Rect::new(0.2, 0.7, 0.3, 0.78);
        let radius = 0.04;
        let candidates = cloaked_range(&s, &region, radius);
        for p in random_inner_points(&region, 10, 5) {
            let refined = refine_range(&s, &candidates, p, radius);
            let exact: Vec<u32> = (0..s.len() as u32)
                .filter(|&i| s.get(i).position.dist(&p) <= radius)
                .collect();
            assert_eq!(refined, exact);
        }
    }

    #[test]
    fn cloaked_krnn_contains_knn_of_every_inner_position() {
        let s = store(700, 3);
        let region = Rect::new(0.55, 0.3, 0.62, 0.37);
        for k in [1usize, 5, 10] {
            let candidates = cloaked_krnn(&s, &region, k);
            for p in random_inner_points(&region, 20, 11) {
                let exact = s.knn(p, k);
                for id in &exact {
                    assert!(candidates.contains(id), "k={k}: missing {id} for {p:?}");
                }
                assert_eq!(refine_knn(&s, &candidates, p, k), exact);
            }
        }
    }

    #[test]
    fn krnn_candidates_are_not_everything() {
        // The superset must stay far smaller than the dataset for a small
        // region — otherwise cloaking would be pointless.
        let s = store(2000, 4);
        let region = Rect::new(0.5, 0.5, 0.52, 0.52);
        let candidates = cloaked_krnn(&s, &region, 5);
        assert!(
            candidates.len() < s.len() / 4,
            "{} of {} returned",
            candidates.len(),
            s.len()
        );
    }

    #[test]
    fn dist_to_rect_basics() {
        let r = Rect::new(0.2, 0.2, 0.4, 0.4);
        assert_eq!(dist_to_rect(Point::new(0.3, 0.3), &r), 0.0);
        assert!((dist_to_rect(Point::new(0.5, 0.3), &r) - 0.1).abs() < 1e-12);
        let d = dist_to_rect(Point::new(0.5, 0.5), &r);
        assert!((d - (0.1f64.hypot(0.1))).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_range_returns_pois_inside_region_only() {
        let s = store(400, 6);
        let region = Rect::new(0.1, 0.1, 0.5, 0.5);
        let got = cloaked_range(&s, &region, 0.0);
        let expect = s.range(&region);
        assert_eq!(got, expect);
    }
}
