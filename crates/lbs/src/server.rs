//! The LBS server façade with transfer accounting.

use crate::query::{cloaked_krnn, cloaked_range};
use crate::store::PoiStore;
use nela_geo::Rect;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A service request as the server sees it: a cloaked region and a query —
/// never a position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CloakedQuery {
    /// "POIs within `radius` of me."
    Range { radius: f64 },
    /// "My `k` nearest POIs."
    Knn { k: usize },
}

/// A server response: candidate POI ids plus the transfer cost of shipping
/// their content.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Candidate POI ids (a guaranteed superset of the exact answer for any
    /// position inside the requested region).
    pub candidates: Vec<u32>,
    /// Total content units transferred (the paper's service-request
    /// communication cost).
    pub transfer_units: u64,
}

/// The untrusted LBS server: holds the POI dataset, answers cloaked
/// queries, and keeps aggregate accounting.
///
/// The store is immutable and the accounting is atomic, so one server can
/// be shared by any number of concurrent workers ([`LbsServer::handle`]
/// takes `&self`) — the serving subsystem drives it from a worker pool.
#[derive(Debug)]
pub struct LbsServer {
    store: PoiStore,
    queries_served: AtomicU64,
    total_transfer: AtomicU64,
}

impl LbsServer {
    /// Creates a server over a POI dataset.
    pub fn new(store: PoiStore) -> Self {
        LbsServer {
            store,
            queries_served: AtomicU64::new(0),
            total_transfer: AtomicU64::new(0),
        }
    }

    /// The underlying dataset.
    pub fn store(&self) -> &PoiStore {
        &self.store
    }

    /// Handles one cloaked query.
    pub fn handle(&self, region: &Rect, query: &CloakedQuery) -> Response {
        let _span = nela_obs::span(nela_obs::stage::LBS_HANDLE);
        let candidates = match query {
            CloakedQuery::Range { radius } => cloaked_range(&self.store, region, *radius),
            CloakedQuery::Knn { k } => cloaked_krnn(&self.store, region, *k),
        };
        let transfer_units = self.store.transfer_units(&candidates);
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        self.total_transfer
            .fetch_add(transfer_units, Ordering::Relaxed);
        nela_obs::add(nela_obs::counter::LBS_QUERIES, 1);
        nela_obs::add(nela_obs::counter::LBS_CANDIDATES, candidates.len() as u64);
        Response {
            candidates,
            transfer_units,
        }
    }

    /// Queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Total content units transferred across all queries.
    pub fn total_transfer(&self) -> u64 {
        self.total_transfer.load(Ordering::Relaxed)
    }

    /// Mean transfer units per query, `None` before any query was served —
    /// an idle server has no average to report (a `0.0/0` here would be NaN,
    /// and fabricating `0.0` would make an unused server look free).
    pub fn mean_transfer(&self) -> Option<f64> {
        let served = self.queries_served();
        (served > 0).then(|| self.total_transfer() as f64 / served as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{refine_knn, refine_range};
    use nela_geo::Point;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn server(n: usize, seed: u64) -> LbsServer {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        LbsServer::new(PoiStore::from_points(&points, 1000))
    }

    #[test]
    fn end_to_end_range_roundtrip() {
        let srv = server(1000, 1);
        let position = Point::new(0.33, 0.61);
        let region = Rect::new(0.30, 0.58, 0.36, 0.64); // cloak around it
        let radius = 0.03;
        let resp = srv.handle(&region, &CloakedQuery::Range { radius });
        let refined = refine_range(srv.store(), &resp.candidates, position, radius);
        let exact: Vec<u32> = (0..srv.store().len() as u32)
            .filter(|&i| srv.store().get(i).position.dist(&position) <= radius)
            .collect();
        assert_eq!(refined, exact);
        assert_eq!(resp.transfer_units, 1000 * resp.candidates.len() as u64);
    }

    #[test]
    fn end_to_end_knn_roundtrip() {
        let srv = server(1000, 2);
        let position = Point::new(0.7, 0.2);
        let region = Rect::new(0.68, 0.18, 0.73, 0.23);
        let resp = srv.handle(&region, &CloakedQuery::Knn { k: 7 });
        let refined = refine_knn(srv.store(), &resp.candidates, position, 7);
        assert_eq!(refined, srv.store().knn(position, 7));
    }

    #[test]
    fn larger_region_costs_more() {
        let srv = server(2000, 3);
        let small = Rect::new(0.5, 0.5, 0.52, 0.52);
        let large = Rect::new(0.4, 0.4, 0.62, 0.62);
        let a = srv.handle(&small, &CloakedQuery::Range { radius: 0.01 });
        let b = srv.handle(&large, &CloakedQuery::Range { radius: 0.01 });
        assert!(b.transfer_units > a.transfer_units);
        assert_eq!(srv.queries_served(), 2);
        assert_eq!(srv.total_transfer(), a.transfer_units + b.transfer_units);
        assert!(srv.mean_transfer().unwrap() > 0.0);
    }

    #[test]
    fn idle_server_has_no_mean_transfer() {
        let srv = server(100, 4);
        assert_eq!(srv.queries_served(), 0);
        assert_eq!(srv.mean_transfer(), None);
    }

    #[test]
    fn shared_server_accounts_exactly_under_concurrency() {
        let srv = server(500, 5);
        let region = Rect::new(0.4, 0.4, 0.5, 0.5);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        srv.handle(&region, &CloakedQuery::Knn { k: 3 });
                    }
                });
            }
        });
        assert_eq!(srv.queries_served(), 100);
        // Same region + query every time: the mean is one query's cost.
        let one = srv.handle(&region, &CloakedQuery::Knn { k: 3 });
        assert_eq!(srv.mean_transfer(), Some(one.transfer_units as f64));
    }
}
