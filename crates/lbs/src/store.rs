//! Grid-indexed POI storage with exact spatial queries.

use nela_geo::{GridIndex, Point, Rect};
use serde::{Deserialize, Serialize};

/// One point of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Dense id (index into the store).
    pub id: u32,
    /// Location in the unit square.
    pub position: Point,
    /// Category tag (restaurant, gas station, …) for filtered queries.
    pub category: u16,
    /// Content size in message units (the paper's Cr: a POI's content is
    /// ~1000 bounding messages).
    pub content_units: u32,
}

/// An immutable POI dataset with a uniform-grid index.
#[derive(Debug, Clone)]
pub struct PoiStore {
    pois: Vec<Poi>,
    grid: GridIndex,
}

impl PoiStore {
    /// Builds a store over the given POIs. `grid_cell` controls the index
    /// resolution (use the typical query radius).
    pub fn new(pois: Vec<Poi>, grid_cell: f64) -> Self {
        assert!(!pois.is_empty(), "empty POI dataset");
        for (i, p) in pois.iter().enumerate() {
            assert_eq!(p.id as usize, i, "POI ids must be dense indices");
        }
        let points: Vec<Point> = pois.iter().map(|p| p.position).collect();
        PoiStore {
            grid: GridIndex::build(&points, grid_cell),
            pois,
        }
    }

    /// Builds a store where every position is a POI with uniform content
    /// size and a cycling category — the evaluation setup ("each POI
    /// represents a user standing right at its coordinates" and queries run
    /// over the same dataset).
    pub fn from_points(points: &[Point], content_units: u32) -> Self {
        let pois = points
            .iter()
            .enumerate()
            .map(|(i, &position)| Poi {
                id: i as u32,
                position,
                category: (i % 7) as u16,
                content_units,
            })
            .collect();
        PoiStore::new(pois, 5e-3)
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// True when the store is empty (never constructible; for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// All POIs.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// POI by id.
    pub fn get(&self, id: u32) -> &Poi {
        &self.pois[id as usize]
    }

    /// Exact range query: ids of POIs inside `rect`, ascending.
    pub fn range(&self, rect: &Rect) -> Vec<u32> {
        self.grid.ids_in_rect(rect)
    }

    /// Id of the POI nearest to `p` (ties by id).
    pub fn nearest_id(&self, p: Point) -> u32 {
        self.knn(p, 1)[0]
    }

    /// The k nearest POIs to `p` (ascending by distance, ties by id),
    /// via expanding-square search over the grid.
    pub fn knn(&self, p: Point, k: usize) -> Vec<u32> {
        let k = k.min(self.pois.len());
        // Grow a square window until it holds ≥ k POIs, then widen once more
        // by the window's half-diagonal so no closer POI outside the square
        // is missed, and rank exactly.
        let mut half = 0.01f64;
        loop {
            let window = Rect::new(
                (p.x - half).max(0.0),
                (p.y - half).max(0.0),
                (p.x + half).min(1.0),
                (p.y + half).min(1.0),
            );
            if self.grid.count_in_rect(&window) >= k || half >= 2.0 {
                break;
            }
            half *= 2.0;
        }
        // Points within Chebyshev distance `half` are found; their max
        // Euclidean distance is half·√2, so that radius is a safe cover.
        let cover = half * std::f64::consts::SQRT_2;
        let window = Rect::new(
            (p.x - cover).max(0.0),
            (p.y - cover).max(0.0),
            (p.x + cover).min(1.0),
            (p.y + cover).min(1.0),
        );
        let mut scored: Vec<(f64, u32)> = self
            .grid
            .ids_in_rect(&window)
            .into_iter()
            .map(|id| (self.pois[id as usize].position.dist_sq(&p), id))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Distance from `p` to its k-th nearest POI.
    pub fn kth_nn_dist(&self, p: Point, k: usize) -> f64 {
        let ids = self.knn(p, k);
        ids.last()
            .map(|&id| self.pois[id as usize].position.dist(&p))
            .unwrap_or(f64::INFINITY)
    }

    /// Total content units of the given POIs — the transfer cost of
    /// returning them.
    pub fn transfer_units(&self, ids: &[u32]) -> u64 {
        ids.iter()
            .map(|&id| self.pois[id as usize].content_units as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn store(n: usize, seed: u64) -> PoiStore {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        PoiStore::from_points(&points, 1000)
    }

    #[test]
    fn range_matches_linear_scan() {
        let s = store(500, 1);
        for rect in [
            Rect::new(0.1, 0.1, 0.3, 0.25),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.45, 0.45, 0.46, 0.46),
        ] {
            let got = s.range(&rect);
            let expect: Vec<u32> = (0..s.len() as u32)
                .filter(|&i| rect.contains(&s.get(i).position))
                .collect();
            assert_eq!(got, expect, "rect {rect:?}");
        }
    }

    #[test]
    fn knn_is_sorted_and_correct() {
        let s = store(300, 2);
        let q = Point::new(0.5, 0.5);
        let ids = s.knn(q, 10);
        assert_eq!(ids.len(), 10);
        let mut dists: Vec<f64> = ids.iter().map(|&id| s.get(id).position.dist(&q)).collect();
        let sorted = dists.clone();
        dists.sort_by(f64::total_cmp);
        assert_eq!(dists, sorted, "ascending by distance");
        // The 10th distance bounds every non-member.
        let kth = dists[9];
        for i in 0..s.len() as u32 {
            if !ids.contains(&i) {
                assert!(s.get(i).position.dist(&q) >= kth - 1e-15);
            }
        }
    }

    #[test]
    fn nearest_is_knn_first() {
        let s = store(200, 3);
        let q = Point::new(0.123, 0.876);
        assert_eq!(s.nearest_id(q), s.knn(q, 1)[0]);
    }

    #[test]
    fn transfer_units_sum_contents() {
        let s = store(10, 4);
        assert_eq!(s.transfer_units(&[0, 1, 2]), 3000);
        assert_eq!(s.transfer_units(&[]), 0);
    }

    #[test]
    fn kth_nn_dist_matches_knn() {
        let s = store(100, 5);
        let q = Point::new(0.4, 0.6);
        let ids = s.knn(q, 5);
        let expect = s.get(*ids.last().unwrap()).position.dist(&q);
        assert_eq!(s.kth_nn_dist(q, 5), expect);
    }

    #[test]
    #[should_panic(expected = "dense indices")]
    fn rejects_non_dense_ids() {
        let poi = Poi {
            id: 5,
            position: Point::new(0.1, 0.1),
            category: 0,
            content_units: 1,
        };
        PoiStore::new(vec![poi], 0.01);
    }
}
