//! Location-based-service (LBS) server substrate.
//!
//! The cloaking pipeline exists so a user can ask an *untrusted* LBS server
//! for location-dependent content. The paper's evaluation models the
//! service request as "a range query on the same POI dataset" whose
//! transfer cost is proportional to the cloaked region's area (§VI); the
//! Casper line of work it builds on (paper \[3\]) has the server evaluate
//! queries over cloaked regions and return a *candidate superset* that the
//! client refines locally against its true position — the server never
//! learns more than the region.
//!
//! This crate implements that server and client side:
//!
//! - [`store`] — a grid-indexed POI store with exact range and
//!   nearest-neighbor queries,
//! - [`query`] — cloaked-region query processing: range queries over a
//!   region and the k-range-nearest-neighbor (kRNN) operator (Hu & Lee,
//!   cited in the paper's related work) that returns a candidate set
//!   guaranteed to contain the k nearest POIs of *every* point in the
//!   region, plus client-side refinement,
//! - [`server`] — the request/response façade with transfer-cost
//!   accounting, used by the experiments to validate the paper's analytic
//!   `Cr · |D| · area` cost model against an actually executed query.

pub mod query;
pub mod server;
pub mod store;

pub use query::{refine_knn, refine_range};
pub use server::{CloakedQuery, LbsServer, Response};
pub use store::{Poi, PoiStore};
