//! The CLI subcommands.

use crate::args::{ArgError, Args};
use nela::cluster::knn::TieBreak;
use nela::geo::UserId;
use nela::lbs::{refine_knn, CloakedQuery, LbsServer, PoiStore};
use nela::metrics::run_workload_threads;
use nela::netsim::NetworkConfig;
use nela::{
    anonymity_of, audit_result, center_attack, intersection_attack, BoundingAlgo, CloakingEngine,
    ClusteringAlgo, Params, System,
};
use nela_serve::{QueryMix, ServeConfig, Transport};

const COMMON: &[&str] = &[
    "users", "seed", "k", "m", "algo", "bounding", "requests", "host", "json", "knn", "threads",
    "shards", "metrics",
];

/// `--metrics <path>` support: enables the global recorder on construction
/// (so every stage from `System::build` onward is captured) and writes the
/// snapshot on drop — covering every exit path of a subcommand.
struct MetricsSink(Option<String>);

impl MetricsSink {
    fn from(args: &Args) -> Self {
        let path = args.get("metrics").map(str::to_string);
        if path.is_some() {
            nela_obs::enable();
        }
        MetricsSink(path)
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        if let Some(path) = &self.0 {
            let snapshot = nela_obs::snapshot();
            if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                eprintln!("warning: could not write metrics to {path}: {e}");
            }
        }
    }
}

fn build_params(args: &Args) -> Result<Params, ArgError> {
    let users: usize = args.num_or("users", 20_000)?;
    let mut params = Params::scaled(users);
    params.k = args.num_or("k", params.k)?;
    params.max_peers = args.num_or("m", params.max_peers)?;
    params.seed = args.num_or("seed", 1u64)?;
    params.requests = args.num_or("requests", params.requests)?;
    params.threads = args.num_or("threads", 1usize)?.max(1);
    params.shards = args.num_or("shards", 0usize)?; // 0 = auto (≈4 per worker)
    Ok(params)
}

fn clustering_algo(args: &Args) -> Result<ClusteringAlgo, ArgError> {
    match args.get_or("algo", "tconn") {
        "tconn" => Ok(ClusteringAlgo::TConnDistributed),
        "central" => Ok(ClusteringAlgo::TConnCentralized),
        "knn" => Ok(ClusteringAlgo::Knn(TieBreak::Id)),
        "hilbasr" => Ok(ClusteringAlgo::HilbAsr),
        other => Err(ArgError(format!(
            "--algo {other}: expected tconn | central | knn | hilbasr"
        ))),
    }
}

fn bounding_algo(args: &Args) -> Result<BoundingAlgo, ArgError> {
    match args.get_or("bounding", "secure") {
        "secure" => Ok(BoundingAlgo::Secure),
        "optimal" => Ok(BoundingAlgo::Optimal),
        "linear" => Ok(BoundingAlgo::Linear),
        "exp" | "exponential" => Ok(BoundingAlgo::Exponential),
        other => Err(ArgError(format!(
            "--bounding {other}: expected secure | optimal | linear | exp"
        ))),
    }
}

/// Picks the requested host or the first servable one.
fn choose_host(system: &System, args: &Args) -> Result<UserId, ArgError> {
    if let Some(h) = args
        .num_or::<i64>("host", -1)?
        .try_into()
        .ok()
        .filter(|&h: &u32| (h as usize) < system.points.len())
    {
        return Ok(h);
    }
    system
        .host_sequence(500, 7)
        .into_iter()
        .find(|&h| {
            nela::cluster::distributed_k_clustering(&system.wpg, h, system.params.k, &|_| false)
                .is_ok()
        })
        .ok_or_else(|| ArgError("no servable host found in sample".into()))
}

/// `nela inspect`
pub fn inspect(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, COMMON)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let system = System::build(&params);
    let g = &system.wpg;
    let mut degrees: Vec<usize> = (0..g.n() as UserId).map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    let global = nela::cluster::centralized_k_clustering(g, params.k);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "users": g.n(),
                "edges": g.m(),
                "avg_degree": g.avg_degree(),
                "degree_p50": degrees[g.n() / 2],
                "degree_max": degrees[g.n() - 1],
                "isolated_users": degrees.iter().filter(|&&d| d == 0).count(),
                "clusters": global.clusters.len(),
                "clustered_users": global.clusters.iter().map(|c| c.len()).sum::<usize>(),
                "underfilled_components": global.underfilled.len(),
            })
        );
        return Ok(());
    }
    println!("population      : {} users (seed {})", g.n(), params.seed);
    println!("radio range δ   : {:.3e}", params.delta);
    println!("peer cap M      : {}", params.max_peers);
    println!(
        "WPG             : {} edges, avg degree {:.2}",
        g.m(),
        g.avg_degree()
    );
    println!(
        "degrees         : p50 {}, max {}, isolated {}",
        degrees[g.n() / 2],
        degrees[g.n() - 1],
        degrees.iter().filter(|&&d| d == 0).count()
    );
    println!(
        "k-clustering    : {} clusters cover {} users at k = {}; {} components below k",
        global.clusters.len(),
        global.clusters.iter().map(|c| c.len()).sum::<usize>(),
        params.k,
        global.underfilled.len()
    );
    Ok(())
}

/// `nela cloak`
pub fn cloak(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, COMMON)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let system = System::build(&params);
    let mut engine = CloakingEngine::new(&system, clustering_algo(&args)?, bounding_algo(&args)?);
    let host = choose_host(&system, &args)?;
    let result = engine
        .request(host)
        .map_err(|e| ArgError(format!("request failed: {e}")))?;
    let audit = audit_result(&system, &result);
    let anon = anonymity_of(&system, &result.region);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "host": result.host,
                "region": result.region,
                "area": result.region.area(),
                "cluster_size": result.cluster_size,
                "clustering_messages": result.clustering_messages,
                "bounding_messages": result.bounding_messages,
                "bounding_rounds": result.bounding_rounds,
                "audit_passed": audit.passed(),
                "candidates_in_region": anon.candidates,
                "entropy_bits": anon.entropy_bits,
            })
        );
        return Ok(());
    }
    println!("host            : {}", result.host);
    println!(
        "cloaked region  : [{:.6}, {:.6}] × [{:.6}, {:.6}]",
        result.region.min_x, result.region.max_x, result.region.min_y, result.region.max_y
    );
    println!("area            : {:.4e}", result.region.area());
    println!("cluster size    : {}", result.cluster_size);
    println!(
        "messages        : {} clustering + {} bounding ({} rounds)",
        result.clustering_messages, result.bounding_messages, result.bounding_rounds
    );
    println!(
        "anonymity       : {} candidate users in region ({:.2} bits), audit {}",
        anon.candidates,
        anon.entropy_bits,
        if audit.passed() { "PASS" } else { "FAIL" }
    );
    Ok(())
}

/// `nela simulate`
pub fn simulate(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, COMMON)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let system = System::build(&params);
    let hosts = system.host_sequence(params.requests, 1);
    let stats = run_workload_threads(
        &system,
        clustering_algo(&args)?,
        bounding_algo(&args)?,
        &hosts,
        params.threads,
    );
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).expect("serialize")
        );
        return Ok(());
    }
    println!(
        "requests        : {} ({} served, {} failed, {} reused)",
        hosts.len(),
        stats.served,
        stats.failed,
        stats.reused
    );
    if stats.failed > 0 {
        println!(
            "failure rate    : {:.1}% ({} of {} requests failed)",
            stats.failure_rate * 100.0,
            stats.failed,
            stats.served + stats.failed
        );
    }
    let avg = |v: Option<f64>, fmt: fn(f64) -> String| match v {
        Some(v) => fmt(v),
        None => "n/a (no request served)".to_string(),
    };
    println!(
        "clustering msgs : {}",
        avg(stats.avg_clustering_messages, |v| format!(
            "{v:.2} per request"
        ))
    );
    println!(
        "bounding msgs   : {}",
        avg(stats.avg_bounding_messages, |v| format!(
            "{v:.2} per request"
        ))
    );
    println!(
        "cloaked area    : {}",
        avg(stats.avg_cloaked_area, |v| format!("{v:.4e} average"))
    );
    println!(
        "request cost    : {}",
        avg(stats.avg_request_cost, |v| format!("{v:.1} units average"))
    );
    println!(
        "cluster size    : {}",
        avg(stats.avg_cluster_size, |v| format!("{v:.1} average"))
    );
    println!(
        "bounding CPU    : {}",
        avg(stats.avg_bounding_cpu_ms, |v| format!("{v:.4} ms average"))
    );
    Ok(())
}

/// `nela query`
pub fn query(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, COMMON)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let system = System::build(&params);
    let server = LbsServer::new(PoiStore::from_points(&system.points, params.cr as u32));
    let mut engine = CloakingEngine::new(&system, clustering_algo(&args)?, bounding_algo(&args)?);
    let host = choose_host(&system, &args)?;
    let result = engine
        .request(host)
        .map_err(|e| ArgError(format!("request failed: {e}")))?;
    let k: usize = args.num_or("knn", 5)?;
    let response = server.handle(&result.region, &CloakedQuery::Knn { k });
    let me = system.points[host as usize];
    let refined = refine_knn(server.store(), &response.candidates, me, k);
    let exact = server.store().knn(me, k);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "host": host,
                "region_area": result.region.area(),
                "candidates": response.candidates.len(),
                "transfer_units": response.transfer_units,
                "answer": refined,
                "exact": refined == exact,
            })
        );
        return Ok(());
    }
    println!("host            : {host}");
    println!("region area     : {:.4e}", result.region.area());
    println!(
        "server returned : {} candidate POIs ({} transfer units) — it saw only the region",
        response.candidates.len(),
        response.transfer_units
    );
    println!("refined answer  : {refined:?}");
    println!(
        "matches the non-private exact query: {}",
        if refined == exact { "yes" } else { "NO" }
    );
    Ok(())
}

/// `nela attack`
pub fn attack(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, COMMON)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let system = System::build(&params);
    let mut engine = CloakingEngine::new(&system, clustering_algo(&args)?, bounding_algo(&args)?);
    let hosts = system.host_sequence(params.requests, 1);
    let (mut served, mut min_cand, mut violations) = (0usize, usize::MAX, 0usize);
    let mut sum_entropy = 0.0;
    let mut sum_err_ratio = 0.0;
    let (mut leaks, mut trials) = (0usize, 0usize);
    for &h in &hosts {
        let Ok(first) = engine.request(h) else {
            continue;
        };
        served += 1;
        let anon = anonymity_of(&system, &first.region);
        min_cand = min_cand.min(anon.candidates);
        violations += usize::from(!anon.meets_k);
        sum_entropy += anon.entropy_bits;
        let atk = center_attack(&system, &first);
        if atk.half_diagonal > 0.0 {
            sum_err_ratio += atk.guess_error / atk.half_diagonal;
        }
        if served % 5 == 0 {
            if let Ok(second) = engine.request(h) {
                trials += 1;
                if intersection_attack(&system, &[first.region, second.region]).len() < params.k {
                    leaks += 1;
                }
            }
        }
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::json!({
                "served": served,
                "min_candidates": min_cand,
                "k_violations": violations,
                "mean_entropy_bits": sum_entropy / served.max(1) as f64,
                "mean_center_error_ratio": sum_err_ratio / served.max(1) as f64,
                "intersection_leaks": leaks,
                "intersection_trials": trials,
            })
        );
        return Ok(());
    }
    println!("served          : {served}");
    println!("k-anonymity     : min {min_cand} candidates, {violations} violations");
    println!(
        "entropy         : {:.2} bits mean",
        sum_entropy / served.max(1) as f64
    );
    println!(
        "center attack   : error/half-diagonal {:.2} mean",
        sum_err_ratio / served.max(1) as f64
    );
    println!("intersection    : {leaks}/{trials} repeat-request leaks below k");
    Ok(())
}

/// `nela mobility`
pub fn mobility(raw: Vec<String>) -> Result<(), ArgError> {
    const FLAGS: &[&str] = &[
        "users",
        "seed",
        "k",
        "m",
        "algo",
        "bounding",
        "json",
        "ticks",
        "rate",
        "stationary",
        "threads",
        "metrics",
    ];
    let args = Args::parse(raw, FLAGS)?;
    let _metrics = MetricsSink::from(&args);
    let mut params = {
        let users: usize = args.num_or("users", 20_000)?;
        let mut p = Params::scaled(users);
        p.k = args.num_or("k", p.k)?;
        p.max_peers = args.num_or("m", p.max_peers)?;
        p.seed = args.num_or("seed", 1u64)?;
        p.threads = args.num_or("threads", 1usize)?.max(1);
        p
    };
    params.requests = 0; // requests arrive as a Poisson stream, not a batch
    let stationary: f64 = args.num_or("stationary", 0.9)?;
    if !(0.0..=1.0).contains(&stationary) {
        return Err(ArgError(format!(
            "--stationary {stationary}: expected a fraction in [0, 1]"
        )));
    }
    let mobility_cfg = nela_mobility::MobilityConfig {
        seed: params.seed ^ 0x6d_6f_62,
        ..nela_mobility::MobilityConfig::with_stationary(stationary)
    };
    let driver = nela_mobility::DriverConfig {
        ticks: args.num_or("ticks", 20)?,
        rate: args.num_or("rate", 25.0)?,
        seed: params.seed ^ 0xC0_FF_EE,
        measure_rebuild: true,
        threads: params.threads,
    };
    let summary = nela_mobility::run_continuous(
        &params,
        &mobility_cfg,
        &driver,
        clustering_algo(&args)?,
        bounding_algo(&args)?,
    );
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize")
        );
        return Ok(());
    }
    println!(
        "population      : {} users ({} mobile), {} ticks",
        summary.population, summary.mobile_users, summary.ticks
    );
    println!(
        "requests        : {} ({} served, {} failed, {} reused)",
        summary.requests, summary.served, summary.failed, summary.reused
    );
    // Rates are `None` (printed "n/a") when nothing was served or the
    // rebuild was never timed — absent data, not a zero rate.
    let rate3 = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"));
    println!("reuse rate      : {}", rate3(summary.reuse_rate));
    println!(
        "validity        : {} of served regions still cover k users",
        rate3(summary.validity_rate)
    );
    println!(
        "invalidations   : {} clusters retired, {} users released",
        summary.invalidated, summary.released
    );
    println!(
        "wpg maintenance : {} faster than rebuild (mean per tick)",
        summary
            .mean_speedup
            .map_or_else(|| "n/a".to_string(), |s| format!("{s:.1}x"))
    );
    Ok(())
}

/// `nela serve` — bounded serving sessions under open-loop Poisson load:
/// admit requests at the offered rate, cloak each (cluster + secure
/// bounding, optionally over the simulated radio), answer it at the LBS
/// over the cloaked region, refine at the true position, and report
/// end-to-end latency and backpressure. With `--sessions N` the sessions
/// are chained through checkpoints, carrying still-valid clusters forward.
pub fn serve(raw: Vec<String>) -> Result<(), ArgError> {
    const FLAGS: &[&str] = &[
        "users",
        "seed",
        "k",
        "m",
        "threads",
        "shards",
        "requests",
        "rate",
        "query",
        "radius",
        "knn",
        "queue",
        "deadline-ms",
        "transport",
        "net-loss",
        "net-seed",
        "sessions",
        "json",
        "metrics",
    ];
    let args = Args::parse(raw, FLAGS)?;
    let _metrics = MetricsSink::from(&args);
    let params = build_params(&args)?;
    let radius: f64 = args.num_or("radius", 0.02)?;
    let k: usize = args.num_or("knn", 5)?;
    let query = match args.get_or("query", "knn") {
        "range" => QueryMix::Range { radius },
        "knn" => QueryMix::Knn { k },
        "mix" | "mixed" => QueryMix::Mixed {
            radius,
            k,
            range_frac: 0.5,
        },
        other => {
            return Err(ArgError(format!(
                "--query {other}: expected range | knn | mix"
            )))
        }
    };
    let transport = match args.get_or("transport", "in-process") {
        "in-process" | "inproc" => Transport::InProcess,
        "netsim" => Transport::Netsim(NetworkConfig {
            loss: args.num_or("net-loss", 0.05f64)?,
            seed: args.num_or("net-seed", 7u64)?,
            ..NetworkConfig::default()
        }),
        other => {
            return Err(ArgError(format!(
                "--transport {other}: expected in-process | netsim"
            )))
        }
    };
    let sessions: usize = args.num_or("sessions", 1usize)?;
    if sessions == 0 {
        return Err(ArgError("--sessions must be at least 1".into()));
    }
    let deadline_ms: u64 = args.num_or("deadline-ms", 0u64)?;
    let config = ServeConfig {
        requests: args.num_or("requests", 200usize)?,
        rate: args.num_or("rate", 500.0f64)?,
        workers: params.threads,
        shards: params.shards,
        queue_capacity: args.num_or("queue", 1_024usize)?,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        seed: params.seed,
        query,
        transport,
    };
    config
        .validate()
        .map_err(|e| ArgError(format!("invalid serve configuration: {e}")))?;
    let system = System::build(&params);
    let mut checkpoint = None;
    let mut reports = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let outcome = nela_serve::run_session(&system, &config, checkpoint.take())
            .map_err(|e| ArgError(format!("invalid serve configuration: {e}")))?;
        checkpoint = Some(outcome.checkpoint);
        reports.push(outcome.report);
    }
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("serialize")
        );
        return Ok(());
    }
    // Stage percentiles are `None` when the stage saw no samples (a
    // deadline-heavy session can legitimately serve nothing).
    let ms = |ns: Option<u64>| match ns {
        Some(ns) => format!("{:.3} ms", ns as f64 / 1e6),
        None => "n/a".to_string(),
    };
    for (i, report) in reports.iter().enumerate() {
        if sessions > 1 {
            println!("--- session {i} ---");
        }
        println!(
            "workload        : {} requests offered at {:.0} req/s ({} workers, {} shards, {} transport)",
            report.requests, report.offered_rps, report.workers, report.shards, report.transport
        );
        println!(
            "admission       : {} admitted, {} shed (queue depth peaked at {})",
            report.admitted, report.shed, report.max_queue_depth
        );
        println!(
            "outcomes        : {} served, {} failed, {} expired",
            report.served, report.failed, report.expired
        );
        println!(
            "carry-over      : {} clusters carried in, {} served from reused regions ({})",
            report.carried_clusters,
            report.reused,
            report
                .reuse_rate
                .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0))
        );
        println!(
            "throughput      : {:.1} req/s sustained over {:.2} s",
            report.sustained_rps, report.wall_s
        );
        println!(
            "e2e latency     : p50 {}, p95 {}, p99 {}, max {}",
            ms(report.e2e.p50_ns),
            ms(report.e2e.p95_ns),
            ms(report.e2e.p99_ns),
            ms(report.e2e.max_ns)
        );
        println!(
            "stage p50       : queue {}, cloak {}, lbs {}, refine {}",
            ms(report.queue_wait.p50_ns),
            ms(report.cloak.p50_ns),
            ms(report.lbs.p50_ns),
            ms(report.refine.p50_ns)
        );
        if let Some(net) = &report.net {
            println!(
                "network         : {} transmissions, {} retransmits, {} timeouts, {} failed rpcs, {:.3} s virtual",
                net.transmissions, net.retransmits, net.timeouts, net.rpcs_failed, net.virtual_s
            );
        }
        let avg = |v: Option<f64>, unit: &str| match v {
            Some(v) => format!("{v:.1} {unit}"),
            None => "n/a (no request served)".to_string(),
        };
        println!(
            "per query       : {} candidates, {} transferred",
            avg(report.mean_candidates, "mean"),
            avg(report.mean_transfer_units, "units mean")
        );
    }
    Ok(())
}

/// `nela stats` — render a metrics snapshot written by `--metrics <path>`.
pub fn stats(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["file", "json"])?;
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("--file <path> is required".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("--file {path}: {e}")))?;
    let snapshot = nela_obs::MetricsSnapshot::from_json(&text)
        .map_err(|e| ArgError(format!("--file {path}: not a metrics snapshot: {e}")))?;
    if args.flag("json") {
        println!("{}", snapshot.to_json());
        return Ok(());
    }
    print!("{}", snapshot.render());
    Ok(())
}

/// `nela robustness` — the adversary & heterogeneity scenario matrix with
/// machine-checked privacy verdicts (see `nela::scenario`).
pub fn robustness(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(
        raw,
        &[
            "users",
            "k",
            "requests",
            "seed",
            "colluders",
            "liars",
            "crash-peers",
            "crash-round",
            "leak-floor",
            "json",
        ],
    )?;
    let base = nela::MatrixConfig::bench();
    let cfg = nela::MatrixConfig {
        n_users: args.num_or("users", base.n_users)?,
        k: args.num_or("k", base.k)?,
        requests: args.num_or("requests", base.requests)?,
        colluders: args.num_or("colluders", base.colluders)?,
        liars: args.num_or("liars", base.liars)?,
        crash_peers: args.num_or("crash-peers", base.crash_peers)?,
        crash_round: args.num_or("crash-round", base.crash_round)?,
        leak_floor: args.num_or("leak-floor", base.leak_floor)?,
        seed: args.num_or("seed", base.seed)?,
    };
    let cells = nela::scenario_matrix(&cfg);
    if args.flag("json") {
        let report = serde_json::json!({ "config": cfg, "cells": cells });
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
        return Ok(());
    }
    println!(
        "scenario matrix: {} users, k = {}, {} requests/cell",
        cfg.n_users, cfg.k, cfg.requests
    );
    let mut passed = 0usize;
    for c in &cells {
        let v = &c.verdict;
        println!(
            "  {:<42} served {:>3}/{:<3} degraded {:>3}  k-anon {}  leak {}  cover {}  collusion {}  recovery {}  {}",
            c.spec.name,
            v.served,
            v.requests,
            v.degraded,
            mark(v.k_anonymity_held),
            mark(v.leak_floor_held),
            mark(v.truthful_coverage),
            mark(v.collusion_bounded_by_transcript),
            mark(v.recovery_sound),
            if c.passed { "PASS" } else { "FAIL" },
        );
        passed += usize::from(c.passed);
    }
    println!(
        "{passed}/{} cells met their adversary's expectation",
        cells.len()
    );
    if passed < cells.len() {
        return Err(ArgError(format!(
            "{} cell(s) failed their privacy verdict",
            cells.len() - passed
        )));
    }
    Ok(())
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}
