//! `nela` — command-line front end for the Non-Exposure Location Anonymity
//! system.
//!
//! ```text
//! nela inspect   [--users N] [--seed S] [--m M]         WPG statistics
//! nela cloak     [--users N] [--k K] [--host ID] ...    one cloaking request
//! nela simulate  [--users N] [--requests S] [--algo A]  full workload + stats
//! nela query     [--users N] [--k K] [--knn Q]          cloak + LBS roundtrip
//! nela attack    [--users N] [--requests S]             adversary evaluation
//! nela mobility  [--users N] [--ticks T] [--rate R]     continuous cloaking under motion
//! nela serve     [--users N] [--rate R] [--threads T]   open-loop serving session
//! nela robustness [--users N] [--k K] [--requests S]    adversary scenario matrix
//! nela stats     --file PATH                             render a --metrics snapshot
//! ```
//!
//! All subcommands accept `--json` for machine-readable output.

mod args;
mod commands;

use args::ArgError;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let rest: Vec<String> = argv.collect();
    let outcome = match command.as_str() {
        "inspect" => commands::inspect(rest),
        "cloak" => commands::cloak(rest),
        "simulate" => commands::simulate(rest),
        "query" => commands::query(rest),
        "attack" => commands::attack(rest),
        "mobility" => commands::mobility(rest),
        "serve" => commands::serve(rest),
        "robustness" => commands::robustness(rest),
        "stats" => commands::stats(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn usage() -> &'static str {
    "nela — non-exposure location anonymity (Hu & Xu, ICDE 2009)

USAGE: nela <command> [flags]

COMMANDS:
  inspect    build the proximity graph and print its statistics
  cloak      serve a single cloaking request end to end
  simulate   run a request workload and print the paper's metrics
  query      cloak, then run a real LBS query over the cloaked region
  attack     evaluate an intercepting adversary over a workload
  mobility   run the continuous pipeline: motion, incremental WPG
             maintenance, cluster invalidation, Poisson requests
             (--ticks T, --rate R, --stationary F)
  serve      run a bounded serving session under open-loop Poisson load:
             cloak, LBS query, refine per request, end-to-end latency
             (--rate R req/s, --requests N, --query range|knn|mix,
             --radius F, --knn K, --queue C, --deadline-ms D;
             --threads sets the worker pool)
  robustness run the adversary & heterogeneity scenario matrix: {uniform,
             personalized} k x {honest, colluders, liars, crash} x
             {uniform, rush-hour} geography, each cell ending in a
             machine-checked privacy verdict (--colluders C, --liars L,
             --crash-peers P, --crash-round R, --leak-floor F; exits
             non-zero if any cell fails its expectation)
  stats      render a metrics snapshot written by --metrics
             (--file PATH, --json to echo the raw snapshot)
  help       show this help

COMMON FLAGS:
  --users N      population size (default 20000; paper: 104770)
  --seed S       master seed (default 1)
  --k K          anonymity level (default 10)
  --m M          max connected peers (default 10)
  --algo A       clustering: tconn | central | knn       (default tconn)
  --bounding B   bounding: secure | optimal | linear | exp (default secure)
  --requests S   workload size (default: scaled Table I)
  --host ID      specific host user id
  --threads T    worker threads for build + batched serving (default 1;
                 the built system is bit-identical to the serial run)
  --metrics P    record per-stage latency histograms and counters, writing
                 the JSON snapshot to P on exit (render with `nela stats`)
  --json         machine-readable output"
}
