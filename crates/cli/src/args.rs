//! Minimal dependency-free flag parsing for the `nela` CLI.
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag` forms.
//! Unknown flags are errors (catching typos beats silently ignoring them).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (after the subcommand), validating every flag
    /// against `allowed`.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        allowed: &[&str],
    ) -> Result<Args, ArgError> {
        let mut options = HashMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            let Some(stripped) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            let (key, inline_value) = match stripped.split_once('=') {
                Some((k, v)) => (k.to_string(), Some(v.to_string())),
                None => (stripped.to_string(), None),
            };
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag `--{key}` (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value = match inline_value {
                Some(v) => v,
                None => match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(), // boolean flag
                },
            };
            if options.insert(key.clone(), value).is_some() {
                return Err(ArgError(format!("flag `--{key}` given twice")));
            }
        }
        Ok(Args { options })
    }

    /// String option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag `--{key}`: cannot parse `{v}`"))),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        matches!(
            self.options.get(key).map(String::as_str),
            Some("true") | Some("1") | Some("yes")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        let a = Args::parse(v(&["--users", "500", "--k=5"]), &["users", "k"]).unwrap();
        assert_eq!(a.num_or("users", 0usize).unwrap(), 500);
        assert_eq!(a.num_or("k", 0usize).unwrap(), 5);
    }

    #[test]
    fn boolean_flags() {
        let a = Args::parse(v(&["--json", "--k", "3"]), &["json", "k"]).unwrap();
        assert!(a.flag("json"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(v(&[]), &["users"]).unwrap();
        assert_eq!(a.num_or("users", 7usize).unwrap(), 7);
        assert_eq!(a.get_or("algo", "tconn"), "tconn");
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Args::parse(v(&["--bogus", "1"]), &["users"]).unwrap_err();
        assert!(err.0.contains("unknown flag"));
    }

    #[test]
    fn rejects_duplicates_and_positionals() {
        assert!(Args::parse(v(&["--k", "1", "--k", "2"]), &["k"]).is_err());
        assert!(Args::parse(v(&["stray"]), &["k"]).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = Args::parse(v(&["--k", "soup"]), &["k"]).unwrap();
        assert!(a.num_or("k", 0usize).is_err());
    }
}
