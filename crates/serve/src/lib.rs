//! `nela-serve` — the end-to-end anonymized LBS serving subsystem.
//!
//! Everything before this crate evaluates the pipeline in *batches*: a host
//! list goes in, a result list comes out, and no single number ever says how
//! long one request took from arrival to answer. This crate is the missing
//! front-end: a long-running, channel-based service that admits host
//! requests from an **open-loop Poisson workload** and drives each through
//! the whole paper pipeline —
//!
//! 1. proximity k-clustering + secure bounding
//!    ([`nela::EngineSession`], the lock-free sharded-registry path),
//! 2. the cloaked-region LBS query
//!    ([`nela_lbs::LbsServer::handle`] — `cloaked_range` / `cloaked_krnn`),
//! 3. client-side refinement (`refine_range` / `refine_knn`)
//!
//! — and reports **one end-to-end latency per request**, plus per-stage
//! latency distributions, sustained throughput, and backpressure accounting
//! (admitted / shed / served / failed / expired).
//!
//! Open loop means arrivals never wait for completions: the arrival times
//! are drawn up front from a seeded exponential inter-arrival stream
//! ([`arrivals`]), the producer enqueues each request at its scheduled
//! instant, and a full queue *sheds* the arrival instead of slowing the
//! generator — the honest way to measure a service under offered load.
//! Deterministic seeded streams (the `seed ^ tag` stream-decoupling
//! convention) keep the workload replayable: with one worker the whole run
//! — served/shed counts and every per-request answer — is bit-identical
//! across runs, which the replay tests pin.
//!
//! Every stage is instrumented with `nela-obs` spans (`serve.request.e2e`,
//! `serve.queue.wait`, `serve.cloak`, the `lbs.*` stages recorded inside
//! `nela-lbs`), so a `--metrics` snapshot of a serve session shows the full
//! path. The `exp_serve` bench binary sweeps offered load × workers ×
//! query type into `BENCH_serve.json`; the `nela serve` CLI subcommand runs
//! one session interactively.

pub mod arrivals;
pub mod config;
pub mod queue;
pub mod report;
pub mod run;

pub use arrivals::{schedule, Arrival, QueryKind};
pub use config::{QueryMix, ServeConfig, ServeConfigError, Transport};
pub use queue::{Pop, Push, RequestQueue};
pub use report::{NetReport, ServeReport, StageStats};
pub use run::{run, run_session, run_with_system, SessionOutcome};
