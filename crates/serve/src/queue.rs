//! A bounded multi-producer multi-consumer request queue with shed-on-full
//! admission — the backpressure point of the serving loop.
//!
//! Open-loop serving must never let a slow worker stall the arrival
//! process, so [`RequestQueue::push`] is non-blocking: a full queue *sheds*
//! the arrival and the producer moves on to the next scheduled one.
//! Workers block on [`RequestQueue::pop`] until an item or shutdown
//! ([`RequestQueue::close`]) arrives; a closed queue still drains — close
//! wakes every worker, but items already admitted are served before the
//! workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Admission outcome of one push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// The item was queued.
    Admitted,
    /// The queue was full (or already closed): the item was dropped.
    Shed,
}

/// Outcome of one blocking pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is closed and fully drained; the worker should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth (backpressure telemetry).
    max_depth: usize,
}

/// The bounded MPMC queue.
pub struct RequestQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> RequestQueue<T> {
    /// Locks the queue state, recovering from lock poisoning. A worker
    /// that panics while holding the lock (a bug in *its* code, not ours)
    /// poisons the mutex; the serving loop must keep admitting and
    /// draining rather than cascade that panic through every producer and
    /// consumer.
    // invariant: every critical section mutates `Inner` in straight-line
    // statements with no panic point between related updates, so a
    // poisoned lock still guards a consistent queue state and recovery is
    // safe.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue admitting at most `capacity` items at once.
    ///
    /// # Panics
    /// Panics on `capacity == 0` — a zero-capacity queue would shed every
    /// arrival. The serving entry points never get here with 0:
    /// `ServeConfig::validate` rejects it as `ServeConfigError::NoQueue`
    /// before any queue is built, so this assert only guards direct
    /// construction in tests and future call sites.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
                max_depth: 0,
            }),
            capacity,
            not_empty: Condvar::new(),
        }
    }

    /// Admits `item` unless the queue is full or closed (then it is shed).
    /// Never blocks.
    pub fn push(&self, item: T) -> Push {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Push::Shed;
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.not_empty.notify_one();
        Push::Admitted
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns [`Pop::Closed`] once the queue is closed *and* fully
    /// drained.
    pub fn pop(&self) -> Pop<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            // invariant: same consistency argument as `lock` — waiting
            // re-acquires the same mutex, so poison recovery is safe here
            // too.
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: further pushes shed, and every blocked worker
    /// wakes to drain the remainder and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// High-water mark of the queue depth over the queue's lifetime.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sheds_when_full_and_when_closed() {
        let q = RequestQueue::new(2);
        assert_eq!(q.push(1), Push::Admitted);
        assert_eq!(q.push(2), Push::Admitted);
        assert_eq!(q.push(3), Push::Shed);
        assert_eq!(q.max_depth(), 2);
        q.close();
        assert_eq!(q.push(4), Push::Shed);
    }

    #[test]
    fn closed_queue_drains_before_reporting_closed() {
        let q = RequestQueue::new(4);
        q.push(10);
        q.push(20);
        q.close();
        assert_eq!(q.pop(), Pop::Item(10));
        assert_eq!(q.pop(), Pop::Item(20));
        assert_eq!(q.pop(), Pop::Closed);
        assert_eq!(q.pop(), Pop::Closed);
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        // A consumer that panics while holding the lock poisons the mutex;
        // the queue must keep serving the remaining producers and workers.
        let q = std::sync::Arc::new(RequestQueue::new(4));
        q.push(1);
        let poisoner = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.inner.lock().expect("first lock is clean");
                panic!("worker dies while holding the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must have panicked");
        assert!(q.inner.is_poisoned(), "lock must actually be poisoned");
        assert_eq!(q.push(2), Push::Admitted, "push must survive poison");
        assert_eq!(q.pop(), Pop::Item(1), "pop must survive poison");
        assert_eq!(q.pop(), Pop::Item(2));
        assert_eq!(q.depth(), 0);
        assert_eq!(q.max_depth(), 2);
        q.close();
        assert_eq!(q.pop(), Pop::Closed);
    }

    #[test]
    fn concurrent_consumers_see_every_item_once() {
        let q = RequestQueue::new(64);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Pop::Item(_) = q.pop() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..200 {
                while q.push(i) == Push::Shed {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        assert_eq!(seen.load(Ordering::Relaxed), 200);
    }
}
