//! Serving-session configuration with typed validation.

use nela::netsim::{ConfigError, NetworkConfig};
use std::time::Duration;

/// How the cloaking protocols move their messages during a session.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Transport {
    /// In-process calls: protocol rounds cost CPU time only (the seed
    /// behaviour — measures the serving machinery itself).
    #[default]
    InProcess,
    /// Every phase-1 fetch and phase-2 verification becomes an RPC over a
    /// simulated radio with this loss/latency/retry model; per-request
    /// retransmit and timeout counts flow into the report.
    Netsim(NetworkConfig),
}

/// Which cloaked query the workload issues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMix {
    /// Every request is a range query with this radius.
    Range {
        /// Query radius in unit-square coordinates.
        radius: f64,
    },
    /// Every request is a k-nearest-neighbor query.
    Knn {
        /// Neighbors requested.
        k: usize,
    },
    /// Per-request coin flip between the two (seeded query stream).
    Mixed {
        /// Range-query radius.
        radius: f64,
        /// kNN query size.
        k: usize,
        /// Fraction of requests that are range queries, in `[0, 1]`.
        range_frac: f64,
    },
}

/// Configuration of one serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total requests the arrival process generates (the session ends after
    /// the last one drains — a bounded run, so sessions always terminate).
    pub requests: usize,
    /// Offered load in requests per second (Poisson arrivals).
    pub rate: f64,
    /// Worker threads pulling requests off the queue.
    pub workers: usize,
    /// Total registry shards (0 = auto, ≈ 4 per worker).
    pub shards: usize,
    /// Bounded queue capacity; an arrival finding it full is shed.
    pub queue_capacity: usize,
    /// Per-request deadline measured from admission: a request still queued
    /// past its deadline is dropped as expired instead of served late.
    /// `None` disables deadline handling.
    pub deadline: Option<Duration>,
    /// Seed for the arrival/host/query streams (decoupled internally).
    pub seed: u64,
    /// The query workload.
    pub query: QueryMix,
    /// Message transport for the cloaking protocols.
    pub transport: Transport,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            requests: 500,
            rate: 500.0,
            workers: 1,
            shards: 0,
            queue_capacity: 1024,
            deadline: None,
            seed: 1,
            query: QueryMix::Knn { k: 5 },
            transport: Transport::InProcess,
        }
    }
}

/// A rejected [`ServeConfig`] with the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeConfigError {
    /// `requests` was zero.
    NoRequests,
    /// `rate` was not a positive finite number.
    BadRate(f64),
    /// `workers` was zero.
    NoWorkers,
    /// `queue_capacity` was zero.
    NoQueue,
    /// A range radius was negative or not finite.
    BadRadius(f64),
    /// A kNN size was zero.
    BadK,
    /// A mixed range fraction fell outside `[0, 1]`.
    BadRangeFrac(f64),
    /// The netsim transport's network config was invalid.
    Network(ConfigError),
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::NoRequests => write!(f, "requests must be positive"),
            ServeConfigError::BadRate(r) => write!(f, "rate {r} must be positive and finite"),
            ServeConfigError::NoWorkers => write!(f, "workers must be positive"),
            ServeConfigError::NoQueue => write!(f, "queue capacity must be positive"),
            ServeConfigError::BadRadius(r) => {
                write!(f, "query radius {r} must be non-negative and finite")
            }
            ServeConfigError::BadK => write!(f, "query k must be positive"),
            ServeConfigError::BadRangeFrac(p) => {
                write!(f, "range fraction {p} must lie in [0, 1]")
            }
            ServeConfigError::Network(e) => write!(f, "network config: {e}"),
        }
    }
}

impl From<ConfigError> for ServeConfigError {
    fn from(e: ConfigError) -> Self {
        ServeConfigError::Network(e)
    }
}

impl std::error::Error for ServeConfigError {}

impl ServeConfig {
    /// Validates every field, returning the first offender.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.requests == 0 {
            return Err(ServeConfigError::NoRequests);
        }
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return Err(ServeConfigError::BadRate(self.rate));
        }
        if self.workers == 0 {
            return Err(ServeConfigError::NoWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ServeConfigError::NoQueue);
        }
        let check_radius = |r: f64| {
            (r.is_finite() && r >= 0.0)
                .then_some(())
                .ok_or(ServeConfigError::BadRadius(r))
        };
        if let Transport::Netsim(net) = self.transport {
            net.validate()?;
        }
        let check_k = |k: usize| (k > 0).then_some(()).ok_or(ServeConfigError::BadK);
        match self.query {
            QueryMix::Range { radius } => check_radius(radius),
            QueryMix::Knn { k } => check_k(k),
            QueryMix::Mixed {
                radius,
                k,
                range_frac,
            } => {
                check_radius(radius)?;
                check_k(k)?;
                (0.0..=1.0)
                    .contains(&range_frac)
                    .then_some(())
                    .ok_or(ServeConfigError::BadRangeFrac(range_frac))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn each_bad_field_is_typed() {
        let ok = ServeConfig::default();
        let cases: Vec<(ServeConfig, ServeConfigError)> = vec![
            (
                ServeConfig {
                    requests: 0,
                    ..ok.clone()
                },
                ServeConfigError::NoRequests,
            ),
            (
                ServeConfig {
                    rate: 0.0,
                    ..ok.clone()
                },
                ServeConfigError::BadRate(0.0),
            ),
            (
                ServeConfig {
                    rate: f64::INFINITY,
                    ..ok.clone()
                },
                ServeConfigError::BadRate(f64::INFINITY),
            ),
            (
                ServeConfig {
                    workers: 0,
                    ..ok.clone()
                },
                ServeConfigError::NoWorkers,
            ),
            (
                ServeConfig {
                    queue_capacity: 0,
                    ..ok.clone()
                },
                ServeConfigError::NoQueue,
            ),
            (
                ServeConfig {
                    query: QueryMix::Range { radius: -0.1 },
                    ..ok.clone()
                },
                ServeConfigError::BadRadius(-0.1),
            ),
            (
                ServeConfig {
                    query: QueryMix::Knn { k: 0 },
                    ..ok.clone()
                },
                ServeConfigError::BadK,
            ),
            (
                ServeConfig {
                    query: QueryMix::Mixed {
                        radius: 0.01,
                        k: 5,
                        range_frac: 1.5,
                    },
                    ..ok.clone()
                },
                ServeConfigError::BadRangeFrac(1.5),
            ),
        ];
        for (cfg, expect) in cases {
            assert_eq!(cfg.validate(), Err(expect));
        }
    }

    #[test]
    fn bad_network_config_is_rejected_as_typed_error() {
        let cfg = ServeConfig {
            transport: Transport::Netsim(NetworkConfig {
                loss: 1.5,
                ..NetworkConfig::default()
            }),
            ..ServeConfig::default()
        };
        assert!(matches!(cfg.validate(), Err(ServeConfigError::Network(_))));
    }

    #[test]
    fn default_netsim_transport_is_valid() {
        let cfg = ServeConfig {
            transport: Transport::Netsim(NetworkConfig::default()),
            ..ServeConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }
}
