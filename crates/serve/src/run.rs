//! The serving loop: producer-paced admission, a worker pool over the
//! sharded cloaking session, and per-request end-to-end measurement.
//!
//! One session is: draw the full arrival schedule ([`crate::schedule`]),
//! start `workers` threads on the [`RequestQueue`], then pace the producer
//! through the schedule in real time — each arrival is enqueued at its
//! scheduled instant or shed if the queue is full. Every admitted request
//! flows through the whole paper pipeline on whichever worker picks it up:
//!
//! ```text
//! queue wait → cloak (EngineSession: clustering + secure bounding)
//!            → LbsServer::handle (cloaked range / kRNN over the region)
//!            → refine_range / refine_knn at the true position
//! ```
//!
//! and contributes one end-to-end latency (admission → refined answer).
//! After the last arrival the queue closes, workers drain it and exit, and
//! the session folds its sharded registry back into the engine
//! ([`nela::EngineSession::finish`]) so reciprocity audits still hold.
//!
//! With one worker the run is deterministic end to end: FIFO admission,
//! serial service, and the engine's single-worker sharded path is pinned
//! equal to the serial request loop — so served/shed counts and the
//! order-independent answer digest replay exactly (shed is timing-free only
//! when the queue capacity covers all requests; the replay tests use that).

use crate::arrivals::{schedule, QueryKind};
use crate::config::{ServeConfig, ServeConfigError, Transport};
use crate::queue::{Pop, Push, RequestQueue};
use crate::report::{answer_hash, NetReport, ServeReport, StageStats};
use nela::{
    auto_shard_axis, shard_axis_for_total, BoundingAlgo, CarryOver, CloakingEngine, ClusteringAlgo,
    EngineSession, Params, SessionCheckpoint, System,
};
use nela_geo::{Point, UserId};
use nela_lbs::{refine_knn, refine_range, CloakedQuery, LbsServer, PoiStore};
use std::time::{Duration, Instant};

/// One admitted request in flight.
struct Job {
    id: u32,
    host: UserId,
    query: QueryKind,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// What one worker measured; merged into the report after the join.
#[derive(Default)]
struct WorkerLog {
    e2e: Vec<u64>,
    queue_wait: Vec<u64>,
    cloak: Vec<u64>,
    lbs: Vec<u64>,
    refine: Vec<u64>,
    served: usize,
    failed: usize,
    expired: usize,
    /// Served requests answered from an already-bounded region.
    reused: usize,
    candidates: u64,
    digest: u64,
    /// Offset of this worker's last completion from session start.
    last_done: Duration,
}

fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Answers one cloaked query and refines it at the true position. Returns
/// (candidate count, refined answer, lbs ns, refine ns).
fn answer(
    server: &LbsServer,
    region: &nela_geo::Rect,
    position: Point,
    query: QueryKind,
) -> (usize, Vec<u32>, u64, u64) {
    let lbs_start = Instant::now();
    match query {
        QueryKind::Range(radius) => {
            let resp = server.handle(region, &CloakedQuery::Range { radius });
            let refine_start = Instant::now();
            let ans = refine_range(server.store(), &resp.candidates, position, radius);
            (
                resp.candidates.len(),
                ans,
                ns(refine_start - lbs_start),
                ns(refine_start.elapsed()),
            )
        }
        QueryKind::Knn(k) => {
            let resp = server.handle(region, &CloakedQuery::Knn { k });
            let refine_start = Instant::now();
            let ans = refine_knn(server.store(), &resp.candidates, position, k);
            (
                resp.candidates.len(),
                ans,
                ns(refine_start - lbs_start),
                ns(refine_start.elapsed()),
            )
        }
    }
}

fn worker_loop(
    queue: &RequestQueue<Job>,
    session: &EngineSession<'_>,
    server: &LbsServer,
    points: &[Point],
    start: Instant,
) -> WorkerLog {
    let mut log = WorkerLog::default();
    loop {
        let job = match queue.pop() {
            Pop::Item(job) => job,
            Pop::Closed => return log,
        };
        let picked = Instant::now();
        let wait = picked - job.enqueued;
        nela_obs::observe_duration(nela_obs::stage::SERVE_QUEUE_WAIT, wait);
        log.queue_wait.push(ns(wait));
        if job.deadline.is_some_and(|d| picked > d) {
            log.expired += 1;
            nela_obs::add(nela_obs::counter::SERVE_EXPIRED, 1);
            log.last_done = picked - start;
            continue;
        }
        let cloaked = {
            let _span = nela_obs::span(nela_obs::stage::SERVE_CLOAK);
            session.request(job.host)
        };
        log.cloak.push(ns(picked.elapsed()));
        let result = match cloaked {
            Ok(result) => result,
            Err(_) => {
                log.failed += 1;
                nela_obs::add(nela_obs::counter::SERVE_FAILED, 1);
                log.last_done = start.elapsed();
                continue;
            }
        };
        let position = points[job.host as usize];
        let (candidates, refined, lbs_ns, refine_ns) =
            answer(server, &result.region, position, job.query);
        let done = Instant::now();
        let e2e = done - job.enqueued;
        nela_obs::observe_duration(nela_obs::stage::SERVE_E2E, e2e);
        nela_obs::add(nela_obs::counter::SERVE_SERVED, 1);
        log.e2e.push(ns(e2e));
        log.lbs.push(lbs_ns);
        log.refine.push(refine_ns);
        log.served += 1;
        if result.reused {
            log.reused += 1;
        }
        log.candidates += candidates as u64;
        log.digest ^= answer_hash(job.id, &refined);
        log.last_done = done - start;
    }
}

/// Builds a [`System`] from `params` and runs one serving session over it.
///
/// # Errors
/// Returns the first [`ServeConfigError`] when `config` is invalid.
pub fn run(params: &Params, config: &ServeConfig) -> Result<ServeReport, ServeConfigError> {
    config.validate()?;
    let system = System::build(params);
    run_with_system(&system, config)
}

/// A finished serving session: its measured report plus the checkpoint the
/// next session can resume from ([`run_session`] with `prior`).
pub struct SessionOutcome {
    /// What the session measured.
    pub report: ServeReport,
    /// The session's folded-back registry and position baseline, for
    /// cross-session cluster carry-over.
    pub checkpoint: SessionCheckpoint,
}

/// Runs one serving session over an existing system: paces the seeded
/// Poisson arrivals through a bounded queue into `config.workers` worker
/// threads, serves each admitted request end to end, and returns the
/// measured [`ServeReport`]. The session always terminates: the schedule is
/// finite, the queue closes after the last arrival, and workers drain it
/// before exiting.
///
/// # Errors
/// Returns the first [`ServeConfigError`] when `config` is invalid.
pub fn run_with_system(
    system: &System,
    config: &ServeConfig,
) -> Result<ServeReport, ServeConfigError> {
    run_session(system, config, None).map(|outcome| outcome.report)
}

/// [`run_with_system`] plus session chaining: when `prior` carries the
/// previous session's [`SessionCheckpoint`], its still-valid clusters
/// (every member's position bit-identical to the checkpoint's baseline) are
/// re-published into this session before the first arrival, so members of
/// carried clusters hit the region-reuse fast path immediately. The
/// returned [`SessionOutcome::checkpoint`] chains into the next call.
///
/// # Errors
/// Returns the first [`ServeConfigError`] when `config` is invalid.
pub fn run_session(
    system: &System,
    config: &ServeConfig,
    prior: Option<SessionCheckpoint>,
) -> Result<SessionOutcome, ServeConfigError> {
    config.validate()?;
    let arrivals = schedule(config, system.points.len());
    let axis = match config.shards {
        0 => auto_shard_axis(config.workers),
        pinned => shard_axis_for_total(pinned),
    };
    let (session, carry) = match prior {
        Some(checkpoint) => CloakingEngine::resume_session(
            system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            checkpoint,
            axis,
        ),
        None => (
            CloakingEngine::new(
                system,
                ClusteringAlgo::TConnDistributed,
                BoundingAlgo::Secure,
            )
            .into_session(axis),
            CarryOver::default(),
        ),
    };
    let session = match config.transport {
        Transport::InProcess => session,
        Transport::Netsim(net) => session.with_network(net)?,
    };
    // The POI dataset is the population itself (the paper's setup); each
    // POI carries `cr` content units so transfer accounting matches the
    // service-request cost model.
    let server = LbsServer::new(PoiStore::from_points(
        &system.points,
        system.params.cr as u32,
    ));
    let queue = RequestQueue::new(config.queue_capacity);

    let mut admitted = 0usize;
    let mut shed = 0usize;
    let mut logs: Vec<WorkerLog> = Vec::with_capacity(config.workers);
    let start = Instant::now();
    let mut producer_end = Duration::ZERO;
    std::thread::scope(|scope| {
        let queue = &queue;
        let session = &session;
        let server = &server;
        let points = system.points.as_slice();
        let handles: Vec<_> = (0..config.workers)
            .map(|_| scope.spawn(move || worker_loop(queue, session, server, points, start)))
            .collect();
        // The producer runs on this thread: sleep to each scheduled arrival,
        // then admit or shed — never wait for completions (open loop).
        for arrival in &arrivals {
            let target = start + arrival.at;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let enqueued = Instant::now();
            let job = Job {
                id: arrival.id,
                host: arrival.host,
                query: arrival.query,
                enqueued,
                deadline: config.deadline.map(|d| enqueued + d),
            };
            match queue.push(job) {
                Push::Admitted => {
                    admitted += 1;
                    nela_obs::add(nela_obs::counter::SERVE_ADMITTED, 1);
                }
                Push::Shed => {
                    shed += 1;
                    nela_obs::add(nela_obs::counter::SERVE_SHED, 1);
                }
            }
        }
        producer_end = start.elapsed();
        queue.close();
        // invariant: the worker loop is panic-free by construction — every
        // request outcome (including engine errors, deadline expiry, and
        // queue poisoning) is folded into its WorkerLog, so a failed join
        // can only mean a bug below this crate and has no recovery path
        // that preserves the report's accounting.
        logs = handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect();
    });
    // Fold the sharded registry back so audits and carry-over still work,
    // then freeze it (with its position baseline) into the checkpoint the
    // next session resumes from.
    let net_stats = session.net_stats();
    let checkpoint = session.finish().checkpoint();

    let served: usize = logs.iter().map(|l| l.served).sum();
    let failed: usize = logs.iter().map(|l| l.failed).sum();
    let expired: usize = logs.iter().map(|l| l.expired).sum();
    let reused: usize = logs.iter().map(|l| l.reused).sum();
    let candidates: u64 = logs.iter().map(|l| l.candidates).sum();
    let digest = logs.iter().fold(0u64, |acc, l| acc ^ l.digest);
    let wall = logs
        .iter()
        .map(|l| l.last_done)
        .max()
        .unwrap_or(Duration::ZERO)
        .max(producer_end);
    let wall_s = wall.as_secs_f64();
    let collect = |pick: fn(&WorkerLog) -> &Vec<u64>| {
        StageStats::from_samples(logs.iter().flat_map(|l| pick(l).iter().copied()).collect())
    };
    let report = ServeReport {
        population: system.points.len(),
        workers: config.workers,
        shards: axis * axis,
        transport: match config.transport {
            Transport::InProcess => "in-process".to_string(),
            Transport::Netsim(_) => "netsim".to_string(),
        },
        offered_rps: config.rate,
        requests: arrivals.len(),
        admitted,
        shed,
        served,
        failed,
        expired,
        reused,
        reuse_rate: (served > 0).then(|| reused as f64 / served as f64),
        carried_clusters: carry.carried,
        max_queue_depth: queue.max_depth(),
        wall_s,
        sustained_rps: if wall_s > 0.0 {
            served as f64 / wall_s
        } else {
            0.0
        },
        e2e: collect(|l| &l.e2e),
        queue_wait: collect(|l| &l.queue_wait),
        cloak: collect(|l| &l.cloak),
        lbs: collect(|l| &l.lbs),
        refine: collect(|l| &l.refine),
        mean_candidates: (served > 0).then(|| candidates as f64 / served as f64),
        mean_transfer_units: server.mean_transfer(),
        net: net_stats.map(|s| NetReport {
            transmissions: s.transmissions,
            rpcs_ok: s.rpcs_ok,
            rpcs_failed: s.rpcs_failed,
            lost: s.lost,
            retransmits: s.retransmits,
            timeouts: s.timeouts,
            virtual_s: s.virtual_s,
        }),
        answers_digest: digest,
    };
    Ok(SessionOutcome { report, checkpoint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryMix;
    use nela::netsim::NetworkConfig;

    fn small_system() -> System {
        System::build(&Params {
            threads: 1,
            ..Params::scaled(1_500)
        })
    }

    fn fast_config() -> ServeConfig {
        ServeConfig {
            requests: 60,
            rate: 50_000.0, // arrivals essentially instantaneous
            workers: 1,
            queue_capacity: 128,
            query: QueryMix::Knn { k: 4 },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn session_serves_every_admitted_request() {
        let system = small_system();
        let cfg = fast_config();
        let report = run_with_system(&system, &cfg).unwrap();
        assert_eq!(report.requests, 60);
        assert_eq!(report.shed, 0, "capacity covers all requests");
        assert_eq!(report.admitted, 60);
        assert_eq!(report.served + report.failed, 60);
        assert!(report.served > 0, "some requests must succeed");
        assert_eq!(report.expired, 0);
        assert_eq!(report.e2e.count, report.served);
        assert_eq!(report.queue_wait.count, 60);
        assert!(report.sustained_rps > 0.0);
        assert!(report.mean_transfer_units.is_some());
        assert!(report.mean_candidates.is_some());
    }

    #[test]
    fn accounting_balances_with_workers() {
        let system = small_system();
        let cfg = ServeConfig {
            workers: 3,
            ..fast_config()
        };
        let report = run_with_system(&system, &cfg).unwrap();
        assert_eq!(
            report.admitted + report.shed,
            report.requests,
            "every arrival is admitted or shed"
        );
        assert_eq!(
            report.served + report.failed + report.expired,
            report.admitted,
            "every admitted request reaches exactly one outcome"
        );
        assert!(report.max_queue_depth <= cfg.queue_capacity);
    }

    #[test]
    fn invalid_config_is_rejected_before_any_work() {
        let system = small_system();
        let cfg = ServeConfig {
            workers: 0,
            ..fast_config()
        };
        assert_eq!(
            run_with_system(&system, &cfg).unwrap_err(),
            ServeConfigError::NoWorkers
        );
    }

    #[test]
    fn netsim_transport_serves_and_populates_network_accounting() {
        let system = small_system();
        let cfg = ServeConfig {
            transport: Transport::Netsim(NetworkConfig {
                loss: 0.05,
                seed: 7,
                ..NetworkConfig::default()
            }),
            ..fast_config()
        };
        let report = run_with_system(&system, &cfg).unwrap();
        assert_eq!(report.transport, "netsim");
        assert!(report.served > 0);
        assert_eq!(report.served + report.failed, report.admitted);
        let net = report.net.expect("netsim transport must report totals");
        assert!(net.transmissions > 0);
        assert!(net.rpcs_ok > 0);
        // 5% per-transmission loss over hundreds of RPCs: some retransmits.
        assert!(net.retransmits > 0);
    }

    #[test]
    fn in_process_transport_reports_no_network() {
        let system = small_system();
        let report = run_with_system(&system, &fast_config()).unwrap();
        assert_eq!(report.transport, "in-process");
        assert!(report.net.is_none());
        assert_eq!(report.carried_clusters, 0);
    }

    #[test]
    fn carried_checkpoint_lifts_reuse_over_cold_start() {
        let system = small_system();
        let warm_cfg = ServeConfig {
            requests: 200,
            ..fast_config()
        };
        let first = run_session(&system, &warm_cfg, None).unwrap();
        assert!(first.checkpoint.active_clusters() > 0);

        // Same workload seed, nobody moved: the resumed session starts with
        // every first-session cluster already bounded.
        let cold = run_session(&system, &warm_cfg, None).unwrap();
        let resumed = run_session(&system, &warm_cfg, Some(first.checkpoint)).unwrap();
        assert!(resumed.report.carried_clusters > 0);
        assert!(
            resumed.report.reused > cold.report.reused,
            "carry-over must lift reuse: {} vs {}",
            resumed.report.reused,
            cold.report.reused
        );
    }

    #[test]
    fn tiny_deadline_expires_queued_requests() {
        let system = small_system();
        let cfg = ServeConfig {
            deadline: Some(Duration::ZERO),
            ..fast_config()
        };
        let report = run_with_system(&system, &cfg).unwrap();
        // A zero deadline from admission expires anything not picked up in
        // the same instant; with instantaneous arrivals the backlog makes
        // that the common case.
        assert!(report.expired > 0, "zero deadline must expire requests");
        assert_eq!(report.served + report.failed + report.expired, 60);
    }
}
