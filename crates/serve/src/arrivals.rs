//! Open-loop Poisson arrival generation.
//!
//! The whole workload is drawn up front from seeded streams, so a session
//! is a pure function of its configuration: arrival *times* come from an
//! exponential inter-arrival stream at the offered rate, the requesting
//! *host* and the *query* of each arrival come from their own decoupled
//! streams (`seed ^ tag`, the PRNG convention used by the mobility driver),
//! so changing the rate never reshuffles which users request or what they
//! ask — only when.

use crate::config::{QueryMix, ServeConfig};
use nela_geo::UserId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Stream tag for exponential inter-arrival gaps.
const ARRIVAL_STREAM: u64 = 0x4152_5249_5645; // "ARRIVE"
/// Stream tag for request host choices.
const HOST_STREAM: u64 = 0x484f_5354; // "HOST"
/// Stream tag for per-request query draws.
const QUERY_STREAM: u64 = 0x0051_5545_5259; // "QUERY"

/// The query one request issues (the concrete draw from a [`QueryMix`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// Range query with this radius.
    Range(f64),
    /// k-nearest-neighbor query.
    Knn(usize),
}

/// One scheduled request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Dense request id, in arrival order.
    pub id: u32,
    /// Offset from session start at which this request arrives.
    pub at: Duration,
    /// The requesting host.
    pub host: UserId,
    /// The query it issues after cloaking.
    pub query: QueryKind,
}

/// Draws the full arrival schedule for a session over a population of
/// `n_users`. Deterministic for a fixed config.
///
/// # Panics
/// Panics on an empty population — there is no host to draw. The serving
/// entry points cannot reach this: `System::build` always produces
/// `Params::n_users >= 1` points, so the assert only guards direct calls
/// with a hand-rolled population size.
pub fn schedule(config: &ServeConfig, n_users: usize) -> Vec<Arrival> {
    assert!(n_users > 0, "empty population");
    let mut gap_rng = ChaCha8Rng::seed_from_u64(config.seed ^ ARRIVAL_STREAM);
    let mut host_rng = ChaCha8Rng::seed_from_u64(config.seed ^ HOST_STREAM);
    let mut query_rng = ChaCha8Rng::seed_from_u64(config.seed ^ QUERY_STREAM);
    let mut clock = 0.0f64;
    (0..config.requests as u32)
        .map(|id| {
            // Exponential gap with mean 1/rate: -ln(1-u)/rate. `1 - u` is in
            // (0, 1], so the log is finite.
            let u: f64 = gap_rng.gen();
            clock += -(1.0 - u).ln() / config.rate;
            let host: UserId = host_rng.gen_range(0..n_users as UserId);
            let query = match config.query {
                QueryMix::Range { radius } => QueryKind::Range(radius),
                QueryMix::Knn { k } => QueryKind::Knn(k),
                QueryMix::Mixed {
                    radius,
                    k,
                    range_frac,
                } => {
                    if query_rng.gen::<f64>() < range_frac {
                        QueryKind::Range(radius)
                    } else {
                        QueryKind::Knn(k)
                    }
                }
            };
            Arrival {
                id,
                at: Duration::from_secs_f64(clock),
                host,
                query,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, seed: u64) -> ServeConfig {
        ServeConfig {
            requests: 300,
            rate,
            seed,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let a = schedule(&cfg(500.0, 7), 1_000);
        let b = schedule(&cfg(500.0, 7), 1_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "times ascend");
        assert!(a.iter().all(|r| (r.host as usize) < 1_000));
    }

    #[test]
    fn mean_gap_tracks_offered_rate() {
        let rate = 1_000.0;
        let s = schedule(
            &ServeConfig {
                requests: 5_000,
                rate,
                ..ServeConfig::default()
            },
            100,
        );
        // invariant: `schedule` returns exactly `requests` (5000 > 0)
        // arrivals, so a last element always exists.
        let span = s.last().unwrap().at.as_secs_f64();
        let empirical = s.len() as f64 / span;
        assert!(
            (empirical - rate).abs() / rate < 0.1,
            "empirical rate {empirical} vs offered {rate}"
        );
    }

    #[test]
    fn rate_change_keeps_hosts_and_queries() {
        let slow = schedule(&cfg(100.0, 3), 2_000);
        let fast = schedule(&cfg(10_000.0, 3), 2_000);
        for (a, b) in slow.iter().zip(&fast) {
            assert_eq!(a.host, b.host, "host stream decoupled from rate");
            assert_eq!(a.query, b.query, "query stream decoupled from rate");
            assert!(a.at >= b.at, "slower rate arrives later");
        }
    }

    #[test]
    fn mixed_queries_hit_both_kinds() {
        let s = schedule(
            &ServeConfig {
                requests: 200,
                query: QueryMix::Mixed {
                    radius: 0.02,
                    k: 5,
                    range_frac: 0.5,
                },
                ..ServeConfig::default()
            },
            500,
        );
        let ranges = s
            .iter()
            .filter(|a| matches!(a.query, QueryKind::Range(_)))
            .count();
        assert!(
            ranges > 50 && ranges < 150,
            "coin flip badly skewed: {ranges}"
        );
    }
}
