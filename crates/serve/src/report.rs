//! The serving-session report: backpressure accounting, sustained
//! throughput, and exact per-stage latency distributions.
//!
//! Stage latencies here are computed from the raw per-request samples
//! (nearest-rank percentiles over the sorted values), not from the log₂
//! `nela-obs` histograms — the obs snapshot is the always-on production
//! view, this report is the measurement harness, and keeping the two
//! independent means each can validate the other.

use serde::Serialize;

/// Exact latency summary of one pipeline stage, in nanoseconds.
///
/// Every statistic is `Option`: a stage with no samples has no percentiles,
/// and fabricating `0` would read as "this stage was instantaneous" in a
/// report (deadline-heavy runs legitimately serve nothing, so empty stages
/// occur in practice). Empty stages render as `n/a` in text and `null` in
/// JSON.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageStats {
    /// Samples recorded.
    pub count: usize,
    /// Arithmetic mean, `None` when no sample was recorded.
    pub mean_ns: Option<f64>,
    /// Nearest-rank median, `None` when no sample was recorded.
    pub p50_ns: Option<u64>,
    /// 95th percentile.
    pub p95_ns: Option<u64>,
    /// 99th percentile.
    pub p99_ns: Option<u64>,
    /// Largest sample.
    pub max_ns: Option<u64>,
}

impl StageStats {
    /// Summarizes a sample set (consumed: the samples are sorted in place).
    pub fn from_samples(mut samples: Vec<u64>) -> StageStats {
        if samples.is_empty() {
            return StageStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        StageStats {
            count: n,
            mean_ns: Some(samples.iter().sum::<u64>() as f64 / n as f64),
            p50_ns: Some(rank(0.50)),
            p95_ns: Some(rank(0.95)),
            p99_ns: Some(rank(0.99)),
            max_ns: Some(samples[n - 1]),
        }
    }
}

/// Network totals of a netsim-backed session, summed over every request
/// (absent from the report when the transport is in-process).
#[derive(Debug, Clone, Default, Serialize)]
pub struct NetReport {
    /// Transmissions put on the air (requests + replies, lost included).
    pub transmissions: u64,
    /// Completed request/reply exchanges.
    pub rpcs_ok: u64,
    /// RPCs abandoned after the full retry budget.
    pub rpcs_failed: u64,
    /// Transmissions that were lost.
    pub lost: u64,
    /// RPC attempts beyond the first.
    pub retransmits: u64,
    /// Timeouts charged for lost transmissions.
    pub timeouts: u64,
    /// Total simulated seconds requests spent on the radio.
    pub virtual_s: f64,
}

/// Everything one serving session measured.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Population size served.
    pub population: usize,
    /// Worker threads.
    pub workers: usize,
    /// Registry shards used by the cloaking session.
    pub shards: usize,
    /// Message transport of the cloaking protocols (`"in-process"` or
    /// `"netsim"`).
    pub transport: String,
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Scheduled arrivals.
    pub requests: usize,
    /// Arrivals admitted into the queue.
    pub admitted: usize,
    /// Arrivals shed because the queue was full.
    pub shed: usize,
    /// Admitted requests answered end to end.
    pub served: usize,
    /// Admitted requests whose cloaking leg failed (typed engine error).
    pub failed: usize,
    /// Admitted requests dropped because their deadline passed in queue.
    pub expired: usize,
    /// Served requests answered from an already-bounded cluster region
    /// (no clustering, no bounding — the reuse fast path).
    pub reused: usize,
    /// `reused / served`, `None` when nothing was served.
    pub reuse_rate: Option<f64>,
    /// Clusters re-published from a previous session's checkpoint (0 for
    /// cold sessions).
    pub carried_clusters: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Wall-clock from session start to the last completion, in seconds.
    pub wall_s: f64,
    /// Served requests per wall-clock second.
    pub sustained_rps: f64,
    /// End-to-end latency (admission → refined answer).
    pub e2e: StageStats,
    /// Queue wait (admission → worker pickup).
    pub queue_wait: StageStats,
    /// Cloaking leg (clustering + secure bounding, retries included).
    pub cloak: StageStats,
    /// LBS leg (`LbsServer::handle` over the cloaked region).
    pub lbs: StageStats,
    /// Client-side refinement leg.
    pub refine: StageStats,
    /// Mean candidate POIs per served query, `None` when nothing was served.
    pub mean_candidates: Option<f64>,
    /// Mean transfer units per served query (the paper's service-request
    /// cost), `None` when nothing was served.
    pub mean_transfer_units: Option<f64>,
    /// Network totals when the transport is netsim, `None` in-process.
    pub net: Option<NetReport>,
    /// Order-independent digest of every served request's refined answer
    /// set — two runs of the same single-worker config must agree exactly
    /// (the replay contract).
    pub answers_digest: u64,
}

/// FNV-1a over one request's id and refined answer ids. Per-request hashes
/// are XOR-combined into [`ServeReport::answers_digest`], so the digest is
/// independent of worker interleaving.
pub fn answer_hash(id: u32, answer: &[u32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(id);
    eat(answer.len() as u32);
    for &a in answer {
        eat(a);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stage_has_no_statistics_at_all() {
        let s = StageStats::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns, None);
        // The old behaviour fabricated 0 here — an empty stage must not
        // masquerade as an instantaneous one.
        assert_eq!(
            (s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns),
            (None, None, None, None)
        );
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"p50_ns\":null"),
            "empty stage must serialize null, got {json}"
        );
        assert!(json.contains("\"max_ns\":null"));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = StageStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, Some(50));
        assert_eq!(s.p95_ns, Some(95));
        assert_eq!(s.p99_ns, Some(99));
        assert_eq!(s.max_ns, Some(100));
        assert_eq!(s.mean_ns, Some(50.5));
        let one = StageStats::from_samples(vec![42]);
        assert_eq!(
            (one.p50_ns, one.p99_ns, one.max_ns),
            (Some(42), Some(42), Some(42))
        );
    }

    #[test]
    fn answer_hash_separates_requests_and_answers() {
        assert_ne!(answer_hash(1, &[2, 3]), answer_hash(2, &[2, 3]));
        assert_ne!(answer_hash(1, &[2, 3]), answer_hash(1, &[3, 2]));
        assert_ne!(answer_hash(1, &[]), answer_hash(1, &[0]));
        assert_eq!(answer_hash(9, &[7]), answer_hash(9, &[7]));
    }
}
