//! Axis-aligned rectangles — the shape of every cloaked region in the paper.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Cloaked regions produced by secure bounding are rectangles of this type;
/// the paper's headline quality metric is [`Rect::area`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extremes. Panics in debug builds if the
    /// extremes are inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// The tightest rectangle covering all `points`. Returns `None` on an
    /// empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut r = Rect::from_point(*first);
        for p in rest {
            r.expand_point(*p);
        }
        Some(r)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area — the paper's "size of cloaked location".
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (`width + height`); used by length-proportional
    /// request-cost models.
    #[inline]
    pub fn semi_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when `other` is fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// True when the two rectangles share any point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Grows the rectangle in place to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// The unit square `[0,1]²`.
    pub const UNIT: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 1.0,
        max_y: 1.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(0.2, 0.8),
            Point::new(0.5, 0.1),
            Point::new(0.9, 0.4),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(0.2, 0.1, 0.9, 0.8));
        for p in &pts {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn bounding_empty_is_none() {
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn bounding_single_point_has_zero_area() {
        let r = Rect::bounding(&[Point::new(0.3, 0.3)]).unwrap();
        assert_eq!(r.area(), 0.0);
        assert!(r.contains(&Point::new(0.3, 0.3)));
    }

    #[test]
    fn area_and_perimeter() {
        let r = Rect::new(0.0, 0.0, 0.5, 0.25);
        assert!((r.area() - 0.125).abs() < 1e-12);
        assert!((r.semi_perimeter() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 0.3, 0.3);
        let b = Rect::new(0.5, 0.5, 0.9, 0.6);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, 0.0, 0.9, 0.6));
    }

    #[test]
    fn intersection_detection() {
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        let b = Rect::new(0.4, 0.4, 0.9, 0.9);
        let c = Rect::new(0.6, 0.6, 0.9, 0.9);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // touching edges count as intersecting
        let d = Rect::new(0.5, 0.0, 0.7, 0.5);
        assert!(a.intersects(&d));
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&Point::new(0.0, 1.0)));
        assert!(!r.contains(&Point::new(1.0000001, 0.5)));
    }

    #[test]
    fn center_of_unit_square() {
        assert_eq!(Rect::UNIT.center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn expand_point_grows_minimally() {
        let mut r = Rect::from_point(Point::new(0.5, 0.5));
        r.expand_point(Point::new(0.2, 0.7));
        assert_eq!(r, Rect::new(0.2, 0.5, 0.5, 0.7));
    }
}
