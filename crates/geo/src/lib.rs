//! Geometric substrate for the NELA (Non-Exposure Location Anonymity) system.
//!
//! This crate provides the spatial primitives that the rest of the workspace
//! builds on:
//!
//! - [`Point`] and [`Rect`] with the distance/area kernels used throughout the
//!   paper's evaluation (cloaked regions are axis-aligned bounding boxes in a
//!   unit square),
//! - [`grid::GridIndex`], a uniform-grid spatial index supporting the
//!   δ-range neighbor queries needed to construct weighted proximity graphs
//!   over ~10⁵ users, and
//! - [`dataset`], seeded synthetic spatial dataset generators, including a
//!   "California-POI-like" skewed mixture that substitutes for the USGS
//!   California POI dataset used in the paper (see `DESIGN.md` for the
//!   substitution rationale).
//!
//! All randomness is driven by caller-provided seeds through ChaCha8 so every
//! experiment in the repository is exactly reproducible.

pub mod dataset;
pub mod dynamic;
pub mod grid;
pub mod point;
pub mod rect;
pub mod sharded;
pub mod soa;

pub use dataset::{DatasetSpec, SpatialDistribution};
pub use dynamic::{DynamicGrid, GridError};
pub use grid::GridIndex;
pub use point::Point;
pub use rect::Rect;
pub use sharded::ShardedDynamicGrid;
pub use soa::PointsSoA;

/// Identifier of a user (vertex) in the system. Users are dense indices into
/// the population vector, so a bare `u32` keeps adjacency structures compact.
pub type UserId = u32;
