//! Seeded synthetic spatial dataset generators.
//!
//! The paper evaluates on the USGS California POI dataset (104,770 points
//! normalized to the unit square). That dataset is not redistributable here,
//! so this module generates synthetic populations whose *spatial clustering
//! statistics* drive the same behaviour in the proximity graph: real POI data
//! is heavily clustered (cities, road corridors) over a sparse background,
//! which is what produces the paper's reported average vertex degrees of
//! 3.8–22.8 for peer caps M = 4–64.
//!
//! Three generators are provided:
//!
//! - [`SpatialDistribution::Uniform`] — i.i.d. uniform points; a smoke-test
//!   topology with near-constant local density.
//! - [`SpatialDistribution::GaussianClusters`] — equal-weight isotropic
//!   Gaussian blobs; a controlled clustered topology.
//! - [`SpatialDistribution::CaliforniaLike`] — the default substitute for the
//!   paper's dataset: Zipf-sized Gaussian clusters whose centers lie along a
//!   few linear "corridors" (mimicking coastline/highway urbanization), plus
//!   a uniform rural background.
//!
//! Everything is parameterized by a `u64` seed through ChaCha8, so any figure
//! in `EXPERIMENTS.md` regenerates bit-identically. Generators with more than
//! one random component (cluster/street layout vs. point sampling) draw each
//! component from its own derived stream (`seed ^ component_tag`), so editing
//! one component's draw count never silently reshuffles the others.

use crate::point::Point;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Number of points in the paper's California POI dataset; the default
/// population size throughout the evaluation.
pub const CALIFORNIA_POI_COUNT: usize = 104_770;

/// The spatial law a synthetic population is drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpatialDistribution {
    /// Independent uniform points in the unit square.
    Uniform,
    /// `clusters` isotropic Gaussian blobs of standard deviation `sigma`,
    /// equal weight, centers uniform in the unit square.
    GaussianClusters { clusters: usize, sigma: f64 },
    /// Skewed corridor-clustered mixture standing in for the USGS California
    /// POI dataset. `background` is the fraction of points drawn uniformly
    /// (rural noise), the rest fall into Zipf-weighted corridor clusters.
    CaliforniaLike { background: f64 },
    /// Rush-hour skew: `hot_frac` of the population is packed into a few
    /// tight "downtown" hotspots (Zipf-weighted, σ ≈ 0.01) while the rest
    /// spreads uniformly as a sparse suburban background. The extreme-skew
    /// geography of the scenario matrix — dense cores where clusters are
    /// cheap next to a periphery where the disconnected problem dominates.
    RushHour { hotspots: usize, hot_frac: f64 },
}

impl SpatialDistribution {
    /// The default stand-in for the paper's dataset.
    pub fn california() -> Self {
        SpatialDistribution::CaliforniaLike { background: 0.10 }
    }

    /// The default rush-hour skew of the scenario matrix: 4 downtown
    /// hotspots holding 80% of the population.
    pub fn rush_hour() -> Self {
        SpatialDistribution::RushHour {
            hotspots: 4,
            hot_frac: 0.80,
        }
    }
}

/// A reproducible dataset specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of users/points.
    pub n: usize,
    /// PRNG seed; equal specs generate equal datasets.
    pub seed: u64,
    /// Spatial law.
    pub distribution: SpatialDistribution,
}

impl DatasetSpec {
    /// Spec matching the paper's default population: 104,770 users drawn from
    /// the California-like mixture.
    pub fn paper_default(seed: u64) -> Self {
        DatasetSpec {
            n: CALIFORNIA_POI_COUNT,
            seed,
            distribution: SpatialDistribution::california(),
        }
    }

    /// A small uniform spec for tests.
    pub fn small_uniform(n: usize, seed: u64) -> Self {
        DatasetSpec {
            n,
            seed,
            distribution: SpatialDistribution::Uniform,
        }
    }

    /// Materializes the dataset. Every point lies in the unit square.
    pub fn generate(&self) -> Vec<Point> {
        match &self.distribution {
            SpatialDistribution::Uniform => {
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
                (0..self.n)
                    .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
                    .collect()
            }
            SpatialDistribution::GaussianClusters { clusters, sigma } => {
                gaussian_clusters(self.n, *clusters, *sigma, self.seed)
            }
            SpatialDistribution::CaliforniaLike { background } => {
                california_like(self.n, *background, self.seed)
            }
            SpatialDistribution::RushHour { hotspots, hot_frac } => {
                rush_hour(self.n, *hotspots, *hot_frac, self.seed)
            }
        }
    }
}

/// Stream tag for the layout component (cluster centers, street geometry).
const LAYOUT_STREAM: u64 = 0x4c41_594f_5554; // "LAYOUT"
/// Stream tag for the point-sampling component.
const SAMPLE_STREAM: u64 = 0x5341_4d50_4c45; // "SAMPLE"

/// Standard normal via Box–Muller (keeps us off `rand_distr`, which is not in
/// the approved dependency set).
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

fn gaussian_clusters(n: usize, clusters: usize, sigma: f64, seed: u64) -> Vec<Point> {
    assert!(clusters > 0, "need at least one cluster");
    let mut layout_rng = ChaCha8Rng::seed_from_u64(seed ^ LAYOUT_STREAM);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SAMPLE_STREAM);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(layout_rng.gen::<f64>(), layout_rng.gen::<f64>()))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..clusters)];
            Point::new(
                c.x + sigma * normal(&mut rng),
                c.y + sigma * normal(&mut rng),
            )
            .clamp_unit()
        })
        .collect()
}

/// Corridor endpoints roughly tracing a coastal arc and two inland highways,
/// chosen once so the layout (and thus the degree distribution) is stable
/// across seeds; only the sampling along them is random.
const CORRIDORS: [(Point, Point); 3] = [
    (Point::new(0.05, 0.95), Point::new(0.45, 0.30)), // "coast"
    (Point::new(0.45, 0.30), Point::new(0.90, 0.05)), // "south corridor"
    (Point::new(0.20, 0.85), Point::new(0.85, 0.55)), // "central valley"
];

/// A "street": a line segment POIs scatter along with small perpendicular
/// jitter. Real POI data is dominated by such quasi-1-D structures (roads,
/// commercial strips), which is what makes neighborhood depletion costly:
/// the nearest free user along a street is far when the local stretch is
/// taken.
struct Street {
    anchor: Point,
    dir: (f64, f64),
    half_len: f64,
    jitter: f64,
}

fn california_like(n: usize, background: f64, seed: u64) -> Vec<Point> {
    assert!(
        (0.0..=1.0).contains(&background),
        "background fraction must be in [0,1]"
    );
    let mut layout_rng = ChaCha8Rng::seed_from_u64(seed ^ LAYOUT_STREAM);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SAMPLE_STREAM);
    // Street anchors distributed along the corridors with jitter; street
    // orientation is biased toward the corridor's own direction.
    const N_STREETS: usize = 800;
    let mut streets = Vec::with_capacity(N_STREETS);
    for i in 0..N_STREETS {
        let (a, b) = CORRIDORS[i % CORRIDORS.len()];
        let t: f64 = layout_rng.gen();
        let anchor = Point::new(
            a.x + t * (b.x - a.x) + 0.04 * normal(&mut layout_rng),
            a.y + t * (b.y - a.y) + 0.04 * normal(&mut layout_rng),
        )
        .clamp_unit();
        let corridor_angle = (b.y - a.y).atan2(b.x - a.x);
        let angle = corridor_angle
            + if layout_rng.gen::<f64>() < 0.5 {
                std::f64::consts::FRAC_PI_2 // cross street
            } else {
                0.0
            }
            + 0.3 * normal(&mut layout_rng);
        streets.push(Street {
            anchor,
            dir: (angle.cos(), angle.sin()),
            // Street half-lengths: ~0.01 (block) to ~0.06 (arterial).
            half_len: 0.01 + 0.05 * layout_rng.gen::<f64>().powi(2),
            jitter: 0.0008,
        });
    }
    // Mildly skewed weights (1/√(i+1)): arterials hold more POIs than side
    // streets, but density spreads enough that typical along-street POI
    // spacing is commensurate with a short radio range — the regime of the
    // USGS California dataset.
    let weights: Vec<f64> = (0..N_STREETS)
        .map(|i| 1.0 / ((i + 1) as f64).sqrt())
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(N_STREETS);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cdf.push(acc);
    }

    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < background {
                Point::new(rng.gen::<f64>(), rng.gen::<f64>())
            } else {
                let u: f64 = rng.gen();
                let si = cdf.partition_point(|&c| c < u).min(N_STREETS - 1);
                let s = &streets[si];
                let along = (2.0 * rng.gen::<f64>() - 1.0) * s.half_len;
                let across = s.jitter * normal(&mut rng);
                Point::new(
                    s.anchor.x + along * s.dir.0 - across * s.dir.1,
                    s.anchor.y + along * s.dir.1 + across * s.dir.0,
                )
                .clamp_unit()
            }
        })
        .collect()
}

fn rush_hour(n: usize, hotspots: usize, hot_frac: f64, seed: u64) -> Vec<Point> {
    assert!(hotspots > 0, "need at least one hotspot");
    assert!(
        (0.0..=1.0).contains(&hot_frac),
        "hot fraction must be in [0,1]"
    );
    let mut layout_rng = ChaCha8Rng::seed_from_u64(seed ^ LAYOUT_STREAM);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SAMPLE_STREAM);
    // Hotspot centers kept away from the domain edge so the dense cores stay
    // (mostly) inside the unit square instead of piling up on the boundary.
    let centers: Vec<Point> = (0..hotspots)
        .map(|_| {
            Point::new(
                0.1 + 0.8 * layout_rng.gen::<f64>(),
                0.1 + 0.8 * layout_rng.gen::<f64>(),
            )
        })
        .collect();
    // Zipf-weighted hotspot popularity: downtown #1 dominates.
    let weights: Vec<f64> = (0..hotspots).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(hotspots);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cdf.push(acc);
    }
    const SIGMA: f64 = 0.01;
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < hot_frac {
                let u: f64 = rng.gen();
                let hi = cdf.partition_point(|&c| c < u).min(hotspots - 1);
                let c = centers[hi];
                Point::new(
                    c.x + SIGMA * normal(&mut rng),
                    c.y + SIGMA * normal(&mut rng),
                )
                .clamp_unit()
            } else {
                Point::new(rng.gen::<f64>(), rng.gen::<f64>())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec {
            n: 1000,
            seed: 7,
            distribution: SpatialDistribution::california(),
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::small_uniform(100, 1).generate();
        let b = DatasetSpec::small_uniform(100, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn all_points_in_unit_square() {
        for dist in [
            SpatialDistribution::Uniform,
            SpatialDistribution::GaussianClusters {
                clusters: 5,
                sigma: 0.3,
            },
            SpatialDistribution::california(),
            SpatialDistribution::rush_hour(),
        ] {
            let pts = DatasetSpec {
                n: 2000,
                seed: 11,
                distribution: dist.clone(),
            }
            .generate();
            assert_eq!(pts.len(), 2000);
            assert!(
                pts.iter().all(Point::in_unit_square),
                "escaped unit square under {dist:?}"
            );
        }
    }

    #[test]
    fn california_is_more_clustered_than_uniform() {
        // Compare mean nearest-neighbor distances: clustering shrinks them.
        let nn_mean = |pts: &[Point]| {
            let idx = crate::grid::GridIndex::build(pts, 0.01);
            let mut total = 0.0;
            let mut counted = 0usize;
            let mut buf = Vec::new();
            for i in 0..pts.len() as u32 {
                idx.neighbors_within(i, 0.05, &mut buf);
                if let Some(min) = buf.iter().map(|&(_, d)| d).min_by(f64::total_cmp) {
                    total += min.sqrt();
                    counted += 1;
                }
            }
            total / counted.max(1) as f64
        };
        let uni = DatasetSpec::small_uniform(5000, 3).generate();
        let cal = DatasetSpec {
            n: 5000,
            seed: 3,
            distribution: SpatialDistribution::california(),
        }
        .generate();
        assert!(
            nn_mean(&cal) < nn_mean(&uni) * 0.8,
            "california-like mixture should be markedly denser locally"
        );
    }

    #[test]
    fn rush_hour_is_extremely_skewed() {
        // With 80% of mass in 4 tight hotspots, a small neighborhood around
        // the densest point must hold far more than its uniform share.
        let pts = DatasetSpec {
            n: 4000,
            seed: 9,
            distribution: SpatialDistribution::rush_hour(),
        }
        .generate();
        let idx = crate::grid::GridIndex::build(&pts, 0.05);
        let mut buf = Vec::new();
        let max_local = (0..pts.len() as u32)
            .map(|i| {
                idx.neighbors_within(i, 0.05, &mut buf);
                buf.len()
            })
            .max()
            .unwrap();
        // Uniform expectation within r=0.05 of a point: n * πr² ≈ 31.
        assert!(
            max_local > 300,
            "rush-hour core should be crowded, saw max {max_local} neighbors"
        );
    }

    #[test]
    fn paper_default_size() {
        let spec = DatasetSpec::paper_default(1);
        assert_eq!(spec.n, CALIFORNIA_POI_COUNT);
    }

    #[test]
    fn zero_background_still_generates() {
        let pts = DatasetSpec {
            n: 500,
            seed: 5,
            distribution: SpatialDistribution::CaliforniaLike { background: 0.0 },
        }
        .generate();
        assert_eq!(pts.len(), 500);
    }
}
