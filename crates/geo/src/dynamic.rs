//! Mutable uniform-grid index for populations that move.
//!
//! [`crate::GridIndex`] is a build-once CSR structure, optimal for the
//! paper's static snapshot model. Continuous cloaking under mobility instead
//! needs an index that absorbs a stream of position updates without paying a
//! full O(n) rebuild per tick. [`DynamicGrid`] keeps one `Vec<UserId>` bucket
//! per cell and supports `relocate` in O(bucket) time, while answering the
//! same δ-range queries with identical semantics (inclusive `≤ radius`,
//! query point excluded, out-of-square coordinates clamped to border cells).
//!
//! The cell geometry (side ≥ δ, per-axis count clamped to 1..4096) matches
//! `GridIndex::build` exactly, so a [`DynamicGrid::snapshot`] taken at any
//! point is interchangeable with an index built from scratch over the same
//! positions — the equivalence the incremental WPG maintenance in
//! `nela-wpg` relies on.

use crate::grid::GridIndex;
use crate::point::Point;
use crate::UserId;

/// Error from mutable-grid operations handed an id outside the indexed
/// population. The population is fixed at build time, so any id ≥ n is a
/// caller bug or untrusted input — the fallible `try_*` APIs surface it as
/// this typed error instead of an index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// `id` is not part of the indexed population of `population` points.
    UnknownId { id: UserId, population: usize },
}

impl GridError {
    #[inline]
    pub(crate) fn unknown(id: UserId, population: usize) -> Self {
        GridError::UnknownId { id, population }
    }
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnknownId { id, population } => {
                write!(f, "user id {id} outside indexed population of {population}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// A mutable uniform-grid index over a set of points in the unit square.
#[derive(Debug, Clone)]
pub struct DynamicGrid {
    /// Number of cells per axis.
    cells: usize,
    /// Side length of one cell.
    cell_side: f64,
    /// The `min_cell_side` this grid was built with (kept so
    /// [`DynamicGrid::snapshot`] reproduces the identical geometry).
    min_cell_side: f64,
    /// Per-cell buckets of point ids (unordered within a bucket).
    buckets: Vec<Vec<UserId>>,
    /// Current position of every point, indexed by id.
    points: Vec<Point>,
}

impl DynamicGrid {
    /// Builds a mutable index whose cell side is at least `min_cell_side`
    /// (typically the radio range δ). Same geometry as
    /// [`GridIndex::build`].
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build(points: &[Point], min_cell_side: f64) -> Self {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive, got {min_cell_side}"
        );
        let cells = ((1.0 / min_cell_side).floor() as usize).clamp(1, 4096);
        let cell_side = 1.0 / cells as f64;
        let mut grid = DynamicGrid {
            cells,
            cell_side,
            min_cell_side,
            buckets: vec![Vec::new(); cells * cells],
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let c = grid.cell_of(p);
            grid.buckets[c].push(i as UserId);
        }
        grid
    }

    #[inline]
    fn cell_of(&self, p: &Point) -> usize {
        crate::grid::cell_id_of(p, self.cell_side, self.cells)
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The current positions, indexed by id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Current position of `id`, or [`GridError::UnknownId`] when `id` is
    /// not part of the indexed population.
    #[inline]
    pub fn try_position(&self, id: UserId) -> Result<Point, GridError> {
        self.points
            .get(id as usize)
            .copied()
            .ok_or_else(|| GridError::unknown(id, self.points.len()))
    }

    /// Current position of `id`.
    ///
    /// # Panics
    /// Panics if `id` is outside the indexed population (the population is
    /// fixed at build time). Use [`DynamicGrid::try_position`] for untrusted
    /// ids.
    #[inline]
    pub fn position(&self, id: UserId) -> Point {
        debug_assert!(
            (id as usize) < self.points.len(),
            "position: id {id} outside population of {}",
            self.points.len()
        );
        self.points[id as usize]
    }

    /// Moves point `id` to `new_pos`, updating its bucket if the cell
    /// changed. Returns the previous position, or
    /// [`GridError::UnknownId`] when `id` is not part of the indexed
    /// population (the grid is left untouched).
    ///
    /// O(bucket length) when the cell changes, O(1) otherwise.
    pub fn try_relocate(&mut self, id: UserId, new_pos: Point) -> Result<Point, GridError> {
        if id as usize >= self.points.len() {
            return Err(GridError::unknown(id, self.points.len()));
        }
        Ok(self.relocate_known(id, new_pos))
    }

    /// Moves point `id` to `new_pos`, updating its bucket if the cell
    /// changed. Returns the previous position.
    ///
    /// O(bucket length) when the cell changes, O(1) otherwise.
    ///
    /// # Panics
    /// Panics if `id` is outside the indexed population. Use
    /// [`DynamicGrid::try_relocate`] for untrusted ids.
    pub fn relocate(&mut self, id: UserId, new_pos: Point) -> Point {
        debug_assert!(
            (id as usize) < self.points.len(),
            "relocate: id {id} outside population of {}",
            self.points.len()
        );
        self.relocate_known(id, new_pos)
    }

    fn relocate_known(&mut self, id: UserId, new_pos: Point) -> Point {
        let old = self.points[id as usize];
        let old_cell = self.cell_of(&old);
        let new_cell = self.cell_of(&new_pos);
        self.points[id as usize] = new_pos;
        if old_cell != new_cell {
            let bucket = &mut self.buckets[old_cell];
            // Invariant: every in-range id sits in exactly one bucket — the
            // one covering its current position — maintained by build and
            // every relocation, so this lookup cannot fail for a checked id.
            let at = bucket
                .iter()
                .position(|&e| e == id)
                .expect("point must be in its cell bucket");
            bucket.swap_remove(at);
            self.buckets[new_cell].push(id);
        }
        old
    }

    /// All point ids within Euclidean distance `radius` (inclusive: peers at
    /// exactly `radius` are in range) of `center`, excluding `exclude` (pass
    /// an out-of-range id such as `u32::MAX` to exclude nothing). Results are
    /// appended to `out` (cleared first) as `(id, squared distance)` pairs in
    /// arbitrary order.
    pub fn neighbors_of_point(
        &self,
        center: Point,
        exclude: UserId,
        radius: f64,
        out: &mut Vec<(UserId, f64)>,
    ) {
        out.clear();
        let r_sq = radius * radius;
        let span = (radius / self.cell_side).ceil() as isize;
        let qcx = crate::grid::cell_coord(center.x, self.cell_side, self.cells) as isize;
        let qcy = crate::grid::cell_coord(center.y, self.cell_side, self.cells) as isize;
        for cy in (qcy - span).max(0)..=(qcy + span).min(self.cells as isize - 1) {
            for cx in (qcx - span).max(0)..=(qcx + span).min(self.cells as isize - 1) {
                for &id in &self.buckets[cy as usize * self.cells + cx as usize] {
                    if id == exclude {
                        continue;
                    }
                    let d_sq = center.dist_sq(&self.points[id as usize]);
                    if d_sq <= r_sq {
                        out.push((id, d_sq));
                    }
                }
            }
        }
    }

    /// All point ids within distance `radius` (inclusive) of point
    /// `query_id`, excluding `query_id` itself — the same contract as
    /// [`GridIndex::neighbors_within`].
    #[inline]
    pub fn neighbors_within(&self, query_id: UserId, radius: f64, out: &mut Vec<(UserId, f64)>) {
        self.neighbors_of_point(self.points[query_id as usize], query_id, radius, out);
    }

    /// Freshly allocated, distance-sorted neighbor list (ties broken by id),
    /// mirroring [`GridIndex::neighbors_within_sorted`].
    pub fn neighbors_within_sorted(&self, query_id: UserId, radius: f64) -> Vec<(UserId, f64)> {
        let mut out = Vec::new();
        self.neighbors_within(query_id, radius, &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Freezes the current positions into a static [`GridIndex`]. The
    /// snapshot is equivalent to `GridIndex::build(self.points(), δ)` for the
    /// δ this grid was built with (identical cell geometry and contents).
    pub fn snapshot(&self) -> GridIndex {
        GridIndex::build(&self.points, self.min_cell_side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
    }

    fn ids(mut v: Vec<(UserId, f64)>) -> Vec<UserId> {
        v.sort_by_key(|&(id, _)| id);
        v.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn fresh_build_matches_static_index() {
        let pts = sample_points(400, 9);
        let dynamic = DynamicGrid::build(&pts, 0.05);
        let fixed = GridIndex::build(&pts, 0.05);
        for q in [0u32, 17, 399] {
            let a = ids(dynamic.neighbors_within_sorted(q, 0.05));
            let b = ids(fixed.neighbors_within_sorted(q, 0.05));
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn relocate_updates_query_results() {
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.9),
            Point::new(0.11, 0.1),
        ];
        let mut g = DynamicGrid::build(&pts, 0.05);
        assert_eq!(ids(g.neighbors_within_sorted(0, 0.05)), vec![2]);
        // Move 1 next to 0; move 2 far away.
        g.relocate(1, Point::new(0.1, 0.12));
        g.relocate(2, Point::new(0.5, 0.5));
        assert_eq!(ids(g.neighbors_within_sorted(0, 0.05)), vec![1]);
        assert_eq!(g.position(2), Point::new(0.5, 0.5));
    }

    #[test]
    fn relocate_returns_old_position() {
        let mut g = DynamicGrid::build(&[Point::new(0.2, 0.3)], 0.1);
        let old = g.relocate(0, Point::new(0.8, 0.9));
        assert_eq!(old, Point::new(0.2, 0.3));
    }

    #[test]
    fn random_moves_keep_parity_with_rebuilt_static_index() {
        let pts = sample_points(300, 4);
        let mut g = DynamicGrid::build(&pts, 0.04);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let id = rng.gen_range(0..300u32);
            g.relocate(id, Point::new(rng.gen(), rng.gen()));
        }
        let rebuilt = GridIndex::build(g.points(), 0.04);
        for q in (0..300u32).step_by(23) {
            assert_eq!(
                ids(g.neighbors_within_sorted(q, 0.04)),
                ids(rebuilt.neighbors_within_sorted(q, 0.04)),
                "query {q}"
            );
        }
    }

    #[test]
    fn snapshot_equals_fresh_static_build() {
        let pts = sample_points(200, 7);
        let mut g = DynamicGrid::build(&pts, 0.05);
        g.relocate(0, Point::new(0.42, 0.42));
        g.relocate(100, Point::new(0.13, 0.99));
        let snap = g.snapshot();
        let fresh = GridIndex::build(g.points(), 0.05);
        for q in (0..200u32).step_by(17) {
            assert_eq!(
                ids(snap.neighbors_within_sorted(q, 0.05)),
                ids(fresh.neighbors_within_sorted(q, 0.05)),
            );
        }
    }

    #[test]
    fn neighbors_of_point_can_probe_hypothetical_positions() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.52, 0.5)];
        let g = DynamicGrid::build(&pts, 0.05);
        let mut out = Vec::new();
        // Probe a position, excluding nobody.
        g.neighbors_of_point(Point::new(0.51, 0.5), u32::MAX, 0.05, &mut out);
        assert_eq!(ids(out.clone()), vec![0, 1]);
        // Same probe excluding point 0.
        g.neighbors_of_point(Point::new(0.51, 0.5), 0, 0.05, &mut out);
        assert_eq!(ids(out), vec![1]);
    }

    #[test]
    fn boundary_coordinates_are_handled() {
        let mut g = DynamicGrid::build(&[Point::new(0.5, 0.5), Point::new(0.999, 0.999)], 0.01);
        g.relocate(0, Point::new(1.0, 1.0));
        assert_eq!(ids(g.neighbors_within_sorted(0, 0.01)), vec![1]);
    }

    #[test]
    fn peer_at_exactly_delta_is_in_range() {
        // δ-boundary regression mirroring the GridIndex test: exactly δ
        // apart is in range, just beyond is not. Power-of-two coordinates so
        // the distance is exactly δ in f64.
        let delta = 0.125;
        let g = DynamicGrid::build(
            &[Point::new(0.25, 0.5), Point::new(0.25 + delta, 0.5)],
            delta,
        );
        assert_eq!(ids(g.neighbors_within_sorted(0, delta)), vec![1]);
        assert_eq!(ids(g.neighbors_within_sorted(1, delta)), vec![0]);
        let far = DynamicGrid::build(
            &[
                Point::new(0.25, 0.5),
                Point::new(0.25 + delta * 1.0001, 0.5),
            ],
            delta,
        );
        assert!(far.neighbors_within_sorted(0, delta).is_empty());
    }

    #[test]
    fn out_of_range_ids_are_rejected_with_typed_error() {
        let pts = sample_points(10, 3);
        let mut g = DynamicGrid::build(&pts, 0.05);
        // Rejection leaves the grid untouched and queryable.
        assert_eq!(
            g.try_relocate(10, Point::new(0.5, 0.5)),
            Err(GridError::UnknownId {
                id: 10,
                population: 10
            })
        );
        assert_eq!(
            g.try_position(u32::MAX),
            Err(GridError::UnknownId {
                id: u32::MAX,
                population: 10
            })
        );
        assert_eq!(g.points(), &pts[..]);
        // In-range ids keep working through the fallible API.
        assert_eq!(g.try_relocate(4, Point::new(0.5, 0.5)), Ok(pts[4]));
        assert_eq!(g.try_position(4), Ok(Point::new(0.5, 0.5)));
        let msg = GridError::unknown(7, 3).to_string();
        assert!(msg.contains('7') && msg.contains('3'), "{msg}");
    }

    #[test]
    fn out_of_square_relocation_clamps_to_border_cells() {
        let mut g = DynamicGrid::build(&[Point::new(0.5, 0.5), Point::new(0.01, 0.5)], 0.05);
        // Numeric drift below 0.0 must stay queryable on the border cell.
        g.relocate(0, Point::new(-0.002, 0.5));
        assert_eq!(ids(g.neighbors_within_sorted(0, 0.05)), vec![1]);
        assert_eq!(ids(g.neighbors_within_sorted(1, 0.05)), vec![0]);
    }
}
