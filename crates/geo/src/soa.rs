//! Structure-of-arrays point storage for cache-friendly bulk kernels.
//!
//! [`crate::Point`] is the right shape for single-point geometry, but the hot
//! loops of the system — the grid's δ-range scans and the RSS rank pass —
//! touch *runs* of points and only ever need one coordinate stream at a time.
//! Storing those runs as parallel `xs`/`ys` arrays keeps each stream
//! contiguous (two sequential prefetchable loads per point instead of strided
//! struct loads) and lets the compiler autovectorize the squared-distance
//! kernel, because nothing in the loop body branches or aliases.
//!
//! The arrays are plain `Vec<f64>` indexed by the *same* dense position, so a
//! `PointsSoA` is just a transposed `&[Point]` — [`PointsSoA::get`] and
//! [`PointsSoA::from_points`] convert losslessly in both directions, and every
//! kernel here is bit-identical to its `Point`-at-a-time equivalent (same
//! operand order, same IEEE operations).

use crate::point::Point;

/// A set of 2-D points stored as parallel coordinate arrays.
///
/// Invariant: `xs.len() == ys.len()` at all times; position `i` in both
/// arrays holds the coordinates of the same logical point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointsSoA {
    /// X coordinates, indexed by point position.
    pub xs: Vec<f64>,
    /// Y coordinates, indexed by point position.
    pub ys: Vec<f64>,
}

impl PointsSoA {
    /// An empty set with room for `cap` points in each coordinate array.
    pub fn with_capacity(cap: usize) -> Self {
        PointsSoA {
            xs: Vec::with_capacity(cap),
            ys: Vec::with_capacity(cap),
        }
    }

    /// Transposes an array-of-structs point slice into coordinate arrays.
    pub fn from_points(points: &[Point]) -> Self {
        PointsSoA {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The point at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Appends a point.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// Removes all points, keeping the allocations.
    #[inline]
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }
}

/// Block width of the stack-buffered distance kernels: big enough to fill
/// SIMD pipelines, small enough that the scratch array lives in registers /
/// L1 and never touches the heap.
pub const KERNEL_BLOCK: usize = 64;

/// Squared Euclidean distance from `(qx, qy)` to each point of a coordinate
/// block: `d_sq[j] = (qx - xs[j])² + (qy - ys[j])²`.
///
/// This is [`Point::dist_sq`] with `self = q` unrolled over a run — the same
/// operand order and IEEE operations, so each lane is bit-identical to the
/// scalar call. The loop body has no branches and writes disjoint slots, so
/// it autovectorizes.
///
/// # Panics
/// Panics if the three slices differ in length.
#[inline]
pub fn dist_sq_block(qx: f64, qy: f64, xs: &[f64], ys: &[f64], d_sq: &mut [f64]) {
    assert!(
        xs.len() == ys.len() && xs.len() == d_sq.len(),
        "coordinate and output blocks must align"
    );
    for j in 0..xs.len() {
        let dx = qx - xs[j];
        let dy = qy - ys[j];
        d_sq[j] = dx * dx + dy * dy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Point> {
        // Deterministic LCG jitter, same scheme as the grid tests.
        let mut s: u64 = 7;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn transpose_round_trips() {
        let pts = sample(37);
        let soa = PointsSoA::from_points(&pts);
        assert_eq!(soa.len(), pts.len());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.get(i), *p);
        }
    }

    #[test]
    fn push_and_clear_keep_arrays_aligned() {
        let mut soa = PointsSoA::with_capacity(4);
        assert!(soa.is_empty());
        soa.push(Point::new(0.1, 0.9));
        soa.push(Point::new(0.5, 0.5));
        assert_eq!(soa.len(), 2);
        assert_eq!(soa.get(1), Point::new(0.5, 0.5));
        soa.clear();
        assert!(soa.is_empty());
    }

    #[test]
    fn block_kernel_is_bit_identical_to_scalar_dist_sq() {
        let pts = sample(153); // deliberately not a multiple of the block
        let soa = PointsSoA::from_points(&pts);
        let q = Point::new(0.25, 0.75);
        let mut d = vec![0.0; pts.len()];
        dist_sq_block(q.x, q.y, &soa.xs, &soa.ys, &mut d);
        for (i, p) in pts.iter().enumerate() {
            // Exact equality on purpose: the kernel must reproduce the
            // scalar computation bit for bit.
            assert_eq!(d[i].to_bits(), q.dist_sq(p).to_bits(), "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn block_kernel_rejects_misaligned_slices() {
        let mut d = [0.0; 2];
        dist_sq_block(0.0, 0.0, &[0.1], &[0.2, 0.3], &mut d);
    }
}
