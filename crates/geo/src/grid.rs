//! Uniform-grid spatial index for δ-range neighbor queries.
//!
//! Building a weighted proximity graph over ~10⁵ users requires, for every
//! user, all peers within the radio range δ. A uniform grid whose cell side
//! equals δ answers such a query by scanning at most the 3×3 cell block
//! around the query point, which is optimal for the short, fixed radii used
//! in the paper (δ = 2×10⁻³ in the unit square).
//!
//! The index is built once over the full population (users do not move during
//! an experiment, matching the paper's static snapshot model) and stores
//! point indices bucketed per cell in a flat CSR-style layout to keep the
//! ~10⁵-point index allocation-light.

use crate::point::Point;
use crate::UserId;

/// A static uniform-grid index over a set of points in the unit square.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Number of cells per axis.
    cells: usize,
    /// Side length of one cell.
    cell_side: f64,
    /// CSR offsets: `bucket[c]..bucket[c+1]` slices `entries` for cell `c`.
    bucket_offsets: Vec<u32>,
    /// Point ids, grouped by cell.
    entries: Vec<UserId>,
    /// The indexed points (owned copy so queries need no external lookup).
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index whose cell side is at least `min_cell_side` (typically
    /// the radio range δ, so any δ-ball is covered by a 3×3 cell block).
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build(points: &[Point], min_cell_side: f64) -> Self {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive, got {min_cell_side}"
        );
        // At least one cell; at most what keeps memory reasonable for the
        // unit square (1/δ cells per axis, capped to avoid pathological tiny δ).
        let cells = ((1.0 / min_cell_side).floor() as usize).clamp(1, 4096);
        let cell_side = 1.0 / cells as f64;

        let n_cells = cells * cells;
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = ((p.x / cell_side) as usize).min(cells - 1);
            let cy = ((p.y / cell_side) as usize).min(cells - 1);
            cy * cells + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=n_cells {
            counts[i] += counts[i - 1];
        }
        let mut entries = vec![0 as UserId; points.len()];
        let mut cursor = counts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as UserId;
            cursor[c] += 1;
        }
        GridIndex {
            cells,
            cell_side,
            bucket_offsets: counts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// All point ids strictly within Euclidean distance `radius` of point
    /// `query_id`, excluding `query_id` itself. Results are appended to `out`
    /// (cleared first) as `(id, squared distance)` pairs in arbitrary order.
    pub fn neighbors_within(&self, query_id: UserId, radius: f64, out: &mut Vec<(UserId, f64)>) {
        out.clear();
        let q = self.points[query_id as usize];
        let r_sq = radius * radius;
        // Cells overlapping the query ball.
        let span = (radius / self.cell_side).ceil() as isize;
        let qcx = ((q.x / self.cell_side) as isize).min(self.cells as isize - 1);
        let qcy = ((q.y / self.cell_side) as isize).min(self.cells as isize - 1);
        for cy in (qcy - span).max(0)..=(qcy + span).min(self.cells as isize - 1) {
            for cx in (qcx - span).max(0)..=(qcx + span).min(self.cells as isize - 1) {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                for &id in &self.entries[lo..hi] {
                    if id == query_id {
                        continue;
                    }
                    let d_sq = q.dist_sq(&self.points[id as usize]);
                    if d_sq < r_sq {
                        out.push((id, d_sq));
                    }
                }
            }
        }
    }

    /// Convenience wrapper around [`GridIndex::neighbors_within`] returning a
    /// freshly allocated, distance-sorted vector. Prefer the buffer-reusing
    /// variant in hot loops.
    pub fn neighbors_within_sorted(&self, query_id: UserId, radius: f64) -> Vec<(UserId, f64)> {
        let mut out = Vec::new();
        self.neighbors_within(query_id, radius, &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Ids of all points inside `rect` (inclusive bounds), ascending.
    pub fn ids_in_rect(&self, rect: &crate::rect::Rect) -> Vec<UserId> {
        let lo_cx = ((rect.min_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cx = ((rect.max_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let lo_cy = ((rect.min_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cy = ((rect.max_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let mut out = Vec::new();
        for cy in lo_cy..=hi_cy {
            for cx in lo_cx..=hi_cx {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                for &id in &self.entries[lo..hi] {
                    if rect.contains(&self.points[id as usize]) {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Count of points inside `rect` (inclusive bounds). Used to evaluate how
    /// many users a cloaked region actually covers (k-anonymity audit).
    pub fn count_in_rect(&self, rect: &crate::rect::Rect) -> usize {
        let lo_cx = ((rect.min_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cx = ((rect.max_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let lo_cy = ((rect.min_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cy = ((rect.max_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let mut n = 0;
        for cy in lo_cy..=hi_cy {
            for cx in lo_cx..=hi_cx {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                for &id in &self.entries[lo..hi] {
                    if rect.contains(&self.points[id as usize]) {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn brute_neighbors(points: &[Point], q: usize, radius: f64) -> Vec<UserId> {
        let r_sq = radius * radius;
        let mut v: Vec<UserId> = (0..points.len())
            .filter(|&i| i != q && points[q].dist_sq(&points[i]) < r_sq)
            .map(|i| i as UserId)
            .collect();
        v.sort_unstable();
        v
    }

    fn sample_points() -> Vec<Point> {
        // Deterministic pseudo-grid jittered by a simple LCG.
        let mut s: u64 = 42;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..500).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn matches_brute_force_range_query() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        for q in [0usize, 7, 123, 499] {
            let mut got: Vec<UserId> = idx
                .neighbors_within_sorted(q as UserId, 0.05)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_neighbors(&pts, q, 0.05), "query {q}");
        }
    }

    #[test]
    fn radius_larger_than_cell_side_still_correct() {
        let pts = sample_points();
        // cell side ends up 0.02 but we query with radius 0.1 (5 cells).
        let idx = GridIndex::build(&pts, 0.02);
        let mut got: Vec<UserId> = idx
            .neighbors_within_sorted(3, 0.1)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_neighbors(&pts, 3, 0.1));
    }

    #[test]
    fn sorted_output_is_distance_ordered() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        let res = idx.neighbors_within_sorted(10, 0.2);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn excludes_query_point() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
        let idx = GridIndex::build(&pts, 0.01);
        let res = idx.neighbors_within_sorted(0, 0.1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn count_in_rect_matches_linear_scan() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        let r = Rect::new(0.25, 0.25, 0.75, 0.5);
        let expect = pts.iter().filter(|p| r.contains(p)).count();
        assert_eq!(idx.count_in_rect(&r), expect);
    }

    #[test]
    fn ids_in_rect_matches_linear_scan() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        for r in [
            Rect::new(0.25, 0.25, 0.75, 0.5),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.9, 0.9, 0.91, 0.91),
        ] {
            let expect: Vec<UserId> = (0..pts.len() as UserId)
                .filter(|&i| r.contains(&pts[i as usize]))
                .collect();
            assert_eq!(idx.ids_in_rect(&r), expect);
        }
    }

    #[test]
    fn boundary_coordinates_are_indexed() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(0.999, 0.999)];
        let idx = GridIndex::build(&pts, 0.01);
        let res = idx.neighbors_within_sorted(0, 0.01);
        assert_eq!(res.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cell side must be positive")]
    fn rejects_zero_cell_side() {
        GridIndex::build(&[Point::ORIGIN], 0.0);
    }
}
