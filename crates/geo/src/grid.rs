//! Uniform-grid spatial index for δ-range neighbor queries.
//!
//! Building a weighted proximity graph over ~10⁵ users requires, for every
//! user, all peers within the radio range δ. A uniform grid whose cell side
//! equals δ answers such a query by scanning at most the 3×3 cell block
//! around the query point, which is optimal for the short, fixed radii used
//! in the paper (δ = 2×10⁻³ in the unit square).
//!
//! The index is built once over the full population (users do not move during
//! an experiment, matching the paper's static snapshot model) and stores
//! point indices bucketed per cell in a flat CSR-style layout to keep the
//! ~10⁵-point index allocation-light.
//!
//! **Boundary semantics:** a peer at *exactly* distance δ is in range
//! (`d ≤ δ`), matching the paper's "each user can hear peers within the
//! radio range δ" and the RSS model docs in `nela-wpg`. Coordinates
//! marginally outside `[0, 1)` (mobility reflection can land exactly on
//! `1.0`; numeric drift can dip below `0.0`) are clamped onto the border
//! cells rather than relying on float-to-int cast saturation.

use crate::point::Point;
use crate::soa::{dist_sq_block, PointsSoA, KERNEL_BLOCK};
use crate::UserId;

/// Cells per axis for a given minimum cell side: at least one cell; at most
/// what keeps memory reasonable for the unit square (1/δ cells per axis,
/// capped to avoid pathological tiny δ).
#[inline]
fn cells_per_axis(min_cell_side: f64) -> usize {
    ((1.0 / min_cell_side).floor() as usize).clamp(1, 4096)
}

/// Cell coordinate of a scalar position, clamped into `[0, cells)`.
/// Negative coordinates land on cell 0 and coordinates ≥ 1 on the last
/// cell — explicitly, not via `as usize` saturation.
#[inline]
pub(crate) fn cell_coord(v: f64, cell_side: f64, cells: usize) -> usize {
    if v <= 0.0 {
        return 0;
    }
    ((v / cell_side) as usize).min(cells - 1)
}

/// Flat cell id of a point (shared by build and the dynamic grid).
#[inline]
pub(crate) fn cell_id_of(p: &Point, cell_side: f64, cells: usize) -> usize {
    cell_coord(p.y, cell_side, cells) * cells + cell_coord(p.x, cell_side, cells)
}

/// A static uniform-grid index over a set of points in the unit square.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Number of cells per axis.
    cells: usize,
    /// Side length of one cell.
    cell_side: f64,
    /// CSR offsets: `bucket[c]..bucket[c+1]` slices `entries` for cell `c`.
    bucket_offsets: Vec<u32>,
    /// Point ids, grouped by cell.
    entries: Vec<UserId>,
    /// Coordinates of `entries[i]` at position `i` — the cell-grouped SoA
    /// mirror of `points`. Range scans read these two sequential streams
    /// instead of gathering `points[entries[i]]`, which keeps the
    /// squared-distance kernel branch-free and autovectorizable.
    entry_coords: PointsSoA,
    /// The indexed points (owned copy so queries need no external lookup).
    points: Vec<Point>,
}

/// Above this cell count the per-thread count arrays of the parallel build
/// would dominate memory; fall back to a serial counting pass (the cell-id
/// computation stays parallel).
const PARALLEL_FILL_MAX_CELLS: usize = 1 << 22;

impl GridIndex {
    /// Builds an index whose cell side is at least `min_cell_side` (typically
    /// the radio range δ, so any δ-ball is covered by a 3×3 cell block).
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build(points: &[Point], min_cell_side: f64) -> Self {
        Self::build_threads(points, min_cell_side, 1)
    }

    /// Builds the index splitting the counting and bucket-fill passes over
    /// `threads` scoped worker threads. The result is bit-identical to the
    /// serial [`GridIndex::build`] for any thread count: entries stay
    /// grouped by cell and ordered by point index within each cell.
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build_threads(points: &[Point], min_cell_side: f64, threads: usize) -> Self {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive, got {min_cell_side}"
        );
        let _span = nela_obs::span(nela_obs::stage::GRID_BUILD);
        let cells = cells_per_axis(min_cell_side);
        let cell_side = 1.0 / cells as f64;
        let n = points.len();
        let n_cells = cells * cells;
        let threads = nela_par::effective_threads(threads, n);

        // Pass 0 (parallel): flat cell id of every point.
        let cell_ids: Vec<u32> = nela_par::map_indexed(threads, n, |i| {
            cell_id_of(&points[i], cell_side, cells) as u32
        });

        let mut offsets = vec![0u32; n_cells + 1];
        let mut entries = vec![0 as UserId; n];
        if threads > 1 && n_cells <= PARALLEL_FILL_MAX_CELLS {
            // Pass 1 (parallel): per-chunk cell histograms.
            let ranges = nela_par::chunk_ranges(n, threads);
            let cell_ids_ref = &cell_ids;
            let mut chunk_counts: Vec<Vec<u32>> = nela_par::map_chunks(threads, n, move |range| {
                let mut counts = vec![0u32; n_cells];
                for i in range {
                    counts[cell_ids_ref[i] as usize] += 1;
                }
                counts
            });
            // Exclusive prefix over (cell, chunk): chunk_counts[t][c] becomes
            // the first write cursor of chunk t inside cell c's bucket.
            for c in 0..n_cells {
                let mut acc = 0u32;
                for counts in chunk_counts.iter_mut() {
                    let here = counts[c];
                    counts[c] = acc;
                    acc += here;
                }
                offsets[c + 1] = acc;
            }
            for c in 1..=n_cells {
                offsets[c] += offsets[c - 1];
            }
            // Pass 2 (parallel): scatter ids into disjoint cursor ranges.
            let writer = nela_par::ScatterWriter::new(&mut entries);
            let offsets_ref = &offsets;
            std::thread::scope(|scope| {
                for (range, mut cursors) in ranges.into_iter().zip(chunk_counts) {
                    let writer = &writer;
                    let cell_ids = &cell_ids;
                    scope.spawn(move || {
                        for i in range {
                            let c = cell_ids[i] as usize;
                            let at = offsets_ref[c] + cursors[c];
                            cursors[c] += 1;
                            // SAFETY: cursor ranges are disjoint per (cell,
                            // chunk) by the prefix-sum construction, so every
                            // index is written exactly once.
                            unsafe { writer.write(at as usize, i as UserId) };
                        }
                    });
                }
            });
        } else {
            for &c in &cell_ids {
                offsets[c as usize + 1] += 1;
            }
            for c in 1..=n_cells {
                offsets[c] += offsets[c - 1];
            }
            let mut cursor = offsets.clone();
            for (i, &c) in cell_ids.iter().enumerate() {
                entries[cursor[c as usize] as usize] = i as UserId;
                cursor[c as usize] += 1;
            }
        }
        // Gather the cell-grouped coordinate streams once at build time so
        // every later range scan is sequential.
        let mut entry_coords = PointsSoA::with_capacity(n);
        for &id in &entries {
            entry_coords.push(points[id as usize]);
        }
        GridIndex {
            cells,
            cell_side,
            bucket_offsets: offsets,
            entries,
            entry_coords,
            points: points.to_vec(),
        }
    }

    /// Assembles an index from pre-built CSR parts (used by
    /// `ShardedDynamicGrid::to_grid_index` to freeze a maintained grid
    /// without re-bucketing). Callers must uphold the build invariants:
    /// `bucket_offsets` is a valid CSR over `cells²` cells, `entries` are
    /// grouped by cell and ascend within each cell, and `entry_coords[i]`
    /// mirrors `points[entries[i]]`.
    pub(crate) fn assemble(
        cells: usize,
        cell_side: f64,
        bucket_offsets: Vec<u32>,
        entries: Vec<UserId>,
        entry_coords: PointsSoA,
        points: Vec<Point>,
    ) -> Self {
        debug_assert_eq!(bucket_offsets.len(), cells * cells + 1);
        debug_assert_eq!(bucket_offsets.last().copied(), Some(entries.len() as u32));
        debug_assert_eq!(entry_coords.len(), entries.len());
        GridIndex {
            cells,
            cell_side,
            bucket_offsets,
            entries,
            entry_coords,
            points,
        }
    }

    /// The raw CSR parts, for bit-identity assertions in in-crate tests.
    #[cfg(test)]
    pub(crate) fn raw_parts(&self) -> (usize, f64, &[u32], &[UserId], &PointsSoA, &[Point]) {
        (
            self.cells,
            self.cell_side,
            &self.bucket_offsets,
            &self.entries,
            &self.entry_coords,
            &self.points,
        )
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// All point ids within Euclidean distance `radius` (inclusive: peers at
    /// exactly `radius` are in range) of point `query_id`, excluding
    /// `query_id` itself. Results are appended to `out` (cleared first) as
    /// `(id, squared distance)` pairs in arbitrary order.
    ///
    /// The scan is split into two loops per coordinate block: a branch-free
    /// squared-distance kernel over the cell-grouped SoA streams (which
    /// autovectorizes), then a compare-and-select pass over the distances.
    /// Both the per-lane arithmetic and the push order match the fused
    /// scalar loop exactly, so results are bit-identical to it.
    pub fn neighbors_within(&self, query_id: UserId, radius: f64, out: &mut Vec<(UserId, f64)>) {
        out.clear();
        let q = self.points[query_id as usize];
        let r_sq = radius * radius;
        // Cells overlapping the query ball.
        let span = (radius / self.cell_side).ceil() as isize;
        let qcx = cell_coord(q.x, self.cell_side, self.cells) as isize;
        let qcy = cell_coord(q.y, self.cell_side, self.cells) as isize;
        // Stack scratch for one block of squared distances — no heap.
        let mut d = [0.0f64; KERNEL_BLOCK];
        for cy in (qcy - span).max(0)..=(qcy + span).min(self.cells as isize - 1) {
            for cx in (qcx - span).max(0)..=(qcx + span).min(self.cells as isize - 1) {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                let ids = &self.entries[lo..hi];
                let xs = &self.entry_coords.xs[lo..hi];
                let ys = &self.entry_coords.ys[lo..hi];
                let mut base = 0;
                while base < ids.len() {
                    let m = (ids.len() - base).min(KERNEL_BLOCK);
                    dist_sq_block(
                        q.x,
                        q.y,
                        &xs[base..base + m],
                        &ys[base..base + m],
                        &mut d[..m],
                    );
                    for (j, &d_sq) in d[..m].iter().enumerate() {
                        let id = ids[base + j];
                        if d_sq <= r_sq && id != query_id {
                            out.push((id, d_sq));
                        }
                    }
                    base += m;
                }
            }
        }
    }

    /// Convenience wrapper around [`GridIndex::neighbors_within`] returning a
    /// freshly allocated, distance-sorted vector. Prefer the buffer-reusing
    /// variant in hot loops.
    pub fn neighbors_within_sorted(&self, query_id: UserId, radius: f64) -> Vec<(UserId, f64)> {
        let mut out = Vec::new();
        self.neighbors_within(query_id, radius, &mut out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Ids of all points inside `rect` (inclusive bounds), ascending.
    pub fn ids_in_rect(&self, rect: &crate::rect::Rect) -> Vec<UserId> {
        let lo_cx = ((rect.min_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cx = ((rect.max_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let lo_cy = ((rect.min_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cy = ((rect.max_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let mut out = Vec::new();
        for cy in lo_cy..=hi_cy {
            for cx in lo_cx..=hi_cx {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                for i in lo..hi {
                    if rect.contains(&self.entry_coords.get(i)) {
                        out.push(self.entries[i]);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Count of points inside `rect` (inclusive bounds). Used to evaluate how
    /// many users a cloaked region actually covers (k-anonymity audit).
    pub fn count_in_rect(&self, rect: &crate::rect::Rect) -> usize {
        let lo_cx = ((rect.min_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cx = ((rect.max_x / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let lo_cy = ((rect.min_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let hi_cy = ((rect.max_y / self.cell_side) as isize).clamp(0, self.cells as isize - 1);
        let mut n = 0;
        for cy in lo_cy..=hi_cy {
            for cx in lo_cx..=hi_cx {
                let c = cy as usize * self.cells + cx as usize;
                let lo = self.bucket_offsets[c] as usize;
                let hi = self.bucket_offsets[c + 1] as usize;
                for i in lo..hi {
                    if rect.contains(&self.entry_coords.get(i)) {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn brute_neighbors(points: &[Point], q: usize, radius: f64) -> Vec<UserId> {
        let r_sq = radius * radius;
        let mut v: Vec<UserId> = (0..points.len())
            .filter(|&i| i != q && points[q].dist_sq(&points[i]) <= r_sq)
            .map(|i| i as UserId)
            .collect();
        v.sort_unstable();
        v
    }

    fn sample_points() -> Vec<Point> {
        // Deterministic pseudo-grid jittered by a simple LCG.
        let mut s: u64 = 42;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..500).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn matches_brute_force_range_query() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        for q in [0usize, 7, 123, 499] {
            let mut got: Vec<UserId> = idx
                .neighbors_within_sorted(q as UserId, 0.05)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_neighbors(&pts, q, 0.05), "query {q}");
        }
    }

    #[test]
    fn radius_larger_than_cell_side_still_correct() {
        let pts = sample_points();
        // cell side ends up 0.02 but we query with radius 0.1 (5 cells).
        let idx = GridIndex::build(&pts, 0.02);
        let mut got: Vec<UserId> = idx
            .neighbors_within_sorted(3, 0.1)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_neighbors(&pts, 3, 0.1));
    }

    #[test]
    fn sorted_output_is_distance_ordered() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        let res = idx.neighbors_within_sorted(10, 0.2);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn excludes_query_point() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
        let idx = GridIndex::build(&pts, 0.01);
        let res = idx.neighbors_within_sorted(0, 0.1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn peer_at_exactly_delta_is_in_range() {
        // Regression for the δ-boundary semantics: two points exactly δ
        // apart must hear each other ("within the radio range δ" is
        // inclusive), in both the straddling-cells and same-cell layouts.
        // Power-of-two coordinates so the distance is exactly δ in f64.
        let delta = 0.125;
        let pts = vec![Point::new(0.25, 0.5), Point::new(0.25 + delta, 0.5)];
        let idx = GridIndex::build(&pts, delta);
        assert_eq!(idx.neighbors_within_sorted(0, delta).len(), 1);
        assert_eq!(idx.neighbors_within_sorted(1, delta).len(), 1);
        // And just beyond δ stays out of range.
        let far = vec![
            Point::new(0.25, 0.5),
            Point::new(0.25 + delta * 1.0001, 0.5),
        ];
        let idx_far = GridIndex::build(&far, delta);
        assert!(idx_far.neighbors_within_sorted(0, delta).is_empty());
    }

    #[test]
    fn count_in_rect_matches_linear_scan() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        let r = Rect::new(0.25, 0.25, 0.75, 0.5);
        let expect = pts.iter().filter(|p| r.contains(p)).count();
        assert_eq!(idx.count_in_rect(&r), expect);
    }

    #[test]
    fn ids_in_rect_matches_linear_scan() {
        let pts = sample_points();
        let idx = GridIndex::build(&pts, 0.05);
        for r in [
            Rect::new(0.25, 0.25, 0.75, 0.5),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.9, 0.9, 0.91, 0.91),
        ] {
            let expect: Vec<UserId> = (0..pts.len() as UserId)
                .filter(|&i| r.contains(&pts[i as usize]))
                .collect();
            assert_eq!(idx.ids_in_rect(&r), expect);
        }
    }

    #[test]
    fn boundary_coordinates_are_indexed() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(0.999, 0.999)];
        let idx = GridIndex::build(&pts, 0.01);
        let res = idx.neighbors_within_sorted(0, 0.01);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn out_of_square_coordinates_clamp_to_border_cells() {
        // Mobility reflection can land exactly on 1.0, and numeric drift can
        // produce slightly negative coordinates; both must index and query
        // without panicking, landing on the border cells.
        let pts = vec![
            Point::new(-0.001, 0.5),
            Point::new(0.0, 0.5),
            Point::new(1.0, 1.0),
            Point::new(1.002, 0.999),
        ];
        let idx = GridIndex::build(&pts, 0.05);
        assert_eq!(idx.len(), 4);
        let near_origin = idx.neighbors_within_sorted(0, 0.05);
        assert_eq!(near_origin.len(), 1);
        assert_eq!(near_origin[0].0, 1);
        let near_corner = idx.neighbors_within_sorted(2, 0.05);
        assert_eq!(near_corner.len(), 1);
        assert_eq!(near_corner[0].0, 3);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let pts = sample_points();
        let serial = GridIndex::build(&pts, 0.03);
        for threads in [2usize, 3, 4, 8] {
            let par = GridIndex::build_threads(&pts, 0.03, threads);
            assert_eq!(par.bucket_offsets, serial.bucket_offsets, "t={threads}");
            assert_eq!(par.entries, serial.entries, "t={threads}");
            assert_eq!(par.entry_coords, serial.entry_coords, "t={threads}");
            assert_eq!(par.points, serial.points, "t={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "cell side must be positive")]
    fn rejects_zero_cell_side() {
        GridIndex::build(&[Point::ORIGIN], 0.0);
    }
}
