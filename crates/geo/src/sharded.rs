//! Region-sharded mutable grid with per-shard dirty queues.
//!
//! [`crate::DynamicGrid`] absorbs single relocations in O(bucket), but its
//! per-cell `Vec` buckets scatter every δ-range scan across the heap, and a
//! mobility tick that moves half the population touches every bucket anyway.
//! [`ShardedDynamicGrid`] is the batch-oriented replacement behind
//! `nela_wpg::IncrementalWpg`:
//!
//! - The cell geometry is identical to [`GridIndex`] (cell side ≥ δ, per-axis
//!   count clamped to 1..4096), and the grid is split into **shards**: bands
//!   of consecutive cell rows, the same grid-region sharding the cluster
//!   registry uses. Each shard owns a CSR (offsets / entries / coordinate
//!   mirror) over its own cells, so range scans stream the same three
//!   sequential arrays a [`GridIndex`] scan does.
//! - Position updates are **staged** ([`ShardedDynamicGrid::stage_move`]) and
//!   then **committed** in one pass ([`ShardedDynamicGrid::commit_moves`]).
//!   Only shards whose membership or cell structure changed rebuild their
//!   CSR (O(shard members + shard cells)); shards whose movers stayed inside
//!   their cells refresh coordinates in place; untouched shards do nothing —
//!   a tick's structural cost is proportional to the regions containing
//!   movers, not to the grid.
//! - Every staged move marks its old and new cell as a **source cell** in the
//!   owning shard's epoch-stamped dirty queue.
//!   [`ShardedDynamicGrid::collect_dirty_users`] expands those queues by one
//!   cell ring (3×3 blocks): because the cell side is ≥ δ, any user within δ
//!   of a mover's old or new position lives in that dilation, so the result
//!   is a conservative superset of the users whose δ-neighborhood changed.
//!   Rescoring a user whose neighborhood did *not* change is idempotent, so
//!   consumers stay exact while the marking costs O(movers), not
//!   O(movers · δ-ball occupancy).
//!
//! Entries within a cell are kept in ascending id order (members are sorted
//! and each rebuild scatters them in order), which makes
//! [`ShardedDynamicGrid::to_grid_index`] a pure concatenation that is
//! **bit-identical** to `GridIndex::build` over the same positions — pinned
//! by the tests below.

use crate::dynamic::GridError;
use crate::grid::GridIndex;
use crate::point::Point;
use crate::soa::{dist_sq_block, PointsSoA, KERNEL_BLOCK};
use crate::UserId;

/// Default number of row-band shards (clamped to the number of cell rows).
pub const DEFAULT_SHARDS: usize = 16;

/// One band of consecutive cell rows with its own CSR and dirty queue.
#[derive(Debug, Clone)]
struct Shard {
    /// First global cell id covered by this shard.
    cell_base: usize,
    /// Number of cells covered.
    n_cells: usize,
    /// Resident user ids, ascending.
    members: Vec<UserId>,
    /// Local CSR: `offsets[c]..offsets[c+1]` slices `entries` for local
    /// cell `c` (= global cell − `cell_base`).
    offsets: Vec<u32>,
    /// User ids grouped by cell, ascending within each cell.
    entries: Vec<UserId>,
    /// Coordinates of `entries[i]`, the cell-grouped SoA mirror.
    coords: PointsSoA,
    /// Source cells (global ids) marked this epoch, in marking order.
    source_cells: Vec<u32>,
    /// Membership or cell assignment changed: the CSR must be rebuilt.
    needs_rebuild: bool,
    /// Movers that stayed in their cell: only their mirror coords refresh.
    coord_moves: Vec<UserId>,
    /// Ids staged into this shard this tick (may hold transients and
    /// duplicates; filtered against `cell_of` at commit).
    incoming: Vec<UserId>,
    /// Members may have left or arrived: run the membership repair pass.
    membership_dirty: bool,
}

/// A mutable uniform-grid index sharded into row bands with per-shard dirty
/// queues. See the module docs for the maintenance contract.
#[derive(Debug, Clone)]
pub struct ShardedDynamicGrid {
    /// Cells per axis.
    cells: usize,
    /// Side length of one cell.
    cell_side: f64,
    /// The `min_cell_side` this grid was built with (snapshot geometry).
    min_cell_side: f64,
    /// Cell rows per shard (last shard may cover fewer).
    rows_per_shard: usize,
    /// Current position of every point, indexed by id.
    points: Vec<Point>,
    /// Current cell of every point, indexed by id.
    cell_of: Vec<u32>,
    shards: Vec<Shard>,
    /// Tick epoch; all `*_mark` arrays compare against it.
    epoch: u32,
    /// Per-cell epoch stamp: cell is a source cell this epoch.
    source_mark: Vec<u32>,
    /// Per-cell epoch stamp: cell already visited by the dilation pass.
    dilated_mark: Vec<u32>,
    /// Scratch write cursors for shard rebuilds (sized to the largest shard).
    cursor_scratch: Vec<u32>,
    /// Scratch list of this epoch's dilated (dirty) cells.
    dirty_cells: Vec<u32>,
    /// Per-user epoch stamp: user left its tick-start shard this epoch.
    /// Cleared on re-insertion by the commit, which also dedups multi-hop
    /// arrival queue entries.
    departed_mark: Vec<u32>,
    /// Staged moves not yet committed (queries are invalid while true).
    staged: bool,
}

impl ShardedDynamicGrid {
    /// Builds a sharded grid with [`DEFAULT_SHARDS`] row bands. Same cell
    /// geometry as [`GridIndex::build`].
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build(points: &[Point], min_cell_side: f64) -> Self {
        Self::build_with_shards(points, min_cell_side, DEFAULT_SHARDS)
    }

    /// Builds a sharded grid with `shards` row bands (clamped to
    /// `1..=cell rows`, so any value is safe).
    ///
    /// # Panics
    /// Panics if `min_cell_side` is not finite and positive.
    pub fn build_with_shards(points: &[Point], min_cell_side: f64, shards: usize) -> Self {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive, got {min_cell_side}"
        );
        let cells = ((1.0 / min_cell_side).floor() as usize).clamp(1, 4096);
        let cell_side = 1.0 / cells as f64;
        let shards = shards.clamp(1, cells);
        let rows_per_shard = cells.div_ceil(shards);
        let n_shards = cells.div_ceil(rows_per_shard);
        let cell_of: Vec<u32> = points
            .iter()
            .map(|p| crate::grid::cell_id_of(p, cell_side, cells) as u32)
            .collect();
        let mut shard_vec: Vec<Shard> = (0..n_shards)
            .map(|s| {
                let first_row = s * rows_per_shard;
                let rows = rows_per_shard.min(cells - first_row);
                Shard {
                    cell_base: first_row * cells,
                    n_cells: rows * cells,
                    members: Vec::new(),
                    offsets: Vec::new(),
                    entries: Vec::new(),
                    coords: PointsSoA::default(),
                    source_cells: Vec::new(),
                    needs_rebuild: true,
                    coord_moves: Vec::new(),
                    incoming: Vec::new(),
                    membership_dirty: false,
                }
            })
            .collect();
        // Ascending id iteration keeps every member list sorted.
        for (i, &c) in cell_of.iter().enumerate() {
            let s = (c as usize / cells) / rows_per_shard;
            shard_vec[s].members.push(i as UserId);
        }
        let max_shard_cells = shard_vec.iter().map(|s| s.n_cells).max().unwrap_or(0);
        let mut grid = ShardedDynamicGrid {
            cells,
            cell_side,
            min_cell_side,
            rows_per_shard,
            points: points.to_vec(),
            cell_of,
            shards: shard_vec,
            // Epoch 0 is the "never" stamp of every mark array; starting at 1
            // keeps a stage/commit batch correct even before the first
            // `begin_tick`.
            epoch: 1,
            source_mark: vec![0; cells * cells],
            dilated_mark: vec![0; cells * cells],
            cursor_scratch: vec![0; max_shard_cells],
            dirty_cells: Vec::new(),
            departed_mark: vec![0; points.len()],
            staged: false,
        };
        grid.commit_moves();
        grid
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The current positions, indexed by id. Staged moves are already
    /// reflected here (positions update eagerly; only the cell structure
    /// waits for [`ShardedDynamicGrid::commit_moves`]).
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of row-band shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cells per axis (same formula as `GridIndex::build`).
    #[inline]
    pub fn cells_per_axis(&self) -> usize {
        self.cells
    }

    /// The `min_cell_side` (typically δ) this grid was built with.
    #[inline]
    pub fn min_cell_side(&self) -> f64 {
        self.min_cell_side
    }

    /// Current position of `id`, or [`GridError::UnknownId`] when `id` is not
    /// part of the indexed population.
    #[inline]
    pub fn try_position(&self, id: UserId) -> Result<Point, GridError> {
        self.points
            .get(id as usize)
            .copied()
            .ok_or_else(|| GridError::unknown(id, self.points.len()))
    }

    /// Current position of `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range; use
    /// [`ShardedDynamicGrid::try_position`] for untrusted ids.
    #[inline]
    pub fn position(&self, id: UserId) -> Point {
        debug_assert!(
            (id as usize) < self.points.len(),
            "position: id {id} out of range"
        );
        self.points[id as usize]
    }

    #[inline]
    fn shard_of_cell(&self, cell: usize) -> usize {
        (cell / self.cells) / self.rows_per_shard
    }

    /// Marks `cell` as a source cell of the current epoch, enqueueing it on
    /// the owning shard's dirty queue the first time.
    #[inline]
    fn mark_source(&mut self, cell: u32) {
        if self.source_mark[cell as usize] != self.epoch {
            self.source_mark[cell as usize] = self.epoch;
            let s = self.shard_of_cell(cell as usize);
            self.shards[s].source_cells.push(cell);
        }
    }

    /// Opens a new tick: advances the epoch and clears every shard's dirty
    /// queue. Call once before a batch of [`ShardedDynamicGrid::stage_move`]s.
    pub fn begin_tick(&mut self) {
        // Epoch 0 is the "never marked" state of the mark arrays; skip it on
        // wraparound so stale stamps can never alias a live epoch.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.source_mark.iter_mut().for_each(|m| *m = 0);
            self.dilated_mark.iter_mut().for_each(|m| *m = 0);
            self.departed_mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        for shard in &mut self.shards {
            shard.source_cells.clear();
        }
    }

    /// Stages a move of `id` to `new_pos`: the position updates immediately,
    /// the old and new cells are marked as this epoch's source cells, and the
    /// structural work is deferred to [`ShardedDynamicGrid::commit_moves`].
    /// Returns the previous position.
    ///
    /// Range queries are **stale** between a stage and the commit (they scan
    /// the pre-move cell structure); debug builds assert that no query runs
    /// on a staged grid.
    pub fn try_stage_move(&mut self, id: UserId, new_pos: Point) -> Result<Point, GridError> {
        let Some(slot) = self.points.get_mut(id as usize) else {
            return Err(GridError::unknown(id, self.points.len()));
        };
        let old = *slot;
        *slot = new_pos;
        self.staged = true;
        let old_cell = self.cell_of[id as usize];
        let new_cell = crate::grid::cell_id_of(&new_pos, self.cell_side, self.cells) as u32;
        self.mark_source(old_cell);
        self.mark_source(new_cell);
        if old_cell == new_cell {
            let s = self.shard_of_cell(old_cell as usize);
            let shard = &mut self.shards[s];
            if !shard.needs_rebuild {
                shard.coord_moves.push(id);
            }
            return Ok(old);
        }
        self.cell_of[id as usize] = new_cell;
        let old_shard = self.shard_of_cell(old_cell as usize);
        let new_shard = self.shard_of_cell(new_cell as usize);
        self.shards[old_shard].needs_rebuild = true;
        if old_shard != new_shard {
            // Membership surgery is deferred to the commit (an eager sorted
            // remove/insert costs an O(shard) memmove per mover). The commit
            // derives final membership from `cell_of`, so intermediate hops
            // of a multi-staged id need no bookkeeping beyond the queues.
            self.departed_mark[id as usize] = self.epoch;
            self.shards[new_shard].needs_rebuild = true;
            self.shards[old_shard].membership_dirty = true;
            self.shards[new_shard].membership_dirty = true;
            self.shards[new_shard].incoming.push(id);
        }
        Ok(old)
    }

    /// [`ShardedDynamicGrid::try_stage_move`] for trusted ids.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn stage_move(&mut self, id: UserId, new_pos: Point) -> Point {
        debug_assert!(
            (id as usize) < self.points.len(),
            "stage_move: id {id} out of range"
        );
        self.try_stage_move(id, new_pos)
            .expect("stage_move: id out of range")
    }

    /// Applies every staged move to the cell structure. Shards with membership
    /// or cell changes rebuild their CSR; shards whose movers stayed in place
    /// refresh mirror coordinates; untouched shards are skipped. No
    /// allocation once the per-shard buffers reach steady size.
    ///
    /// Call once per [`ShardedDynamicGrid::begin_tick`] batch — the deferred
    /// membership repair resolves each staged id against its *final* cell, so
    /// a batch must be committed in one piece.
    pub fn commit_moves(&mut self) {
        // Phase 1 — departures: drop every member that staged a cross-shard
        // hop this epoch. O(shard members) per membership-dirty shard, in
        // place of an O(shard) memmove per mover staged eagerly.
        let epoch = self.epoch;
        for shard in &mut self.shards {
            if shard.membership_dirty {
                let departed = &self.departed_mark;
                shard.members.retain(|&id| departed[id as usize] != epoch);
            }
        }
        // Phase 2 — arrivals: re-insert each departed id into the shard
        // owning its final cell. The queues may hold transient hops and
        // duplicates; the final-cell check drops transients and clearing the
        // departure mark on acceptance dedups repeats. Runs strictly after
        // every departure so a later shard's retain cannot see a cleared
        // mark.
        let cells = self.cells;
        let rows_per_shard = self.rows_per_shard;
        for s in 0..self.shards.len() {
            let mut incoming = std::mem::take(&mut self.shards[s].incoming);
            let mut appended = false;
            for &id in &incoming {
                let final_shard = (self.cell_of[id as usize] as usize / cells) / rows_per_shard;
                if final_shard == s && self.departed_mark[id as usize] == epoch {
                    self.departed_mark[id as usize] = 0;
                    self.shards[s].members.push(id);
                    appended = true;
                }
            }
            incoming.clear();
            self.shards[s].incoming = incoming;
            if appended {
                // Mostly-sorted (ascending survivors + appended tail).
                self.shards[s].members.sort_unstable();
            }
            self.shards[s].membership_dirty = false;
        }
        // Phase 3 — cell structure.
        for shard in &mut self.shards {
            if shard.needs_rebuild {
                shard.coord_moves.clear();
                let nc = shard.n_cells;
                shard.offsets.clear();
                shard.offsets.resize(nc + 1, 0);
                for &id in &shard.members {
                    let lc = self.cell_of[id as usize] as usize - shard.cell_base;
                    shard.offsets[lc + 1] += 1;
                }
                for c in 1..=nc {
                    shard.offsets[c] += shard.offsets[c - 1];
                }
                let m = shard.members.len();
                shard.entries.clear();
                shard.entries.resize(m, 0);
                shard.coords.xs.clear();
                shard.coords.xs.resize(m, 0.0);
                shard.coords.ys.clear();
                shard.coords.ys.resize(m, 0.0);
                let cursor = &mut self.cursor_scratch[..nc];
                cursor.iter_mut().for_each(|c| *c = 0);
                // Members ascend, so entries within each cell ascend too —
                // the invariant `to_grid_index` relies on.
                for &id in &shard.members {
                    let lc = self.cell_of[id as usize] as usize - shard.cell_base;
                    let at = (shard.offsets[lc] + cursor[lc]) as usize;
                    cursor[lc] += 1;
                    let p = self.points[id as usize];
                    shard.entries[at] = id;
                    shard.coords.xs[at] = p.x;
                    shard.coords.ys[at] = p.y;
                }
                shard.needs_rebuild = false;
            } else if !shard.coord_moves.is_empty() {
                for &id in &shard.coord_moves {
                    let lc = self.cell_of[id as usize] as usize - shard.cell_base;
                    let lo = shard.offsets[lc] as usize;
                    let hi = shard.offsets[lc + 1] as usize;
                    let at = lo
                        + shard.entries[lo..hi]
                            .binary_search(&id)
                            .expect("in-place mover must sit in its cell slice");
                    let p = self.points[id as usize];
                    shard.coords.xs[at] = p.x;
                    shard.coords.ys[at] = p.y;
                }
                shard.coord_moves.clear();
            }
        }
        self.staged = false;
    }

    /// Appends to `out` every user in the one-ring dilation (3×3 cell blocks)
    /// of this epoch's source cells — a superset of every user whose
    /// δ-neighborhood a staged move could have changed (cell side ≥ δ).
    /// `out` is cleared first. Each user appears exactly once, in **ascending
    /// cell order** (topology-independent): a rescore sweeping the result
    /// probes consecutive grid rows, so its 3×3-cell lookups slide through a
    /// cache-resident window instead of striding the whole grid the way an
    /// id-order pass does. Call after [`ShardedDynamicGrid::commit_moves`].
    pub fn collect_dirty_users(&mut self, out: &mut Vec<UserId>) {
        debug_assert!(!self.staged, "collect_dirty_users on a staged grid");
        out.clear();
        let cells = self.cells as isize;
        let mut dirty_cells = std::mem::take(&mut self.dirty_cells);
        dirty_cells.clear();
        for s in 0..self.shards.len() {
            for i in 0..self.shards[s].source_cells.len() {
                let c = self.shards[s].source_cells[i] as isize;
                let cy = c / cells;
                let cx = c % cells;
                for ny in (cy - 1).max(0)..=(cy + 1).min(cells - 1) {
                    for nx in (cx - 1).max(0)..=(cx + 1).min(cells - 1) {
                        let nc = (ny * cells + nx) as usize;
                        if self.dilated_mark[nc] != self.epoch {
                            self.dilated_mark[nc] = self.epoch;
                            dirty_cells.push(nc as u32);
                        }
                    }
                }
            }
        }
        // Emit in ascending cell order. Both branches produce the same
        // output; the cutover only picks the cheaper way to get there
        // (sorting the dirty-cell list vs scanning every cell in order) and
        // depends only on the dilation — not the shard layout — so the
        // order stays topology-independent.
        if dirty_cells.len() * 4 >= self.source_mark.len() {
            // Consecutive cells slice contiguous entry ranges, so a run of
            // dirty cells is one copy.
            for shard in &self.shards {
                let marks = &self.dilated_mark[shard.cell_base..shard.cell_base + shard.n_cells];
                let mut lc = 0;
                while lc < shard.n_cells {
                    if marks[lc] != self.epoch {
                        lc += 1;
                        continue;
                    }
                    let start = lc;
                    while lc < shard.n_cells && marks[lc] == self.epoch {
                        lc += 1;
                    }
                    let lo = shard.offsets[start] as usize;
                    let hi = shard.offsets[lc] as usize;
                    out.extend_from_slice(&shard.entries[lo..hi]);
                }
            }
        } else {
            dirty_cells.sort_unstable();
            for &nc in &dirty_cells {
                let shard = &self.shards[self.shard_of_cell(nc as usize)];
                let lc = nc as usize - shard.cell_base;
                let lo = shard.offsets[lc] as usize;
                let hi = shard.offsets[lc + 1] as usize;
                out.extend_from_slice(&shard.entries[lo..hi]);
            }
        }
        self.dirty_cells = dirty_cells;
    }

    /// All point ids within Euclidean distance `radius` (inclusive) of
    /// `center`, excluding `exclude` (pass an out-of-range id such as
    /// `u32::MAX` to exclude nothing). Results are appended to `out` (cleared
    /// first) as `(id, squared distance)` pairs — the same contract, scan
    /// order, and blocked distance kernel as [`GridIndex::neighbors_within`],
    /// so results are bit-identical to a query against
    /// [`ShardedDynamicGrid::to_grid_index`].
    pub fn neighbors_of_point(
        &self,
        center: Point,
        exclude: UserId,
        radius: f64,
        out: &mut Vec<(UserId, f64)>,
    ) {
        debug_assert!(!self.staged, "range query on a staged grid");
        out.clear();
        let r_sq = radius * radius;
        let span = (radius / self.cell_side).ceil() as isize;
        let qcx = crate::grid::cell_coord(center.x, self.cell_side, self.cells) as isize;
        let qcy = crate::grid::cell_coord(center.y, self.cell_side, self.cells) as isize;
        let mut d = [0.0f64; KERNEL_BLOCK];
        for cy in (qcy - span).max(0)..=(qcy + span).min(self.cells as isize - 1) {
            let shard = &self.shards[cy as usize / self.rows_per_shard];
            for cx in (qcx - span).max(0)..=(qcx + span).min(self.cells as isize - 1) {
                let lc = cy as usize * self.cells + cx as usize - shard.cell_base;
                let lo = shard.offsets[lc] as usize;
                let hi = shard.offsets[lc + 1] as usize;
                let ids = &shard.entries[lo..hi];
                let xs = &shard.coords.xs[lo..hi];
                let ys = &shard.coords.ys[lo..hi];
                let mut base = 0;
                while base < ids.len() {
                    let m = (ids.len() - base).min(KERNEL_BLOCK);
                    dist_sq_block(
                        center.x,
                        center.y,
                        &xs[base..base + m],
                        &ys[base..base + m],
                        &mut d[..m],
                    );
                    for (j, &d_sq) in d[..m].iter().enumerate() {
                        let id = ids[base + j];
                        if d_sq <= r_sq && id != exclude {
                            out.push((id, d_sq));
                        }
                    }
                    base += m;
                }
            }
        }
    }

    /// All point ids within distance `radius` (inclusive) of point
    /// `query_id`, excluding `query_id` itself — the contract of
    /// [`GridIndex::neighbors_within`].
    #[inline]
    pub fn neighbors_within(&self, query_id: UserId, radius: f64, out: &mut Vec<(UserId, f64)>) {
        self.neighbors_of_point(self.points[query_id as usize], query_id, radius, out);
    }

    /// Freezes the current cell structure into a [`GridIndex`] by
    /// concatenating the shard CSRs — a pure O(n + cells) copy, no
    /// re-bucketing. Bit-identical to `GridIndex::build(self.points(), δ)`
    /// because shards cover consecutive global cell ranges and entries ascend
    /// within each cell.
    pub fn to_grid_index(&self) -> GridIndex {
        debug_assert!(!self.staged, "to_grid_index on a staged grid");
        let n_cells = self.cells * self.cells;
        let n = self.points.len();
        let mut offsets: Vec<u32> = Vec::with_capacity(n_cells + 1);
        offsets.push(0);
        let mut entries: Vec<UserId> = Vec::with_capacity(n);
        let mut coords = PointsSoA::with_capacity(n);
        for shard in &self.shards {
            let base = *offsets.last().expect("offsets starts non-empty");
            offsets.extend(shard.offsets[1..].iter().map(|&o| base + o));
            entries.extend_from_slice(&shard.entries);
            coords.xs.extend_from_slice(&shard.coords.xs);
            coords.ys.extend_from_slice(&shard.coords.ys);
        }
        GridIndex::assemble(
            self.cells,
            self.cell_side,
            offsets,
            entries,
            coords,
            self.points.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
    }

    fn ids(mut v: Vec<(UserId, f64)>) -> Vec<UserId> {
        v.sort_by_key(|&(id, _)| id);
        v.into_iter().map(|(id, _)| id).collect()
    }

    fn assert_index_identical(a: &GridIndex, b: &GridIndex) {
        assert_eq!(a.raw_parts(), b.raw_parts());
    }

    #[test]
    fn fresh_build_matches_static_index_bitwise() {
        let pts = sample_points(400, 9);
        for shards in [1usize, 2, 5, 16, 1000] {
            let sharded = ShardedDynamicGrid::build_with_shards(&pts, 0.05, shards);
            assert_index_identical(&sharded.to_grid_index(), &GridIndex::build(&pts, 0.05));
        }
    }

    #[test]
    fn queries_match_static_index_bitwise() {
        let pts = sample_points(500, 3);
        let sharded = ShardedDynamicGrid::build(&pts, 0.04);
        let fixed = GridIndex::build(&pts, 0.04);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in (0..500u32).step_by(13) {
            sharded.neighbors_within(q, 0.04, &mut a);
            fixed.neighbors_within(q, 0.04, &mut b);
            // Same order, same ids, bit-equal distances.
            assert_eq!(a.len(), b.len(), "query {q}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0, y.0, "query {q}");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn staged_commit_matches_rebuilt_static_index() {
        let pts = sample_points(300, 4);
        let mut g = ShardedDynamicGrid::build_with_shards(&pts, 0.04, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _tick in 0..20 {
            g.begin_tick();
            for _ in 0..40 {
                let id = rng.gen_range(0..300u32);
                g.stage_move(id, Point::new(rng.gen(), rng.gen()));
            }
            g.commit_moves();
            assert_index_identical(&g.to_grid_index(), &GridIndex::build(g.points(), 0.04));
        }
    }

    #[test]
    fn dirty_users_cover_every_changed_neighborhood() {
        // Every user within δ of a mover's old or new position must be in
        // the dirty set (supersets are fine, misses are not).
        let delta = 0.05;
        let pts = sample_points(600, 11);
        let mut g = ShardedDynamicGrid::build_with_shards(&pts, delta, 5);
        let before = pts.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        g.begin_tick();
        let movers: Vec<(UserId, Point)> = (0..30)
            .map(|_| (rng.gen_range(0..600u32), Point::new(rng.gen(), rng.gen())))
            .collect();
        let mut olds = Vec::new();
        for &(id, p) in &movers {
            olds.push((id, g.stage_move(id, p)));
        }
        g.commit_moves();
        let mut dirty = Vec::new();
        g.collect_dirty_users(&mut dirty);
        let dirty_set: std::collections::HashSet<UserId> = dirty.iter().copied().collect();
        assert_eq!(dirty_set.len(), dirty.len(), "dirty list has duplicates");
        let r_sq = delta * delta;
        for u in 0..600u32 {
            let pu_now = g.points()[u as usize];
            let pu_before = before[u as usize];
            let touched = movers.iter().any(|&(m, _)| m == u)
                || olds.iter().any(|&(m, old)| {
                    m != u
                        && (old.dist_sq(&pu_before) <= r_sq
                            || g.points()[m as usize].dist_sq(&pu_now) <= r_sq)
                });
            if touched {
                assert!(dirty_set.contains(&u), "user {u} missed by dirty marking");
            }
        }
    }

    #[test]
    fn dirty_queues_stay_local_to_moved_regions() {
        // One mover in a corner must not dirty cells (or users) elsewhere.
        let pts = sample_points(2000, 14);
        let mut g = ShardedDynamicGrid::build_with_shards(&pts, 0.02, 10);
        g.begin_tick();
        let from = g.points()[0];
        g.stage_move(
            0,
            Point::new(
                (from.x + 0.001).clamp(0.0, 1.0),
                (from.y + 0.001).clamp(0.0, 1.0),
            ),
        );
        g.commit_moves();
        let mut dirty = Vec::new();
        g.collect_dirty_users(&mut dirty);
        assert!(
            dirty.len() < 100,
            "a 0.001 nudge dirtied {} of 2000 users",
            dirty.len()
        );
        let queued: usize = (0..g.shard_count())
            .map(|s| g.shards[s].source_cells.len())
            .sum();
        assert!(queued <= 2, "one nudge queued {queued} source cells");
    }

    #[test]
    fn epoch_separates_ticks() {
        let pts = sample_points(200, 8);
        let mut g = ShardedDynamicGrid::build(&pts, 0.05);
        g.begin_tick();
        g.stage_move(0, Point::new(0.9, 0.9));
        g.commit_moves();
        let mut dirty = Vec::new();
        g.collect_dirty_users(&mut dirty);
        assert!(!dirty.is_empty());
        // A tick with no moves has an empty dirty set — stale marks from the
        // previous epoch must not leak.
        g.begin_tick();
        g.commit_moves();
        g.collect_dirty_users(&mut dirty);
        assert!(dirty.is_empty(), "stale source cells leaked across ticks");
    }

    #[test]
    fn out_of_range_ids_are_rejected_not_panicking() {
        let mut g = ShardedDynamicGrid::build(&sample_points(10, 1), 0.05);
        assert_eq!(
            g.try_stage_move(10, Point::new(0.5, 0.5)),
            Err(GridError::UnknownId {
                id: 10,
                population: 10
            })
        );
        assert_eq!(
            g.try_position(99),
            Err(GridError::UnknownId {
                id: 99,
                population: 10
            })
        );
        // Valid ids still work through the fallible API.
        assert!(g.try_stage_move(3, Point::new(0.4, 0.4)).is_ok());
        g.commit_moves();
        assert_eq!(g.try_position(3), Ok(Point::new(0.4, 0.4)));
    }

    #[test]
    fn boundary_and_out_of_square_coordinates_stay_queryable() {
        let mut g =
            ShardedDynamicGrid::build(&[Point::new(0.5, 0.5), Point::new(0.999, 0.999)], 0.01);
        g.begin_tick();
        g.stage_move(0, Point::new(1.0, 1.0));
        g.commit_moves();
        let mut out = Vec::new();
        g.neighbors_within(0, 0.01, &mut out);
        assert_eq!(ids(out.clone()), vec![1]);
        g.begin_tick();
        g.stage_move(0, Point::new(-0.002, 0.5));
        g.stage_move(1, Point::new(0.01, 0.5));
        g.commit_moves();
        g.neighbors_within(1, 0.05, &mut out);
        assert_eq!(ids(out), vec![0]);
    }

    #[test]
    fn peer_at_exactly_delta_is_in_range() {
        let delta = 0.125;
        let g = ShardedDynamicGrid::build(
            &[Point::new(0.25, 0.5), Point::new(0.25 + delta, 0.5)],
            delta,
        );
        let mut out = Vec::new();
        g.neighbors_within(0, delta, &mut out);
        assert_eq!(ids(out.clone()), vec![1]);
        g.neighbors_within(1, delta, &mut out);
        assert_eq!(ids(out), vec![0]);
    }

    #[test]
    fn multi_hop_cross_shard_stages_resolve_to_final_cell() {
        // With 0.05 cells there are 20 rows; 10 shards → 2 rows each, so
        // y ∈ {0.05, 0.45, 0.95} land in three distinct shards. One batch
        // stages A→B→C for user 0 and A→B→A for user 1; the deferred
        // membership repair must leave each exactly once, in its final shard.
        let pts = sample_points(120, 21);
        let mut g = ShardedDynamicGrid::build_with_shards(&pts, 0.05, 10);
        g.begin_tick();
        g.stage_move(0, Point::new(0.5, 0.45));
        g.stage_move(0, Point::new(0.5, 0.95));
        let home = g.position(1);
        g.stage_move(1, Point::new(0.5, 0.45));
        g.stage_move(1, home);
        g.commit_moves();
        assert_index_identical(&g.to_grid_index(), &GridIndex::build(g.points(), 0.05));
        let total: usize = (0..g.shard_count())
            .map(|s| g.shards[s].members.len())
            .sum();
        assert_eq!(total, 120, "membership repair lost or duplicated users");
    }

    #[test]
    fn duplicate_stages_last_position_wins() {
        let pts = sample_points(50, 2);
        let mut g = ShardedDynamicGrid::build(&pts, 0.05);
        g.begin_tick();
        g.stage_move(7, Point::new(0.1, 0.1));
        g.stage_move(7, Point::new(0.9, 0.9));
        g.stage_move(7, Point::new(0.3, 0.7));
        g.commit_moves();
        assert_eq!(g.position(7), Point::new(0.3, 0.7));
        assert_index_identical(&g.to_grid_index(), &GridIndex::build(g.points(), 0.05));
    }
}
