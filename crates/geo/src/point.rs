//! 2-D points in the normalized unit square.

use serde::{Deserialize, Serialize};

/// A 2-D point. Coordinates are normalized into the unit square `[0, 1]²`
/// by the dataset generators, mirroring the paper's normalization of the
/// California POI dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred over [`Point::dist`] in hot loops (neighbor search, RSS
    /// ranking) because ordering by squared distance equals ordering by
    /// distance and skips the square root.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Chebyshev (L∞) distance to `other`; the side length of the smallest
    /// square centered anywhere that covers both points is `2 * chebyshev`.
    #[inline]
    pub fn chebyshev(&self, other: &Point) -> f64 {
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        dx.max(dy)
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// True when both coordinates lie in `[0, 1]`.
    #[inline]
    pub fn in_unit_square(&self) -> bool {
        (0.0..=1.0).contains(&self.x) && (0.0..=1.0).contains(&self.y)
    }

    /// Clamps both coordinates into `[0, 1]`.
    #[inline]
    pub fn clamp_unit(&self) -> Point {
        Point::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0))
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_and_dist_sq_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(0.25, 0.75);
        let b = Point::new(0.5, 0.125);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point::new(0.1, 0.9);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn chebyshev_takes_max_axis() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.2, 0.7);
        assert!((a.chebyshev(&b) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_axes() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.2, 0.7);
        assert!((a.manhattan(&b) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 1.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(a.midpoint(&b), Point::new(0.5, 0.5));
    }

    #[test]
    fn unit_square_check_and_clamp() {
        assert!(Point::new(0.0, 1.0).in_unit_square());
        assert!(!Point::new(-0.1, 0.5).in_unit_square());
        assert_eq!(Point::new(-0.1, 1.5).clamp_unit(), Point::new(0.0, 1.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (0.3, 0.4).into();
        assert_eq!(p, Point::new(0.3, 0.4));
    }
}
