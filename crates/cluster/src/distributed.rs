//! Distributed t-connectivity k-clustering (paper Algorithm 2).
//!
//! Run by a host vertex that discovers the WPG incrementally by asking peers
//! for their adjacency lists. Three steps:
//!
//! 1. **Span** (lines 1–6): grow a cluster from the host through edges in
//!    increasing weight order (Prim-style) until it holds exactly k vertices;
//!    the spanning bottleneck is the connectivity t. (The Prim bottleneck
//!    equals the minimum threshold at which the host's t-connectivity class
//!    reaches size k, so C is a size-k certificate of the smallest valid
//!    t-connectivity cluster. C is deliberately *not* expanded to the full
//!    equivalence class here: under coarse rank weights the class can
//!    percolate to thousands of users, and the paper's reported costs —
//!    ≈ |C| + |border(C)| messages — only arise for the size-k cluster.)
//! 2. **Border validation** (lines 7–15): every external border vertex must
//!    itself own a valid t-connectivity k-cluster in the remaining WPG
//!    (Theorem 4.4's sufficient condition for isolation). A failing border
//!    vertex is absorbed, t grows to the lightest edge joining it to C, the
//!    cluster is then *spanned with the new t* (closed under t-reachability,
//!    per line 14), and newly exposed border vertices join the queue. A
//!    vertex that passed once is not rechecked (t only increases).
//! 3. **Partition** (lines 16–17): the absorbed super-cluster is cut by the
//!    centralized algorithm (over the adjacency the host has already
//!    gathered — no further messages); the host's piece is its k-anonymity
//!    cluster, and *every* piece is returned so the caller can register them
//!    all — subsequent requests by any super-cluster member are then served
//!    with zero communication (paper §VI-C).
//!
//! Communication accounting follows §VI: "if a user is involved in the
//! k-clustering process, only a single message containing the adjacent
//! vertices as well as the edge weights is sent to the host vertex", so the
//! cost equals the number of distinct users whose adjacency the host
//! fetched (the host's own list is local and free). The algorithm is written
//! against [`crate::fetch::PeerFetch`], so the identical code runs over an
//! in-memory graph or over `nela-netsim`'s simulated radio network.

use crate::centralized::centralized_k_clustering_edges;
use crate::fetch::{AdjCache, LocalFetch, PeerFetch};
use crate::{Cluster, ClusterError, KPolicy};
use nela_geo::UserId;
use nela_wpg::{Weight, Wpg};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Result of a distributed clustering request.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The host's k-anonymity cluster (a piece of the super-cluster).
    pub host_cluster: Cluster,
    /// Every cluster produced by partitioning the super-cluster, including
    /// the host's. All are valid (size ≥ the partition requirement — `k`
    /// under a uniform policy, the super-cluster's max `k_i` otherwise).
    pub all_clusters: Vec<Cluster>,
    /// The super-cluster: the host's spanned cluster after border
    /// absorption (sorted).
    pub super_cluster: Vec<UserId>,
    /// Final connectivity threshold t of the super-cluster.
    pub connectivity: Weight,
    /// Number of peers whose adjacency list the host had to fetch — the
    /// per-request communication cost of §VI.
    pub involved_users: usize,
    /// The anonymity requirement the host's cluster had to meet: `k` under
    /// a uniform policy, the max `k_i` over `host_cluster`'s members under
    /// a personalized one.
    pub required_k: usize,
}

/// Runs Algorithm 2 for `host` on an in-memory WPG. See
/// [`distributed_k_clustering_with`] for the transport-generic version.
pub fn distributed_k_clustering(
    g: &Wpg,
    host: UserId,
    k: usize,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<DistributedOutcome, ClusterError> {
    let mut fetch = LocalFetch::new(g);
    distributed_k_clustering_with(&mut fetch, host, k, removed)
}

/// Runs Algorithm 2 for `host` on an in-memory WPG under a per-user
/// anonymity policy. See [`distributed_k_clustering_with_policy`].
pub fn distributed_k_clustering_policy(
    g: &Wpg,
    host: UserId,
    kp: KPolicy<'_>,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<DistributedOutcome, ClusterError> {
    let mut fetch = LocalFetch::new(g);
    distributed_k_clustering_with_policy(&mut fetch, host, kp, removed)
}

/// Runs Algorithm 2 for `host`, fetching peer adjacency through `fetch`.
/// Vertices with `removed(v) == true` (previously clustered users) are
/// treated as absent from the remaining WPG.
///
/// # Errors
/// - [`ClusterError::ComponentTooSmall`] when fewer than k users are
///   reachable from the host in the remaining WPG.
/// - [`ClusterError::PeerUnreachable`] when a required peer cannot be
///   contacted (only possible with fallible transports).
pub fn distributed_k_clustering_with(
    fetch: &mut dyn PeerFetch,
    host: UserId,
    k: usize,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<DistributedOutcome, ClusterError> {
    assert!(k >= 1, "anonymity level must be at least 1");
    distributed_k_clustering_with_policy(fetch, host, KPolicy::Uniform(k), removed)
}

/// Transport-generic Algorithm 2 under a per-user anonymity policy.
///
/// Under [`KPolicy::Uniform`] this is **bit-identical** to the original
/// single-`k` algorithm: the requirement below is constant, so every heap
/// pop, border check and partition decision is unchanged. Under
/// [`KPolicy::PerUser`] the requirement is a moving target — the max `k_i`
/// of the members gathered so far — so absorbing a high-`k_i` user can
/// demand further spanning; the outer loop below re-spans until the
/// cluster satisfies every member it holds.
///
/// # Errors
/// As [`distributed_k_clustering_with`]; `ComponentTooSmall` fires when
/// the host's component cannot reach the (possibly raised) requirement.
pub fn distributed_k_clustering_with_policy(
    fetch: &mut dyn PeerFetch,
    host: UserId,
    kp: KPolicy<'_>,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<DistributedOutcome, ClusterError> {
    assert!(kp.of(host) >= 1, "anonymity level must be at least 1");
    assert!(!removed(host), "host must not be already clustered");
    let mut adj = AdjCache::new(fetch, host);
    let mut in_c: HashSet<UserId> = HashSet::from([host]);
    let mut t: Weight = 0;
    let mut enqueued: HashSet<UserId> = HashSet::new();

    loop {
        // ---- Step 1: Prim-style span to the current requirement (exactly
        // k in the uniform case; the max k_i of the members so far in the
        // personalized one).
        span_to_requirement(&mut adj, &mut in_c, &mut t, kp, removed)?;

        // ---- Step 2: border validation loop. A vertex that passed once is
        // not rechecked within one pass (t only increases).
        let mut queue: VecDeque<UserId> = VecDeque::new();
        collect_border(&mut adj, &in_c, removed, &mut queue, &mut enqueued)?;

        while let Some(v) = queue.pop_front() {
            if in_c.contains(&v) {
                continue; // absorbed since it was enqueued
            }
            if border_has_valid_cluster(&mut adj, v, t, kp, removed, &in_c)? {
                continue; // passes now, passes forever (t only increases)
            }
            // Absorb v; t rises to the lightest edge joining v to C. A border
            // vertex was enqueued because some member listed it, so its own list
            // must name a member back — unless the transport lied.
            let join_w = adj
                .get(v)?
                .iter()
                .filter(|(y, _)| in_c.contains(y))
                .map(|&(_, w)| w)
                .min()
                .ok_or(ClusterError::Inconsistent { user: v })?;
            in_c.insert(v);
            t = t.max(join_w);
            close_under_t(&mut adj, &mut in_c, t, removed)?;
            collect_border(&mut adj, &in_c, removed, &mut queue, &mut enqueued)?;
        }

        // Uniform policy: step 1 reached k and absorption only grows the
        // cluster, so this always holds and the loop runs exactly once.
        // Personalized: an absorbed member may have raised the requirement
        // past the current size — re-span with the enlarged border state.
        if in_c.len() >= kp.required(in_c.iter().copied()) {
            break;
        }
    }

    // ---- Step 3: centralized partition of the super-cluster, over the
    // adjacency already gathered (every member's list is cached). The
    // partition must satisfy the strictest member, so it cuts at the
    // super-cluster's own requirement.
    let mut super_cluster: Vec<UserId> = in_c.iter().copied().collect();
    super_cluster.sort_unstable();
    let k_part = kp.required(super_cluster.iter().copied());
    let edges = adj.internal_edges(&super_cluster);
    let partition = centralized_k_clustering_edges(&super_cluster, &edges, k_part);
    debug_assert!(
        partition.underfilled.is_empty(),
        "super-cluster is connected and ≥ k, its partition cannot underfill"
    );
    // The host is in the super-cluster and a connected super-cluster of
    // size ≥ k cannot underfill, so over an honest transport the partition
    // always covers the host; a corrupted adjacency view can break that.
    let host_idx = partition
        .cluster_of(host)
        .ok_or(ClusterError::Inconsistent { user: host })?;
    let host_cluster = partition.clusters[host_idx].clone();
    let required_k = kp.required(host_cluster.members.iter().copied());

    Ok(DistributedOutcome {
        host_cluster,
        all_clusters: partition.clusters,
        super_cluster,
        connectivity: t,
        involved_users: adj.contacted(),
        required_k,
    })
}

/// Grows `in_c` Prim-style through edges in increasing weight order until
/// its size meets the policy requirement of its own members (Algorithm 2
/// lines 1–6). The heap is seeded from every current member's external
/// edges; on the first call `in_c` is just the host, reproducing the
/// original span exactly.
fn span_to_requirement(
    adj: &mut AdjCache<'_>,
    in_c: &mut HashSet<UserId>,
    t: &mut Weight,
    kp: KPolicy<'_>,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<(), ClusterError> {
    let mut need = kp.required(in_c.iter().copied());
    if in_c.len() >= need {
        return Ok(());
    }
    let mut members: Vec<UserId> = in_c.iter().copied().collect();
    members.sort_unstable();
    let mut heap: BinaryHeap<Reverse<(Weight, UserId)>> = BinaryHeap::new();
    for c in members {
        for &(v, w) in adj.get(c)? {
            if !removed(v) && !in_c.contains(&v) {
                heap.push(Reverse((w, v)));
            }
        }
    }
    while in_c.len() < need {
        let Some(Reverse((w, v))) = heap.pop() else {
            return Err(ClusterError::ComponentTooSmall {
                reachable: in_c.len(),
            });
        };
        if in_c.contains(&v) {
            continue;
        }
        in_c.insert(v);
        need = need.max(kp.of(v));
        *t = (*t).max(w);
        for &(y, wy) in adj.get(v)? {
            if !removed(y) && !in_c.contains(&y) {
                heap.push(Reverse((wy, y)));
            }
        }
    }
    Ok(())
}

/// Adds every not-yet-enqueued border vertex of C to the check queue. The
/// adjacency of C members is already cached at the host, so this costs no
/// new messages. Members are visited in id order so the border queue — and
/// with it the whole absorption sequence — is deterministic.
fn collect_border(
    adj: &mut AdjCache<'_>,
    in_c: &HashSet<UserId>,
    removed: &dyn Fn(UserId) -> bool,
    queue: &mut VecDeque<UserId>,
    enqueued: &mut HashSet<UserId>,
) -> Result<(), ClusterError> {
    let mut members: Vec<UserId> = in_c.iter().copied().collect();
    members.sort_unstable();
    for c in members {
        for &(v, _) in adj.get(c)? {
            if !in_c.contains(&v) && !removed(v) && enqueued.insert(v) {
                queue.push_back(v);
            }
        }
    }
    Ok(())
}

/// Expands `in_c` to its t-reachability closure ("span C with new t",
/// Algorithm 2 line 14), fetching adjacency of every vertex that enters.
fn close_under_t(
    adj: &mut AdjCache<'_>,
    in_c: &mut HashSet<UserId>,
    t: Weight,
    removed: &dyn Fn(UserId) -> bool,
) -> Result<(), ClusterError> {
    let mut stack: Vec<UserId> = in_c.iter().copied().collect();
    while let Some(x) = stack.pop() {
        let nbrs: Vec<(UserId, Weight)> = adj.get(x)?.to_vec();
        for (y, w) in nbrs {
            if w <= t && !removed(y) && !in_c.contains(&y) {
                in_c.insert(y);
                stack.push(y);
            }
        }
    }
    Ok(())
}

/// Does border vertex `v` own a t-connectivity cluster satisfying the
/// policy in the remaining WPG (previous removals plus the current
/// super-cluster)? Under a uniform policy the BFS stops as soon as k
/// vertices are seen (the common passing case contacts only ~k peers);
/// under a personalized one the target is the max `k_i` of the *whole*
/// t-component — a partial count could miss a strict member beyond the
/// horizon — so the component is walked in full.
fn border_has_valid_cluster(
    adj: &mut AdjCache<'_>,
    v: UserId,
    t: Weight,
    kp: KPolicy<'_>,
    removed: &dyn Fn(UserId) -> bool,
    in_c: &HashSet<UserId>,
) -> Result<bool, ClusterError> {
    let mut visited: HashSet<UserId> = HashSet::from([v]);
    let mut queue: VecDeque<UserId> = VecDeque::from([v]);
    match kp {
        KPolicy::Uniform(k) => {
            if k <= 1 {
                return Ok(true);
            }
            while let Some(x) = queue.pop_front() {
                let nbrs: Vec<(UserId, Weight)> = adj.get(x)?.to_vec();
                for (y, w) in nbrs {
                    if w <= t && !removed(y) && !in_c.contains(&y) && visited.insert(y) {
                        if visited.len() >= k {
                            return Ok(true);
                        }
                        queue.push_back(y);
                    }
                }
            }
            Ok(false)
        }
        KPolicy::PerUser(_) => {
            let mut need = kp.of(v);
            while let Some(x) = queue.pop_front() {
                let nbrs: Vec<(UserId, Weight)> = adj.get(x)?.to_vec();
                for (y, w) in nbrs {
                    if w <= t && !removed(y) && !in_c.contains(&y) && visited.insert(y) {
                        need = need.max(kp.of(y));
                        queue.push_back(y);
                    }
                }
            }
            Ok(visited.len() >= need.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_wpg::{topology, Edge};

    fn no_removed(_: UserId) -> bool {
        false
    }

    /// Paper Fig. 7's walk-through graph: host u spans {u, v} at t = 5;
    /// border vertex w fails the 2-cluster check and is absorbed; border
    /// vertex x passes. Reconstructed with ids:
    /// u=0, v=1, w=2, x=3, plus two more vertices forming x's 2-cluster and
    /// a vertex completing the border of {u,v}.
    fn fig7_like() -> Wpg {
        Wpg::from_edges(
            6,
            &[
                Edge::new(0, 1, 5), // u-v: the initial 2-cluster at t=5
                Edge::new(0, 2, 7), // u-w
                Edge::new(1, 4, 8), // v-(another border vertex)
                Edge::new(2, 3, 6), // w-x
                Edge::new(3, 5, 3), // x and 5 form a 2-cluster at t=5
                Edge::new(4, 5, 4), // 4 and 5 connected under t=5 too
            ],
        )
    }

    #[test]
    fn fig7_walkthrough() {
        let g = fig7_like();
        let out = distributed_k_clustering(&g, 0, 2, &no_removed).unwrap();
        // w(=2) has no 5-connected companion once {0,1} is carved out, so it
        // must be absorbed; t rises to 7 (edge u-w), and the closure under 7
        // pulls in the rest of the graph, whose partition still gives the
        // host the tight {u, v} cluster.
        assert!(out.super_cluster.contains(&2), "w must be absorbed");
        assert!(out.host_cluster.contains(0));
        assert!(out.host_cluster.is_valid(2));
        assert!(out.involved_users > 0);
    }

    #[test]
    fn spans_minimum_weight_first() {
        // Star around 0 with distinct weights: 2-cluster takes the lightest.
        let g = Wpg::from_edges(
            4,
            &[Edge::new(0, 1, 3), Edge::new(0, 2, 1), Edge::new(0, 3, 2)],
        );
        let out = distributed_k_clustering(&g, 0, 2, &no_removed).unwrap();
        assert!(out.host_cluster.contains(2), "lightest neighbor chosen");
    }

    #[test]
    fn unreachable_k_errors() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1)]);
        let err = distributed_k_clustering(&g, 0, 3, &no_removed).unwrap_err();
        assert_eq!(err, ClusterError::ComponentTooSmall { reachable: 2 });
    }

    #[test]
    fn host_cluster_is_valid_and_contains_host() {
        let g = topology::small_world(60, 4, 0.2, 8, 21);
        for host in [0u32, 7, 33, 59] {
            let out = distributed_k_clustering(&g, host, 5, &no_removed).unwrap();
            assert!(out.host_cluster.contains(host));
            assert!(out.host_cluster.is_valid(5));
            // host cluster is inside the super-cluster
            for m in &out.host_cluster.members {
                assert!(out.super_cluster.binary_search(m).is_ok());
            }
        }
    }

    #[test]
    fn all_clusters_partition_super_cluster() {
        let g = topology::small_world(80, 6, 0.3, 10, 5);
        let out = distributed_k_clustering(&g, 11, 6, &no_removed).unwrap();
        let mut all: Vec<UserId> = out
            .all_clusters
            .iter()
            .flat_map(|c| c.members.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, out.super_cluster);
        for c in &out.all_clusters {
            assert!(c.is_valid(6));
        }
    }

    #[test]
    fn removed_users_are_never_clustered() {
        let g = topology::ring_lattice(30, 4, 5, 3);
        let removed = |u: UserId| u % 3 == 0 && u != 6; // host 6 stays
        let out = distributed_k_clustering(&g, 6, 3, &removed).unwrap();
        for &m in &out.super_cluster {
            assert!(!(removed)(m), "clustered a removed user {m}");
        }
    }

    #[test]
    fn super_cluster_is_internally_t_connected() {
        // C must be mutually t-connected through internal edges at the
        // reported connectivity (it was spanned through edges ≤ t).
        let g = topology::small_world(50, 4, 0.25, 7, 13);
        let out = distributed_k_clustering(&g, 3, 4, &no_removed).unwrap();
        let set: HashSet<UserId> = out.super_cluster.iter().copied().collect();
        let outside = |u: UserId| !set.contains(&u);
        let mut reached = nela_wpg::connectivity::t_cluster_of(&g, 3, out.connectivity, &outside);
        reached.sort_unstable();
        assert_eq!(reached, out.super_cluster);
    }

    #[test]
    fn no_failure_case_keeps_cluster_at_exactly_k() {
        // Dense unit-weight lattice: t = 1 spans everything, so every border
        // vertex trivially has a valid cluster and C stays at the k vertices
        // Prim found (the paper's common case, cost ≈ |C| + |border|) —
        // independent of the weight stream.
        let g = topology::ring_lattice(60, 6, 1, 4);
        let out = distributed_k_clustering(&g, 10, 5, &no_removed).unwrap();
        assert_eq!(out.super_cluster.len(), 5);
        assert_eq!(out.host_cluster.len(), 5);
    }

    #[test]
    fn border_condition_holds_at_termination() {
        // Theorem 4.4's sufficient condition: every border vertex has a
        // valid t-connectivity cluster in the remaining WPG.
        let g = topology::small_world(60, 4, 0.2, 6, 17);
        let out = distributed_k_clustering(&g, 20, 4, &no_removed).unwrap();
        let set: HashSet<UserId> = out.super_cluster.iter().copied().collect();
        let mut border: HashSet<UserId> = HashSet::new();
        for &c in &out.super_cluster {
            for (v, _) in g.neighbors(c) {
                if !set.contains(&v) {
                    border.insert(v);
                }
            }
        }
        for &b in &border {
            let removed = |u: UserId| set.contains(&u);
            assert!(
                nela_wpg::connectivity::has_t_cluster_of_size(&g, b, out.connectivity, 4, &removed),
                "border vertex {b} lacks a valid cluster"
            );
        }
    }

    #[test]
    fn involved_users_at_least_cluster_size() {
        let g = topology::ring_lattice(40, 4, 5, 1);
        let out = distributed_k_clustering(&g, 0, 5, &no_removed).unwrap();
        // The host contacted at least every other super-cluster member.
        assert!(out.involved_users >= out.super_cluster.len() - 1);
    }

    #[test]
    fn k1_returns_quickly() {
        let g = Wpg::from_edges(2, &[Edge::new(0, 1, 1)]);
        let out = distributed_k_clustering(&g, 0, 1, &no_removed).unwrap();
        assert!(out.host_cluster.contains(0));
    }

    #[test]
    fn personalized_all_equal_is_bit_identical_to_uniform() {
        // KPolicy::PerUser with every k_i == k must reproduce the uniform
        // outcome exactly — same clusters, same t, same message count —
        // even though the border check walks a different code path.
        let g = topology::small_world(80, 6, 0.25, 9, 42);
        let ks = vec![5usize; 80];
        for host in [0u32, 7, 23, 61, 79] {
            let uni = distributed_k_clustering(&g, host, 5, &no_removed).unwrap();
            let per = distributed_k_clustering_policy(&g, host, KPolicy::PerUser(&ks), &no_removed)
                .unwrap();
            assert_eq!(per.host_cluster, uni.host_cluster, "host {host}");
            assert_eq!(per.all_clusters, uni.all_clusters);
            assert_eq!(per.super_cluster, uni.super_cluster);
            assert_eq!(per.connectivity, uni.connectivity);
            assert_eq!(per.involved_users, uni.involved_users);
            assert_eq!(per.required_k, uni.required_k);
            assert_eq!(uni.required_k, 5);
        }
    }

    #[test]
    fn strict_member_raises_the_cluster_requirement() {
        // Everyone asks for k=2 except one strict user asking for 6: any
        // cluster that captures the strict user must reach 6 members.
        let g = topology::ring_lattice(30, 4, 5, 3);
        let mut ks = vec![2usize; 30];
        ks[11] = 6;
        let kp = KPolicy::PerUser(&ks);
        let out = distributed_k_clustering_policy(&g, 11, kp, &no_removed).unwrap();
        assert!(out.host_cluster.contains(11));
        assert!(out.required_k >= 6);
        assert!(
            out.host_cluster.len() >= 6,
            "strict member underserved: {:?}",
            out.host_cluster
        );
        for c in &out.all_clusters {
            assert!(c.is_valid_for(kp), "piece violates its members: {c:?}");
        }
    }

    #[test]
    fn absorbing_a_strict_user_triggers_respan() {
        // Host 0 asks for 2 and spans {0, 1} at t=1. Isolated strict user
        // 2 (k_i = 5) fails its border check and is absorbed; the other
        // border vertex passes, so the queue drains with only 3 members —
        // below the absorbed user's requirement. The outer loop must then
        // re-span from the enlarged cluster until all 5 vertices are in.
        let g = Wpg::from_edges(
            5,
            &[
                Edge::new(0, 1, 1), // host's 2-cluster at t=1
                Edge::new(0, 2, 3), // strict user 2, no other neighbors
                Edge::new(1, 3, 4), // border vertex 3...
                Edge::new(3, 4, 2), // ...passes: {3, 4} is a 2-cluster
            ],
        );
        let mut ks = vec![2usize; 5];
        ks[2] = 5;
        let kp = KPolicy::PerUser(&ks);
        let out = distributed_k_clustering_policy(&g, 0, kp, &no_removed).unwrap();
        assert!(out.super_cluster.contains(&2), "strict user absorbed");
        assert_eq!(out.super_cluster.len(), 5, "{:?}", out.super_cluster);
        assert_eq!(out.required_k, 5);
        for c in &out.all_clusters {
            assert!(c.is_valid_for(kp));
        }
    }

    #[test]
    fn personalized_component_too_small_is_typed() {
        // The strict user demands more anonymity than its component holds.
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 2)]);
        let ks = vec![5usize, 1, 1];
        let err =
            distributed_k_clustering_policy(&g, 0, KPolicy::PerUser(&ks), &no_removed).unwrap_err();
        assert_eq!(err, ClusterError::ComponentTooSmall { reachable: 3 });
    }

    #[test]
    fn lying_peer_yields_typed_inconsistency_not_panic() {
        // Peer 1 reports an edge to 2, but 2 denies every edge its peers
        // claim. 2 fails the border check, must be absorbed, and has no
        // joining edge — a state that used to panic and now surfaces as a
        // typed error the engine can degrade on.
        struct Liar;
        impl PeerFetch for Liar {
            fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>> {
                Some(match u {
                    0 => vec![(1, 5)],
                    1 => vec![(0, 5), (2, 9)],
                    _ => Vec::new(),
                })
            }
        }
        let err = distributed_k_clustering_with(&mut Liar, 0, 2, &no_removed).unwrap_err();
        assert_eq!(err, ClusterError::Inconsistent { user: 2 });
    }

    #[test]
    fn dead_peer_aborts_with_unreachable() {
        struct DeadPeer<'a> {
            inner: LocalFetch<'a>,
            dead: UserId,
        }
        impl PeerFetch for DeadPeer<'_> {
            fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>> {
                if u == self.dead {
                    None
                } else {
                    self.inner.fetch(u)
                }
            }
        }
        let g = topology::ring_lattice(20, 2, 3, 2);
        let mut f = DeadPeer {
            inner: LocalFetch::new(&g),
            dead: 1,
        };
        // Host 0 needs its ring neighbors; peer 1 never answers.
        let err = distributed_k_clustering_with(&mut f, 0, 5, &no_removed);
        assert!(matches!(
            err,
            Err(ClusterError::PeerUnreachable { .. }) | Ok(_)
        ));
        if let Err(ClusterError::PeerUnreachable { peer }) = err {
            assert_eq!(peer, 1);
        }
    }
}
