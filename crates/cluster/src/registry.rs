//! Cluster membership bookkeeping across a sequence of host requests.
//!
//! The system model (paper §III, Fig. 3) makes the cluster — and later its
//! cloaked region — shared state: once a user is a member of any cluster,
//! every future service request by that user reuses the same cluster/region
//! with zero cloaking cost (workflow arrow ®), and the *reciprocity*
//! property requires all members to map to the same set. The registry is
//! that shared state.

use crate::Cluster;
use nela_geo::{Rect, UserId};

/// Identifier of a registered cluster.
pub type ClusterId = u32;

/// A cluster as stored in the registry, optionally with its cloaked region
/// (filled in once phase 2 has run for the cluster).
#[derive(Debug, Clone)]
pub struct RegisteredCluster {
    pub cluster: Cluster,
    pub region: Option<Rect>,
}

/// Tracks which users belong to which cluster over a request workload.
#[derive(Debug, Clone)]
pub struct ClusterRegistry {
    assignment: Vec<Option<ClusterId>>,
    clusters: Vec<RegisteredCluster>,
}

impl ClusterRegistry {
    /// An empty registry over a population of `n` users.
    pub fn new(n: usize) -> Self {
        ClusterRegistry {
            assignment: vec![None; n],
            clusters: Vec::new(),
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.assignment.len()
    }

    /// Number of registered clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of users currently assigned to some cluster.
    pub fn clustered_users(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// True when `u` already belongs to a cluster.
    pub fn is_clustered(&self, u: UserId) -> bool {
        self.assignment[u as usize].is_some()
    }

    /// The cluster id of `u`, if assigned.
    pub fn cluster_id_of(&self, u: UserId) -> Option<ClusterId> {
        self.assignment[u as usize]
    }

    /// The registered cluster of `u`, if assigned.
    pub fn cluster_of(&self, u: UserId) -> Option<&RegisteredCluster> {
        self.assignment[u as usize].map(|id| &self.clusters[id as usize])
    }

    /// Look up a registered cluster by id.
    pub fn get(&self, id: ClusterId) -> &RegisteredCluster {
        &self.clusters[id as usize]
    }

    /// Registers a cluster, assigning every member to it.
    ///
    /// # Panics
    /// Panics if any member is already assigned — clusters must be disjoint
    /// (a user joins exactly one cluster; reciprocity breaks otherwise).
    pub fn register(&mut self, cluster: Cluster) -> ClusterId {
        let id = self.clusters.len() as ClusterId;
        for &m in &cluster.members {
            assert!(
                self.assignment[m as usize].is_none(),
                "user {m} is already in cluster {:?}",
                self.assignment[m as usize]
            );
            self.assignment[m as usize] = Some(id);
        }
        self.clusters.push(RegisteredCluster {
            cluster,
            region: None,
        });
        id
    }

    /// Stores the cloaked region computed for cluster `id` by phase 2.
    pub fn set_region(&mut self, id: ClusterId, region: Rect) {
        self.clusters[id as usize].region = Some(region);
    }

    /// Predicate suitable for the clustering algorithms' `removed` argument:
    /// a user is removed from the remaining WPG iff already clustered.
    pub fn removed_predicate(&self) -> impl Fn(UserId) -> bool + '_ {
        move |u| self.is_clustered(u)
    }

    /// Verifies the reciprocity property: every member of every cluster maps
    /// back to that same cluster. Returns the first violating user, if any.
    pub fn reciprocity_violation(&self) -> Option<UserId> {
        for (id, rc) in self.clusters.iter().enumerate() {
            for &m in &rc.cluster.members {
                if self.assignment[m as usize] != Some(id as ClusterId) {
                    return Some(m);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: &[UserId]) -> Cluster {
        Cluster {
            members: members.to_vec(),
            connectivity: 1,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ClusterRegistry::new(10);
        let id = reg.register(cluster(&[1, 2, 3]));
        assert!(reg.is_clustered(2));
        assert!(!reg.is_clustered(4));
        assert_eq!(reg.cluster_id_of(3), Some(id));
        assert_eq!(reg.cluster_of(1).unwrap().cluster.members, vec![1, 2, 3]);
        assert_eq!(reg.clustered_users(), 3);
        assert_eq!(reg.cluster_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already in cluster")]
    fn double_registration_panics() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[0, 1]));
        reg.register(cluster(&[1, 2]));
    }

    #[test]
    fn region_storage() {
        let mut reg = ClusterRegistry::new(5);
        let id = reg.register(cluster(&[0, 1]));
        assert!(reg.get(id).region.is_none());
        reg.set_region(id, Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(reg.cluster_of(1).unwrap().region.unwrap().area(), 0.25);
    }

    #[test]
    fn removed_predicate_reflects_assignment() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[3, 4]));
        let removed = reg.removed_predicate();
        assert!(removed(3));
        assert!(!removed(0));
    }

    #[test]
    fn reciprocity_holds_for_registered_clusters() {
        let mut reg = ClusterRegistry::new(8);
        reg.register(cluster(&[0, 1, 2]));
        reg.register(cluster(&[5, 6]));
        assert_eq!(reg.reciprocity_violation(), None);
    }
}
