//! Cluster membership bookkeeping across a sequence of host requests.
//!
//! The system model (paper §III, Fig. 3) makes the cluster — and later its
//! cloaked region — shared state: once a user is a member of any cluster,
//! every future service request by that user reuses the same cluster/region
//! with zero cloaking cost (workflow arrow ®), and the *reciprocity*
//! property requires all members to map to the same set. The registry is
//! that shared state.
//!
//! Under mobility a registered cluster does not stay valid forever: a member
//! can drift out of radio range of its peers, breaking the proximity
//! constraints the cluster was built from. [`ClusterRegistry::invalidate`]
//! retires such a cluster — its members become unassigned (their next
//! request pays full cloaking cost again) while the retired entry stays in
//! place as a tombstone so previously issued [`ClusterId`]s never dangle.

use crate::Cluster;
use nela_geo::{Rect, UserId};

/// Identifier of a registered cluster.
pub type ClusterId = u32;

/// A cluster as stored in the registry, optionally with its cloaked region
/// (filled in once phase 2 has run for the cluster).
#[derive(Debug, Clone)]
pub struct RegisteredCluster {
    pub cluster: Cluster,
    pub region: Option<Rect>,
    /// True once the cluster has been invalidated (a tombstone: kept for id
    /// stability, never served again).
    pub retired: bool,
}

/// Tracks which users belong to which cluster over a request workload.
#[derive(Debug, Clone)]
pub struct ClusterRegistry {
    assignment: Vec<Option<ClusterId>>,
    clusters: Vec<RegisteredCluster>,
    /// Lifetime count of invalidated clusters (tombstones).
    retired_count: usize,
}

impl ClusterRegistry {
    /// An empty registry over a population of `n` users.
    pub fn new(n: usize) -> Self {
        ClusterRegistry {
            assignment: vec![None; n],
            clusters: Vec::new(),
            retired_count: 0,
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.assignment.len()
    }

    /// Number of registered clusters, including retired tombstones.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clusters still live (not retired).
    pub fn active_cluster_count(&self) -> usize {
        self.clusters.len() - self.retired_count
    }

    /// Lifetime number of invalidated clusters.
    pub fn retired_count(&self) -> usize {
        self.retired_count
    }

    /// Number of users currently assigned to some cluster.
    pub fn clustered_users(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// True when `u` already belongs to a cluster.
    pub fn is_clustered(&self, u: UserId) -> bool {
        self.assignment[u as usize].is_some()
    }

    /// The cluster id of `u`, if assigned.
    pub fn cluster_id_of(&self, u: UserId) -> Option<ClusterId> {
        self.assignment[u as usize]
    }

    /// The registered cluster of `u`, if assigned.
    pub fn cluster_of(&self, u: UserId) -> Option<&RegisteredCluster> {
        self.assignment[u as usize].map(|id| &self.clusters[id as usize])
    }

    /// Look up a registered cluster by id.
    pub fn get(&self, id: ClusterId) -> &RegisteredCluster {
        &self.clusters[id as usize]
    }

    /// Registers a cluster, assigning every member to it.
    ///
    /// # Panics
    /// Panics if any member is already assigned — clusters must be disjoint
    /// (a user joins exactly one cluster; reciprocity breaks otherwise).
    pub fn register(&mut self, cluster: Cluster) -> ClusterId {
        let id = self.clusters.len() as ClusterId;
        for &m in &cluster.members {
            assert!(
                self.assignment[m as usize].is_none(),
                "user {m} is already in cluster {:?}",
                self.assignment[m as usize]
            );
            self.assignment[m as usize] = Some(id);
        }
        self.clusters.push(RegisteredCluster {
            cluster,
            region: None,
            retired: false,
        });
        id
    }

    /// Stores the cloaked region computed for cluster `id` by phase 2.
    pub fn set_region(&mut self, id: ClusterId, region: Rect) {
        self.clusters[id as usize].region = Some(region);
    }

    /// Retires cluster `id`: every member becomes unassigned and the entry
    /// turns into a tombstone. Returns the number of users released.
    /// Idempotent — retiring a tombstone releases nobody.
    pub fn invalidate(&mut self, id: ClusterId) -> usize {
        let rc = &mut self.clusters[id as usize];
        if rc.retired {
            return 0;
        }
        rc.retired = true;
        self.retired_count += 1;
        let members = rc.cluster.members.clone();
        let mut released = 0;
        for m in members {
            // A member may already sit in a *newer* cluster (it re-requested
            // after an earlier invalidation); only release it if it still
            // points at the cluster being retired.
            if self.assignment[m as usize] == Some(id) {
                self.assignment[m as usize] = None;
                released += 1;
            }
        }
        released
    }

    /// Retires the cluster `u` currently belongs to, if any. Returns the
    /// number of users released.
    pub fn invalidate_containing(&mut self, u: UserId) -> usize {
        match self.assignment[u as usize] {
            Some(id) => self.invalidate(id),
            None => 0,
        }
    }

    /// Iterates over live (non-retired) clusters.
    pub fn active_clusters(&self) -> impl Iterator<Item = (ClusterId, &RegisteredCluster)> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, rc)| !rc.retired)
            .map(|(id, rc)| (id as ClusterId, rc))
    }

    /// Predicate suitable for the clustering algorithms' `removed` argument:
    /// a user is removed from the remaining WPG iff already clustered.
    pub fn removed_predicate(&self) -> impl Fn(UserId) -> bool + '_ {
        move |u| self.is_clustered(u)
    }

    /// Verifies the reciprocity property: every member of every *live*
    /// cluster maps back to that same cluster (tombstones are exempt — their
    /// members were released). Returns the first violating user, if any.
    pub fn reciprocity_violation(&self) -> Option<UserId> {
        for (id, rc) in self.clusters.iter().enumerate() {
            if rc.retired {
                continue;
            }
            for &m in &rc.cluster.members {
                if self.assignment[m as usize] != Some(id as ClusterId) {
                    return Some(m);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: &[UserId]) -> Cluster {
        Cluster {
            members: members.to_vec(),
            connectivity: 1,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ClusterRegistry::new(10);
        let id = reg.register(cluster(&[1, 2, 3]));
        assert!(reg.is_clustered(2));
        assert!(!reg.is_clustered(4));
        assert_eq!(reg.cluster_id_of(3), Some(id));
        assert_eq!(reg.cluster_of(1).unwrap().cluster.members, vec![1, 2, 3]);
        assert_eq!(reg.clustered_users(), 3);
        assert_eq!(reg.cluster_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already in cluster")]
    fn double_registration_panics() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[0, 1]));
        reg.register(cluster(&[1, 2]));
    }

    #[test]
    fn region_storage() {
        let mut reg = ClusterRegistry::new(5);
        let id = reg.register(cluster(&[0, 1]));
        assert!(reg.get(id).region.is_none());
        reg.set_region(id, Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(reg.cluster_of(1).unwrap().region.unwrap().area(), 0.25);
    }

    #[test]
    fn removed_predicate_reflects_assignment() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[3, 4]));
        let removed = reg.removed_predicate();
        assert!(removed(3));
        assert!(!removed(0));
    }

    #[test]
    fn reciprocity_holds_for_registered_clusters() {
        let mut reg = ClusterRegistry::new(8);
        reg.register(cluster(&[0, 1, 2]));
        reg.register(cluster(&[5, 6]));
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_releases_members_and_tombstones() {
        let mut reg = ClusterRegistry::new(8);
        let a = reg.register(cluster(&[0, 1, 2]));
        let b = reg.register(cluster(&[5, 6]));
        assert_eq!(reg.invalidate(a), 3);
        assert!(!reg.is_clustered(1));
        assert!(reg.is_clustered(5));
        assert!(reg.get(a).retired);
        assert_eq!(reg.cluster_count(), 2);
        assert_eq!(reg.active_cluster_count(), 1);
        assert_eq!(reg.retired_count(), 1);
        let active: Vec<ClusterId> = reg.active_clusters().map(|(id, _)| id).collect();
        assert_eq!(active, vec![b]);
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut reg = ClusterRegistry::new(4);
        let id = reg.register(cluster(&[0, 1]));
        assert_eq!(reg.invalidate(id), 2);
        assert_eq!(reg.invalidate(id), 0);
        assert_eq!(reg.retired_count(), 1);
    }

    #[test]
    fn released_users_can_rejoin_new_clusters() {
        let mut reg = ClusterRegistry::new(6);
        let a = reg.register(cluster(&[0, 1, 2]));
        reg.invalidate(a);
        let b = reg.register(cluster(&[1, 3]));
        assert_eq!(reg.cluster_id_of(1), Some(b));
        // Retiring the old tombstone's id again must not steal 1 from b.
        assert_eq!(reg.invalidate(a), 0);
        assert_eq!(reg.cluster_id_of(1), Some(b));
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_containing_finds_the_cluster() {
        let mut reg = ClusterRegistry::new(6);
        reg.register(cluster(&[2, 3]));
        assert_eq!(reg.invalidate_containing(3), 2);
        assert_eq!(reg.invalidate_containing(3), 0);
        assert_eq!(reg.invalidate_containing(5), 0);
    }
}
