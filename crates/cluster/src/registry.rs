//! Cluster membership bookkeeping across a sequence of host requests.
//!
//! The system model (paper §III, Fig. 3) makes the cluster — and later its
//! cloaked region — shared state: once a user is a member of any cluster,
//! every future service request by that user reuses the same cluster/region
//! with zero cloaking cost (workflow arrow ®), and the *reciprocity*
//! property requires all members to map to the same set. The registry is
//! that shared state.
//!
//! Under mobility a registered cluster does not stay valid forever: a member
//! can drift out of radio range of its peers, breaking the proximity
//! constraints the cluster was built from. [`ClusterRegistry::invalidate`]
//! retires such a cluster — its members become unassigned (their next
//! request pays full cloaking cost again) while the retired entry stays in
//! place as a tombstone so previously issued [`ClusterId`]s never dangle.
//!
//! For concurrent batch serving, [`ShardedRegistry`] overlays a frozen
//! registry with a region-sharded write path and a lock-free membership
//! table, then folds back into a plain [`ClusterRegistry`] when the batch
//! ends.

use crate::Cluster;
use nela_geo::{Point, Rect, UserId};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// Identifier of a registered cluster.
pub type ClusterId = u32;

/// A cluster as stored in the registry, optionally with its cloaked region
/// (filled in once phase 2 has run for the cluster).
#[derive(Debug, Clone)]
pub struct RegisteredCluster {
    pub cluster: Cluster,
    pub region: Option<Rect>,
    /// True once the cluster has been invalidated (a tombstone: kept for id
    /// stability, never served again).
    pub retired: bool,
}

/// Tracks which users belong to which cluster over a request workload.
#[derive(Debug, Clone)]
pub struct ClusterRegistry {
    assignment: Vec<Option<ClusterId>>,
    clusters: Vec<RegisteredCluster>,
    /// Lifetime count of invalidated clusters (tombstones).
    retired_count: usize,
}

impl ClusterRegistry {
    /// An empty registry over a population of `n` users.
    pub fn new(n: usize) -> Self {
        ClusterRegistry {
            assignment: vec![None; n],
            clusters: Vec::new(),
            retired_count: 0,
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.assignment.len()
    }

    /// Number of registered clusters, including retired tombstones.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clusters still live (not retired).
    pub fn active_cluster_count(&self) -> usize {
        self.clusters.len() - self.retired_count
    }

    /// Lifetime number of invalidated clusters.
    pub fn retired_count(&self) -> usize {
        self.retired_count
    }

    /// Number of users currently assigned to some cluster.
    pub fn clustered_users(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// True when `u` already belongs to a cluster.
    pub fn is_clustered(&self, u: UserId) -> bool {
        self.assignment[u as usize].is_some()
    }

    /// The cluster id of `u`, if assigned.
    pub fn cluster_id_of(&self, u: UserId) -> Option<ClusterId> {
        self.assignment[u as usize]
    }

    /// The registered cluster of `u`, if assigned.
    pub fn cluster_of(&self, u: UserId) -> Option<&RegisteredCluster> {
        self.assignment[u as usize].map(|id| &self.clusters[id as usize])
    }

    /// Look up a registered cluster by id.
    pub fn get(&self, id: ClusterId) -> &RegisteredCluster {
        &self.clusters[id as usize]
    }

    /// Registers a cluster, assigning every member to it.
    ///
    /// # Panics
    /// Panics if any member is already assigned — clusters must be disjoint
    /// (a user joins exactly one cluster; reciprocity breaks otherwise).
    pub fn register(&mut self, cluster: Cluster) -> ClusterId {
        let id = self.clusters.len() as ClusterId;
        for &m in &cluster.members {
            assert!(
                self.assignment[m as usize].is_none(),
                "user {m} is already in cluster {:?}",
                self.assignment[m as usize]
            );
            self.assignment[m as usize] = Some(id);
        }
        self.clusters.push(RegisteredCluster {
            cluster,
            region: None,
            retired: false,
        });
        id
    }

    /// Stores the cloaked region computed for cluster `id` by phase 2.
    pub fn set_region(&mut self, id: ClusterId, region: Rect) {
        self.clusters[id as usize].region = Some(region);
    }

    /// Retires cluster `id`: every member becomes unassigned and the entry
    /// turns into a tombstone. Returns the number of users released.
    /// Idempotent — retiring a tombstone releases nobody.
    pub fn invalidate(&mut self, id: ClusterId) -> usize {
        let rc = &mut self.clusters[id as usize];
        if rc.retired {
            return 0;
        }
        rc.retired = true;
        self.retired_count += 1;
        let members = rc.cluster.members.clone();
        let mut released = 0;
        for m in members {
            // A member may already sit in a *newer* cluster (it re-requested
            // after an earlier invalidation); only release it if it still
            // points at the cluster being retired.
            if self.assignment[m as usize] == Some(id) {
                self.assignment[m as usize] = None;
                released += 1;
            }
        }
        released
    }

    /// Retires the cluster `u` currently belongs to, if any. Returns the
    /// number of users released.
    pub fn invalidate_containing(&mut self, u: UserId) -> usize {
        match self.assignment[u as usize] {
            Some(id) => self.invalidate(id),
            None => 0,
        }
    }

    /// Iterates over live (non-retired) clusters.
    pub fn active_clusters(&self) -> impl Iterator<Item = (ClusterId, &RegisteredCluster)> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, rc)| !rc.retired)
            .map(|(id, rc)| (id as ClusterId, rc))
    }

    /// Predicate suitable for the clustering algorithms' `removed` argument:
    /// a user is removed from the remaining WPG iff already clustered.
    pub fn removed_predicate(&self) -> impl Fn(UserId) -> bool + '_ {
        move |u| self.is_clustered(u)
    }

    /// Verifies the reciprocity property: every member of every *live*
    /// cluster maps back to that same cluster (tombstones are exempt — their
    /// members were released). Returns the first violating user, if any.
    pub fn reciprocity_violation(&self) -> Option<UserId> {
        for (id, rc) in self.clusters.iter().enumerate() {
            if rc.retired {
                continue;
            }
            for &m in &rc.cluster.members {
                if self.assignment[m as usize] != Some(id as ClusterId) {
                    return Some(m);
                }
            }
        }
        None
    }
}

/// Sentinel for "no cluster" in [`ShardedRegistry`]'s atomic assignment
/// table.
const UNASSIGNED: u32 = u32::MAX;

/// Outcome of [`ShardedRegistry::try_claim`].
#[derive(Debug)]
pub enum ClaimOutcome {
    /// Every produced cluster was registered atomically; the host's cluster
    /// id and members are returned for phase 2.
    Claimed { id: ClusterId, members: Vec<UserId> },
    /// A rival claimed the host or one of the produced members between the
    /// caller's computation and this claim; nothing was registered — look
    /// the host up again (it may now be served by reuse) or recompute.
    Conflict,
    /// No produced cluster contains the host; nothing was registered. Only
    /// possible when the clustering algorithm returns an inconsistent
    /// cluster set (lying or fallible transports).
    HostMissing,
}

/// A region-sharded concurrent view of a [`ClusterRegistry`] for batch
/// serving.
///
/// The single-`Mutex` batch path serializes every request on one lock and
/// copies an O(n) membership snapshot per attempt. This type removes both
/// walls:
///
/// - **Membership reads are lock-free.** A flat `AtomicU32` table holds
///   every user's current cluster id; the clustering algorithms' `removed`
///   predicate is a single atomic load per probed user.
/// - **Writes lock only the affected shards.** The unit square is cut into
///   `axis × axis` regions; each shard owns the clusters whose *home cell*
///   (the position of the cluster's lowest member id) falls in its region.
///   A claim locks the home shards of every member of every produced
///   cluster — neighbor shards included when a cluster straddles a region
///   boundary — **in ascending shard order**, so overlapping claims always
///   acquire their common shards in the same order and cannot deadlock.
///   Requests in disjoint regions share no lock at all.
///
/// The sharded state is a batch-scoped overlay: the pre-batch registry is
/// frozen (reads need no lock), new clusters accumulate per shard, and
/// [`ShardedRegistry::into_registry`] folds everything back into a plain
/// [`ClusterRegistry`] — cluster ids issued during the batch are private to
/// it, which is sound because served results never expose cluster ids.
pub struct ShardedRegistry {
    base: ClusterRegistry,
    base_count: u32,
    axis: usize,
    /// Home shard of every user, from its position in the shard grid.
    shard_of_user: Vec<u32>,
    /// Current cluster id per user ([`UNASSIGNED`] when free). Writers hold
    /// the user's home-shard lock; lock-free readers see a claim only once
    /// it is certain (stores happen after validation, under the locks).
    assignment: Vec<AtomicU32>,
    shards: Vec<Mutex<Shard>>,
    /// Per-shard contention counters, attributed to the host's home shard.
    telemetry: Vec<ShardCounters>,
}

/// Always-on relaxed counters per shard; reads may be slightly torn while
/// claims are in flight, which is fine for telemetry.
#[derive(Debug, Default)]
struct ShardCounters {
    claims: AtomicU64,
    conflicts: AtomicU64,
    lock_wait_ns: AtomicU64,
}

/// Frozen per-shard contention telemetry (see
/// [`ShardedRegistry::shard_telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTelemetry {
    /// `try_claim` calls whose host is homed in this shard.
    pub claims: u64,
    /// Those claims rejected because a rival won a member first.
    pub conflicts: u64,
    /// Total nanoseconds those claims spent acquiring shard locks. Only
    /// measured while the `nela-obs` global recorder is enabled (timing
    /// every lock costs two clock reads per claim); 0 otherwise.
    pub lock_wait_ns: u64,
}

#[derive(Default)]
struct Shard {
    /// Clusters registered during this batch and homed here, each with its
    /// write-once published region.
    clusters: Vec<(Cluster, Option<Rect>)>,
    /// Write-once region publications for *base* clusters homed here that
    /// had no region when the batch started.
    base_regions: Vec<(ClusterId, Rect)>,
}

impl ShardedRegistry {
    /// Wraps `base` for a concurrent batch over users at `points`,
    /// sharding the unit square `shards_per_axis × shards_per_axis` ways.
    ///
    /// # Panics
    /// Panics if `points` does not match the registry population.
    pub fn new(base: ClusterRegistry, points: &[Point], shards_per_axis: usize) -> Self {
        assert_eq!(
            base.population(),
            points.len(),
            "points do not match registry population"
        );
        let axis = shards_per_axis.clamp(1, 1 << 10);
        let shard_of_user = points
            .iter()
            .map(|p| {
                let sx = ((p.x * axis as f64) as usize).min(axis - 1);
                let sy = ((p.y * axis as f64) as usize).min(axis - 1);
                (sy * axis + sx) as u32
            })
            .collect();
        let assignment = base
            .assignment
            .iter()
            .map(|a| AtomicU32::new(a.unwrap_or(UNASSIGNED)))
            .collect();
        let base_count = base.cluster_count() as u32;
        let mut shards = Vec::with_capacity(axis * axis);
        shards.resize_with(axis * axis, || Mutex::new(Shard::default()));
        let mut telemetry = Vec::with_capacity(axis * axis);
        telemetry.resize_with(axis * axis, ShardCounters::default);
        ShardedRegistry {
            base,
            base_count,
            axis,
            shard_of_user,
            assignment,
            shards,
            telemetry,
        }
    }

    /// Per-shard contention counters accumulated so far in this batch,
    /// indexed by shard id (`sy * axis + sx`).
    pub fn shard_telemetry(&self) -> Vec<ShardTelemetry> {
        self.telemetry
            .iter()
            .map(|t| ShardTelemetry {
                claims: t.claims.load(Ordering::Relaxed),
                conflicts: t.conflicts.load(Ordering::Relaxed),
                lock_wait_ns: t.lock_wait_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Number of shards (`shards_per_axis²`).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard-grid resolution per axis.
    pub fn shards_per_axis(&self) -> usize {
        self.axis
    }

    /// Lock-free: true when `u` currently belongs to a cluster. The
    /// predicate the clustering algorithms probe — replaces the per-attempt
    /// O(n) snapshot copy of the single-lock path.
    #[inline]
    pub fn is_clustered(&self, u: UserId) -> bool {
        self.assignment[u as usize].load(Ordering::Acquire) != UNASSIGNED
    }

    /// The cluster of `u` — id, members, and published region — if `u` is
    /// assigned. Locks at most the cluster's home shard.
    ///
    /// Allocates a fresh members Vec per call; steady-state request paths
    /// use [`ShardedRegistry::lookup_into`] with a reused buffer instead.
    pub fn lookup(&self, u: UserId) -> Option<(ClusterId, Vec<UserId>, Option<Rect>)> {
        let mut members = Vec::new();
        self.lookup_into(u, &mut members)
            .map(|(id, region)| (id, members, region))
    }

    /// Allocation-free variant of [`ShardedRegistry::lookup`]: fills
    /// `members_out` (cleared first) with the cluster's members instead of
    /// returning a fresh Vec, so a serving worker's scratch buffer absorbs
    /// the copy. Once the buffer's capacity reaches the largest cluster
    /// size it never reallocates — this is what makes the engine's
    /// region-reuse fast path zero-allocation per request.
    pub fn lookup_into(
        &self,
        u: UserId,
        members_out: &mut Vec<UserId>,
    ) -> Option<(ClusterId, Option<Rect>)> {
        let id = self.assignment[u as usize].load(Ordering::Acquire);
        if id == UNASSIGNED {
            return None;
        }
        Some(self.view_into(id, members_out))
    }

    fn view_into(&self, id: ClusterId, members_out: &mut Vec<UserId>) -> (ClusterId, Option<Rect>) {
        members_out.clear();
        if id < self.base_count {
            let rc = self.base.get(id);
            members_out.extend_from_slice(&rc.cluster.members);
            let region = rc.region.or_else(|| {
                let home = self.home_shard_of_members(members_out);
                self.shards[home]
                    .lock()
                    .base_regions
                    .iter()
                    .find(|(i, _)| *i == id)
                    .map(|&(_, r)| r)
            });
            (id, region)
        } else {
            let (shard, local) = self.decode(id);
            let guard = self.shards[shard].lock();
            let (c, region) = &guard.clusters[local];
            members_out.extend_from_slice(&c.members);
            (id, *region)
        }
    }

    /// Atomically validates that the host and every member of every
    /// produced cluster are still unclaimed, then registers all produced
    /// clusters. Locks the home shards of all members in ascending order
    /// (see the type docs for the deadlock argument).
    pub fn try_claim(&self, host: UserId, produced: Vec<Cluster>) -> ClaimOutcome {
        if !produced.iter().any(|c| c.contains(host)) {
            return ClaimOutcome::HostMissing;
        }
        let touched: BTreeSet<usize> = produced
            .iter()
            .flat_map(|c| &c.members)
            .map(|&m| self.shard_of_user[m as usize] as usize)
            .collect();
        let order: Vec<usize> = touched.into_iter().collect();
        let host_shard = self.shard_of_user[host as usize] as usize;
        self.telemetry[host_shard]
            .claims
            .fetch_add(1, Ordering::Relaxed);
        let mut guards: Vec<_> = if nela_obs::enabled() {
            let started = Instant::now();
            let guards: Vec<_> = order.iter().map(|&s| self.shards[s].lock()).collect();
            let waited = nela_obs::saturating_ns(started.elapsed());
            nela_obs::observe(nela_obs::stage::REGISTRY_LOCK_WAIT, waited);
            self.telemetry[host_shard]
                .lock_wait_ns
                .fetch_add(waited, Ordering::Relaxed);
            guards
        } else {
            order.iter().map(|&s| self.shards[s].lock()).collect()
        };
        // Under the locks every touched slot is stable: a writer must hold
        // the member's home-shard lock, and we hold all of them.
        let claimed = |m: UserId| self.assignment[m as usize].load(Ordering::Acquire) != UNASSIGNED;
        if claimed(host)
            || produced
                .iter()
                .flat_map(|c| &c.members)
                .any(|&m| claimed(m))
        {
            self.telemetry[host_shard]
                .conflicts
                .fetch_add(1, Ordering::Relaxed);
            nela_obs::add(nela_obs::counter::CLAIM_CONFLICTS, 1);
            return ClaimOutcome::Conflict;
        }
        let mut host_claim = None;
        for c in produced {
            let home = self.home_shard_of_members(&c.members);
            let slot = order.binary_search(&home).expect("home shard is locked");
            let guard = &mut guards[slot];
            let id = self.encode(home, guard.clusters.len());
            for &m in &c.members {
                self.assignment[m as usize].store(id, Ordering::Release);
            }
            if c.contains(host) {
                host_claim = Some((id, c.members.clone()));
            }
            guard.clusters.push((c, None));
        }
        let (id, members) = host_claim.expect("coverage checked above");
        ClaimOutcome::Claimed { id, members }
    }

    /// Publishes the phase-2 region of cluster `id`, first writer wins —
    /// bounding is deterministic per cluster, so rivals compute the
    /// identical rectangle. Locks only the cluster's home shard.
    pub fn set_region(&self, id: ClusterId, region: Rect) {
        if id < self.base_count {
            let rc = self.base.get(id);
            if rc.region.is_some() {
                return;
            }
            let home = self.home_shard_of_members(&rc.cluster.members);
            let mut guard = self.shards[home].lock();
            if !guard.base_regions.iter().any(|(i, _)| *i == id) {
                guard.base_regions.push((id, region));
            }
        } else {
            let (shard, local) = self.decode(id);
            let mut guard = self.shards[shard].lock();
            let slot = &mut guard.clusters[local].1;
            if slot.is_none() {
                *slot = Some(region);
            }
        }
    }

    /// Folds the batch back into a plain registry: base-cluster region
    /// publications are applied, then every new cluster is registered
    /// (shards in ascending order, registration order within each). The
    /// batch-scoped cluster ids die here; the returned registry satisfies
    /// reciprocity by construction.
    pub fn into_registry(self) -> ClusterRegistry {
        let mut reg = self.base;
        for shard in self.shards {
            let shard = shard.into_inner();
            for (id, region) in shard.base_regions {
                if reg.get(id).region.is_none() {
                    reg.set_region(id, region);
                }
            }
            for (cluster, region) in shard.clusters {
                let id = reg.register(cluster);
                if let Some(r) = region {
                    reg.set_region(id, r);
                }
            }
        }
        reg
    }

    /// A cluster's home shard: the shard of its lowest member id's position
    /// (members are sorted). Deterministic, so every claimer computes the
    /// same home for the same cluster.
    fn home_shard_of_members(&self, members: &[UserId]) -> usize {
        self.shard_of_user[members[0] as usize] as usize
    }

    /// Batch-scoped id of the `local`-th cluster homed in `shard`; decodable
    /// and collision-free across shards.
    fn encode(&self, shard: usize, local: usize) -> ClusterId {
        self.base_count + (local * self.shards.len() + shard) as u32
    }

    fn decode(&self, id: ClusterId) -> (usize, usize) {
        let r = (id - self.base_count) as usize;
        (r % self.shards.len(), r / self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: &[UserId]) -> Cluster {
        Cluster {
            members: members.to_vec(),
            connectivity: 1,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ClusterRegistry::new(10);
        let id = reg.register(cluster(&[1, 2, 3]));
        assert!(reg.is_clustered(2));
        assert!(!reg.is_clustered(4));
        assert_eq!(reg.cluster_id_of(3), Some(id));
        assert_eq!(reg.cluster_of(1).unwrap().cluster.members, vec![1, 2, 3]);
        assert_eq!(reg.clustered_users(), 3);
        assert_eq!(reg.cluster_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already in cluster")]
    fn double_registration_panics() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[0, 1]));
        reg.register(cluster(&[1, 2]));
    }

    #[test]
    fn region_storage() {
        let mut reg = ClusterRegistry::new(5);
        let id = reg.register(cluster(&[0, 1]));
        assert!(reg.get(id).region.is_none());
        reg.set_region(id, Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(reg.cluster_of(1).unwrap().region.unwrap().area(), 0.25);
    }

    #[test]
    fn removed_predicate_reflects_assignment() {
        let mut reg = ClusterRegistry::new(5);
        reg.register(cluster(&[3, 4]));
        let removed = reg.removed_predicate();
        assert!(removed(3));
        assert!(!removed(0));
    }

    #[test]
    fn reciprocity_holds_for_registered_clusters() {
        let mut reg = ClusterRegistry::new(8);
        reg.register(cluster(&[0, 1, 2]));
        reg.register(cluster(&[5, 6]));
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_releases_members_and_tombstones() {
        let mut reg = ClusterRegistry::new(8);
        let a = reg.register(cluster(&[0, 1, 2]));
        let b = reg.register(cluster(&[5, 6]));
        assert_eq!(reg.invalidate(a), 3);
        assert!(!reg.is_clustered(1));
        assert!(reg.is_clustered(5));
        assert!(reg.get(a).retired);
        assert_eq!(reg.cluster_count(), 2);
        assert_eq!(reg.active_cluster_count(), 1);
        assert_eq!(reg.retired_count(), 1);
        let active: Vec<ClusterId> = reg.active_clusters().map(|(id, _)| id).collect();
        assert_eq!(active, vec![b]);
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut reg = ClusterRegistry::new(4);
        let id = reg.register(cluster(&[0, 1]));
        assert_eq!(reg.invalidate(id), 2);
        assert_eq!(reg.invalidate(id), 0);
        assert_eq!(reg.retired_count(), 1);
    }

    #[test]
    fn released_users_can_rejoin_new_clusters() {
        let mut reg = ClusterRegistry::new(6);
        let a = reg.register(cluster(&[0, 1, 2]));
        reg.invalidate(a);
        let b = reg.register(cluster(&[1, 3]));
        assert_eq!(reg.cluster_id_of(1), Some(b));
        // Retiring the old tombstone's id again must not steal 1 from b.
        assert_eq!(reg.invalidate(a), 0);
        assert_eq!(reg.cluster_id_of(1), Some(b));
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn invalidate_containing_finds_the_cluster() {
        let mut reg = ClusterRegistry::new(6);
        reg.register(cluster(&[2, 3]));
        assert_eq!(reg.invalidate_containing(3), 2);
        assert_eq!(reg.invalidate_containing(3), 0);
        assert_eq!(reg.invalidate_containing(5), 0);
    }

    /// Users 0..4 in the lower-left region, 4..8 in the upper-right — two
    /// distinct shards at any axis ≥ 2.
    fn two_region_points() -> Vec<Point> {
        (0..8)
            .map(|i| {
                if i < 4 {
                    Point::new(0.1 + i as f64 * 0.01, 0.1)
                } else {
                    Point::new(0.9, 0.9 - (i - 4) as f64 * 0.01)
                }
            })
            .collect()
    }

    #[test]
    fn sharded_claim_and_lookup() {
        let pts = two_region_points();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(8), &pts, 2);
        assert_eq!(sharded.n_shards(), 4);
        assert!(!sharded.is_clustered(1));
        match sharded.try_claim(1, vec![cluster(&[0, 1, 2])]) {
            ClaimOutcome::Claimed { id, members } => {
                assert_eq!(members, vec![0, 1, 2]);
                assert!(sharded.is_clustered(0));
                assert!(!sharded.is_clustered(3));
                let (lid, lmembers, region) = sharded.lookup(2).unwrap();
                assert_eq!((lid, lmembers), (id, vec![0, 1, 2]));
                assert!(region.is_none());
                sharded.set_region(id, Rect::new(0.0, 0.0, 0.3, 0.3));
                // First writer wins: a rival's identical publish is a no-op.
                sharded.set_region(id, Rect::new(0.0, 0.0, 0.9, 0.9));
                assert_eq!(sharded.lookup(0).unwrap().2.unwrap().area(), 0.09);
            }
            other => panic!("claim failed: {other:?}"),
        }
        let reg = sharded.into_registry();
        assert_eq!(reg.clustered_users(), 3);
        assert_eq!(reg.reciprocity_violation(), None);
        assert_eq!(reg.cluster_of(1).unwrap().region.unwrap().area(), 0.09);
    }

    #[test]
    fn sharded_conflict_leaves_nothing_registered() {
        let pts = two_region_points();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(8), &pts, 2);
        assert!(matches!(
            sharded.try_claim(0, vec![cluster(&[0, 1])]),
            ClaimOutcome::Claimed { .. }
        ));
        // 1 is taken: the whole rival claim must be rejected atomically.
        assert!(matches!(
            sharded.try_claim(2, vec![cluster(&[1, 2]), cluster(&[3, 4])]),
            ClaimOutcome::Conflict
        ));
        assert!(!sharded.is_clustered(3));
        assert!(!sharded.is_clustered(4));
        let reg = sharded.into_registry();
        assert_eq!(reg.cluster_count(), 1);
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn sharded_cluster_straddling_a_boundary_claims_cleanly() {
        let pts = two_region_points();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(8), &pts, 2);
        // Members span both regions: the claim locks both home shards (in
        // ascending order) and still lands in one piece.
        match sharded.try_claim(5, vec![cluster(&[2, 3, 5, 6])]) {
            ClaimOutcome::Claimed { members, .. } => {
                assert_eq!(members, vec![2, 3, 5, 6]);
            }
            other => panic!("straddling claim failed: {other:?}"),
        }
        assert!(sharded.is_clustered(6));
        assert_eq!(sharded.into_registry().reciprocity_violation(), None);
    }

    #[test]
    fn sharded_host_missing_registers_nothing() {
        let pts = two_region_points();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(8), &pts, 2);
        assert!(matches!(
            sharded.try_claim(7, vec![cluster(&[0, 1])]),
            ClaimOutcome::HostMissing
        ));
        assert!(!sharded.is_clustered(0));
        assert_eq!(sharded.into_registry().cluster_count(), 0);
    }

    #[test]
    fn sharded_base_clusters_survive_with_regions() {
        let pts = two_region_points();
        let mut base = ClusterRegistry::new(8);
        let a = base.register(cluster(&[0, 1]));
        base.set_region(a, Rect::new(0.0, 0.0, 0.5, 0.5));
        let b = base.register(cluster(&[4, 5]));
        let sharded = ShardedRegistry::new(base, &pts, 4);
        // Pre-batch assignments are visible lock-free.
        assert!(sharded.is_clustered(0));
        assert_eq!(sharded.lookup(1).unwrap().2.unwrap().area(), 0.25);
        // A base cluster without a region gets a write-once publication.
        assert!(sharded.lookup(4).unwrap().2.is_none());
        sharded.set_region(b, Rect::new(0.8, 0.8, 1.0, 1.0));
        sharded.set_region(b, Rect::UNIT); // loses: first writer won
        let (_, _, region) = sharded.lookup(5).unwrap();
        assert!((region.unwrap().area() - 0.04).abs() < 1e-12);
        // A new cluster on top of the frozen base folds back consistently.
        assert!(matches!(
            sharded.try_claim(2, vec![cluster(&[2, 3])]),
            ClaimOutcome::Claimed { .. }
        ));
        let reg = sharded.into_registry();
        assert_eq!(reg.cluster_count(), 3);
        assert_eq!(reg.reciprocity_violation(), None);
        assert!((reg.get(b).region.unwrap().area() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn shard_telemetry_attributes_claims_and_conflicts() {
        let pts = two_region_points();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(8), &pts, 2);
        assert!(matches!(
            sharded.try_claim(0, vec![cluster(&[0, 1])]),
            ClaimOutcome::Claimed { .. }
        ));
        // Host 2 lives in the same (lower-left) shard; its claim conflicts
        // on member 1.
        assert!(matches!(
            sharded.try_claim(2, vec![cluster(&[1, 2])]),
            ClaimOutcome::Conflict
        ));
        // Host 7 is in the upper-right shard: an independent clean claim.
        assert!(matches!(
            sharded.try_claim(7, vec![cluster(&[6, 7])]),
            ClaimOutcome::Claimed { .. }
        ));
        let t = sharded.shard_telemetry();
        assert_eq!(t.len(), 4);
        let home_ll = 0; // shard of (0.1, 0.1) at axis 2
        let home_ur = 3; // shard of (0.9, 0.9) at axis 2
        assert_eq!(t[home_ll].claims, 2);
        assert_eq!(t[home_ll].conflicts, 1);
        assert_eq!(t[home_ur].claims, 1);
        assert_eq!(t[home_ur].conflicts, 0);
        assert_eq!(t.iter().map(|s| s.claims).sum::<u64>(), 3);
    }

    #[test]
    fn sharded_concurrent_claims_in_disjoint_regions() {
        // Claims racing from many threads must keep the registry sound:
        // every user in at most one cluster, reciprocity preserved.
        let n = 64usize;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 8) as f64 / 8.0 + 0.05, (i / 8) as f64 / 8.0 + 0.05))
            .collect();
        let sharded = ShardedRegistry::new(ClusterRegistry::new(n), &pts, 4);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let sharded = &sharded;
                scope.spawn(move || {
                    // Thread t claims clusters over overlapping id windows so
                    // some claims genuinely conflict.
                    for start in (0..56).step_by(4) {
                        let members: Vec<UserId> =
                            (start..start + 4 + (t % 2)).map(|i| i as UserId).collect();
                        let _ = sharded.try_claim(members[0], vec![cluster(&members)]);
                    }
                });
            }
        });
        let reg = sharded.into_registry();
        assert_eq!(reg.reciprocity_violation(), None);
        assert!(reg.cluster_count() > 0);
    }
}
