//! Centralized t-connectivity k-clustering (paper Algorithm 1).
//!
//! The algorithm partitions each connected component into *smallest valid
//! t-connectivity clusters*: clusters of ≥ k users whose internal maximum
//! edge weight (MEW) cannot be reduced without invalidating some cluster.
//!
//! # The two readings of Algorithm 1, and which one this module ships
//!
//! The paper's pseudocode removes edges *one at a time* in descending weight
//! order and stops a cluster's partition at the first disconnection whose
//! sides are not all valid. On graphs with many equal weights — exactly what
//! the evaluation's RSS-rank weights (1..M) produce — that binary rule
//! suffers classic single-linkage *chaining*: the first disconnection almost
//! always splits off a tiny straggler (< k), so the partition aborts and
//! clusters degenerate to near-whole components (thousands of users), which
//! contradicts the cluster sizes and cloaked-region areas the paper reports.
//!
//! The reading consistent with the paper's own evaluation treats weights as
//! *levels*: partitioning a cluster at level t removes **all** edges of
//! weight t, recurses into every resulting component that is still valid,
//! and re-attaches each undersized component to its graph-nearest surviving
//! cluster (the attachment edge has weight t, so the receiving cluster's
//! connectivity stays t — exactly the level that was being cut). Every
//! produced cluster is a t-connectivity class (plus stragglers glued at its
//! own connectivity level) that cannot be validly partitioned further.
//!
//! A final *packing* pass then serves the minimum-k-clustering objective
//! (clusters of size **at least** k with minimum connectivity, §IV): a
//! t-class whose sub-classes are all undersized cannot be split by levels,
//! but it can still be divided into several t-connected groups of ≥ k users
//! along a spanning tree of its ≤ t edges. Packing leaves each group's
//! connectivity at t while shrinking group sizes toward k — which is what
//! keeps cloaked regions near the k-user neighborhood scale the paper
//! reports.
//!
//! This module provides:
//!
//! - [`centralized_k_clustering`] — the production *level-based* algorithm
//!   (fast: one Kruskal pass builds the class-merge forest, a top-down cut
//!   and an ascending attachment scan finish in `O(E α(V))` after sorting),
//! - [`level_reference_k_clustering`] — a literal-minded slow
//!   implementation of the same level semantics (differential oracle),
//! - [`single_linkage_k_clustering`] — the fast binary-dendrogram cut
//!   implementing the pseudocode's one-edge-at-a-time reading (kept for the
//!   chaining ablation in `nela-bench`),
//! - [`reference_k_clustering`] — the O(E²) literal transcription of the
//!   pseudocode (differential oracle for the single-linkage variant).

use crate::Cluster;
use nela_geo::UserId;
use nela_wpg::{DisjointSets, Edge, Wpg};

/// The result of clustering an entire WPG (or an induced subgraph).
#[derive(Debug, Clone)]
pub struct GlobalClustering {
    /// Valid clusters, each of size ≥ k.
    pub clusters: Vec<Cluster>,
    /// Connected components smaller than k: their users cannot reach
    /// k-anonymity at all (paper Fig. 5's "disconnected problem").
    pub underfilled: Vec<Vec<UserId>>,
}

impl GlobalClustering {
    /// Index of the valid cluster containing `u`, if any.
    pub fn cluster_of(&self, u: UserId) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(u))
    }

    /// Every user appears in exactly one cluster or underfilled component;
    /// used by the property tests.
    pub fn is_partition_of(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for m in self
            .clusters
            .iter()
            .flat_map(|c| &c.members)
            .chain(self.underfilled.iter().flatten())
        {
            let i = *m as usize;
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

// ---------------------------------------------------------------------------
// Level-based algorithm (production).
// ---------------------------------------------------------------------------

/// Node of the class-merge forest: a t-connectivity class formed at `level`,
/// merging `children` classes of strictly lower levels.
struct ClassNode {
    level: u32,
    size: u32,
    children: Vec<u32>,
    /// Leaf vertex id (leaves only).
    vertex: UserId,
    /// True for nodes created (and possibly extended) at the level
    /// currently being processed; reset between levels.
    open: bool,
}

/// Runs the level-based Algorithm 1 over the whole graph.
pub fn centralized_k_clustering(g: &Wpg, k: usize) -> GlobalClustering {
    assert!(k >= 1, "anonymity level must be at least 1");
    let mut edges: Vec<Edge> = g.edges().collect();
    level_cluster_edge_list(g.n(), None, &mut edges, k)
}

/// Level-based Algorithm 1 restricted to the induced subgraph on `members` —
/// the third step of the distributed algorithm (Algorithm 2, line 16).
pub fn centralized_k_clustering_subset(g: &Wpg, members: &[UserId], k: usize) -> GlobalClustering {
    let member_set: std::collections::HashSet<UserId> = members.iter().copied().collect();
    let edges: Vec<Edge> = g
        .edges()
        .filter(|e| member_set.contains(&e.u) && member_set.contains(&e.v))
        .collect();
    centralized_k_clustering_edges(members, &edges, k)
}

/// Level-based Algorithm 1 over an explicit vertex set and edge list — used
/// by the distributed algorithm, whose host only holds the adjacency it
/// gathered over the network. Every edge must join two members.
pub fn centralized_k_clustering_edges(
    members: &[UserId],
    edges: &[Edge],
    k: usize,
) -> GlobalClustering {
    assert!(k >= 1, "anonymity level must be at least 1");
    let n = members
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut edges = edges.to_vec();
    level_cluster_edge_list(n, Some(members), &mut edges, k)
}

/// Shared core of the level-based algorithm.
fn level_cluster_edge_list(
    n: usize,
    vertices: Option<&[UserId]>,
    edges: &mut [Edge],
    k: usize,
) -> GlobalClustering {
    edges.sort_unstable_by_key(|e| (e.w, e.u, e.v));
    let vertex_list: Vec<UserId> = match vertices {
        Some(vs) => vs.to_vec(),
        None => (0..n as UserId).collect(),
    };

    // ---- Pass 1: build the class-merge forest by ascending weight levels.
    let mut nodes: Vec<ClassNode> = Vec::with_capacity(2 * vertex_list.len());
    let mut node_of_root = vec![u32::MAX; n];
    for &v in &vertex_list {
        node_of_root[v as usize] = nodes.len() as u32;
        nodes.push(ClassNode {
            level: 0,
            size: 1,
            children: Vec::new(),
            vertex: v,
            open: false,
        });
    }
    let mut ds = DisjointSets::new(n);
    let mut level_start = 0;
    let mut opened: Vec<u32> = Vec::new();
    while level_start < edges.len() {
        let w = edges[level_start].w;
        let mut i = level_start;
        while i < edges.len() && edges[i].w == w {
            let e = edges[i];
            i += 1;
            let (ru, rv) = (ds.find(e.u), ds.find(e.v));
            if ru == rv {
                continue;
            }
            let (nu, nv) = (node_of_root[ru as usize], node_of_root[rv as usize]);
            ds.union(e.u, e.v);
            let r = ds.find(e.u);
            let merged = match (nodes[nu as usize].open, nodes[nv as usize].open) {
                (true, false) => {
                    nodes[nu as usize].children.push(nv);
                    nodes[nu as usize].size += nodes[nv as usize].size;
                    nu
                }
                (false, true) => {
                    nodes[nv as usize].children.push(nu);
                    nodes[nv as usize].size += nodes[nu as usize].size;
                    nv
                }
                (true, true) => {
                    // Two open level-w nodes fuse: move nv's children into nu.
                    let moved = std::mem::take(&mut nodes[nv as usize].children);
                    let moved_size = nodes[nv as usize].size;
                    nodes[nu as usize].children.extend(moved);
                    nodes[nu as usize].size += moved_size;
                    nodes[nv as usize].open = false;
                    nu
                }
                (false, false) => {
                    let id = nodes.len() as u32;
                    let size = nodes[nu as usize].size + nodes[nv as usize].size;
                    nodes.push(ClassNode {
                        level: w,
                        size,
                        children: vec![nu, nv],
                        vertex: UserId::MAX,
                        open: true,
                    });
                    opened.push(id);
                    id
                }
            };
            node_of_root[r as usize] = merged;
        }
        for &o in &opened {
            nodes[o as usize].open = false;
        }
        opened.clear();
        level_start = i;
    }

    // ---- Pass 2: top-down cut — recurse into valid children only.
    let mut roots: Vec<u32> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for &v in &vertex_list {
            let r = ds.find(v);
            if seen.insert(r) {
                roots.push(node_of_root[r as usize]);
            }
        }
    }
    let mut finals: Vec<u32> = Vec::new(); // final cluster nodes
    let mut stragglers: Vec<u32> = Vec::new(); // undersized side branches
    let mut underfilled_nodes: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for root in roots {
        if (nodes[root as usize].size as usize) < k {
            underfilled_nodes.push(root);
            continue;
        }
        stack.push(root);
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            let any_valid = node
                .children
                .iter()
                .any(|&c| nodes[c as usize].size as usize >= k);
            if !any_valid {
                finals.push(ni);
                continue;
            }
            for &c in &node.children {
                if nodes[c as usize].size as usize >= k {
                    stack.push(c);
                } else {
                    stragglers.push(c);
                }
            }
        }
    }

    // ---- Pass 3: attach stragglers to their graph-nearest final cluster.
    // Group id per vertex via a second union-find; a group is "settled" when
    // it contains a final cluster. Scanning edges ascending and unioning any
    // pair not both-settled glues every straggler chain to the lightest
    // reachable final cluster deterministically.
    let mut ds2 = DisjointSets::new(n);
    let mut settled = vec![false; n]; // indexed by ds2 root (maintained on union)
    let mut connectivity = vec![0u32; n]; // per ds2 root: internal MEW so far
    let mut members_buf: Vec<UserId> = Vec::new();
    let mut unsettled_groups = 0usize;
    let seed_group = |nodes: &[ClassNode],
                      ni: u32,
                      is_final: bool,
                      ds2: &mut DisjointSets,
                      settled: &mut [bool],
                      connectivity: &mut [u32],
                      members_buf: &mut Vec<UserId>| {
        members_buf.clear();
        collect_leaves(nodes, ni, members_buf);
        let first = members_buf[0];
        for &m in members_buf.iter().skip(1) {
            ds2.union(first, m);
        }
        let r = ds2.find(first);
        settled[r as usize] = is_final;
        connectivity[r as usize] = nodes[ni as usize].level;
    };
    for &f in &finals {
        seed_group(
            &nodes,
            f,
            true,
            &mut ds2,
            &mut settled,
            &mut connectivity,
            &mut members_buf,
        );
    }
    for &s in &stragglers {
        seed_group(
            &nodes,
            s,
            false,
            &mut ds2,
            &mut settled,
            &mut connectivity,
            &mut members_buf,
        );
        unsettled_groups += 1;
    }
    // Vertices of underfilled components have no seeded group; their edges
    // must not perturb the unsettled-group accounting.
    let mut in_underfilled = vec![false; n];
    for &u in &underfilled_nodes {
        members_buf.clear();
        collect_leaves(&nodes, u, &mut members_buf);
        for &m in &members_buf {
            in_underfilled[m as usize] = true;
        }
    }
    if unsettled_groups > 0 {
        for e in edges.iter() {
            if in_underfilled[e.u as usize] {
                continue; // edges never cross components
            }
            let (ra, rb) = (ds2.find(e.u), ds2.find(e.v));
            if ra == rb || (settled[ra as usize] && settled[rb as usize]) {
                continue;
            }
            let was_settled = settled[ra as usize] || settled[rb as usize];
            let conn = connectivity[ra as usize]
                .max(connectivity[rb as usize])
                .max(e.w);
            let both_unsettled = !settled[ra as usize] && !settled[rb as usize];
            ds2.union(e.u, e.v);
            let r = ds2.find(e.u);
            settled[r as usize] = was_settled;
            connectivity[r as usize] = conn;
            // Either a straggler group joined a settled one, or two
            // straggler groups fused: one fewer unsettled group either way.
            if was_settled || both_unsettled {
                unsettled_groups -= 1;
            }
            if unsettled_groups == 0 {
                break;
            }
        }
    }

    // ---- Collect output.
    let mut underfilled = Vec::new();
    for &u in &underfilled_nodes {
        members_buf.clear();
        collect_leaves(&nodes, u, &mut members_buf);
        let mut m = members_buf.clone();
        m.sort_unstable();
        underfilled.push(m);
    }
    let mut by_root: std::collections::HashMap<u32, Vec<UserId>> = std::collections::HashMap::new();
    let underfilled_set: std::collections::HashSet<UserId> =
        underfilled.iter().flatten().copied().collect();
    for &v in &vertex_list {
        if !underfilled_set.contains(&v) {
            by_root.entry(ds2.find(v)).or_default().push(v);
        }
    }
    let mut clusters: Vec<Cluster> = by_root
        .into_iter()
        .map(|(root, mut members)| {
            members.sort_unstable();
            Cluster {
                members,
                connectivity: connectivity[root as usize],
            }
        })
        .collect();
    clusters.sort_by_key(|c| c.members[0]);
    debug_assert!(
        clusters.iter().all(|c| c.members.len() >= k),
        "straggler attachment left an undersized cluster"
    );
    underfilled.sort();
    let clusters = pack_oversized_clusters(clusters, edges, k);
    GlobalClustering {
        clusters,
        underfilled,
    }
}

/// Divides every cluster of size ≥ 2k into t-connected groups of size ≥ k
/// (the packing pass; see module docs). Groups are carved bottom-up along a
/// BFS spanning tree of the cluster's ≤ t edges: whenever a residual subtree
/// reaches k vertices it becomes a group, and the undersized root remainder
/// merges into an adjacent group. Deterministic for a fixed edge order.
pub(crate) fn pack_oversized_clusters(
    clusters: Vec<Cluster>,
    edges: &[Edge],
    k: usize,
) -> Vec<Cluster> {
    let mut out = Vec::with_capacity(clusters.len());
    for cluster in clusters {
        if cluster.members.len() < 2 * k {
            out.push(cluster);
            continue;
        }
        for members in pack_one(&cluster, edges, k) {
            out.push(Cluster {
                members,
                connectivity: cluster.connectivity,
            });
        }
    }
    out.sort_by_key(|c| c.members[0]);
    out
}

/// Packs a single oversized cluster; returns ≥ 1 groups, each of size ≥ k,
/// each connected through the cluster's ≤ t edges.
fn pack_one(cluster: &Cluster, edges: &[Edge], k: usize) -> Vec<Vec<UserId>> {
    use std::collections::{HashMap, HashSet, VecDeque};
    let set: HashSet<UserId> = cluster.members.iter().copied().collect();
    let mut adj: HashMap<UserId, Vec<UserId>> = HashMap::new();
    for e in edges {
        if e.w <= cluster.connectivity && set.contains(&e.u) && set.contains(&e.v) {
            adj.entry(e.u).or_default().push(e.v);
            adj.entry(e.v).or_default().push(e.u);
        }
    }
    for nbrs in adj.values_mut() {
        nbrs.sort_unstable();
    }
    // BFS spanning tree from the smallest member.
    let root = cluster.members[0];
    let mut parent: HashMap<UserId, UserId> = HashMap::from([(root, root)]);
    let mut order: Vec<UserId> = vec![root];
    let mut queue: VecDeque<UserId> = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        if let Some(nbrs) = adj.get(&v) {
            for &y in nbrs {
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(y) {
                    slot.insert(v);
                    order.push(y);
                    queue.push_back(y);
                }
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        cluster.members.len(),
        "cluster not t-connected"
    );

    // Carve in reverse BFS order: when a residual subtree reaches k, it
    // becomes a group and detaches.
    let mut residual: HashMap<UserId, usize> = order.iter().map(|&v| (v, 1)).collect();
    let mut group_of: HashMap<UserId, u32> = HashMap::new();
    // Children still attached, per vertex (built reverse so carves prune).
    let mut attached_children: HashMap<UserId, Vec<UserId>> = HashMap::new();
    for &v in order.iter().skip(1) {
        attached_children.entry(parent[&v]).or_default().push(v);
    }
    let mut groups: Vec<Vec<UserId>> = Vec::new();
    for &v in order.iter().rev() {
        let size: usize = 1 + attached_children
            .get(&v)
            .map(|cs| cs.iter().map(|c| residual[c]).sum())
            .unwrap_or(0);
        residual.insert(v, size);
        if size >= k && v != root {
            // Carve the residual subtree rooted at v.
            let gid = groups.len() as u32;
            let mut grp = Vec::with_capacity(size);
            let mut stack = vec![v];
            while let Some(x) = stack.pop() {
                grp.push(x);
                group_of.insert(x, gid);
                if let Some(cs) = attached_children.get(&x) {
                    stack.extend(cs.iter().copied());
                }
            }
            groups.push(grp);
            // Detach from parent.
            if let Some(cs) = attached_children.get_mut(&parent[&v]) {
                cs.retain(|&c| c != v);
            }
            residual.insert(v, 0);
        }
    }
    // Root remainder.
    let mut leftover: Vec<UserId> = Vec::new();
    {
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            leftover.push(x);
            if let Some(cs) = attached_children.get(&x) {
                stack.extend(cs.iter().copied());
            }
        }
    }
    if leftover.len() >= k || groups.is_empty() {
        groups.push(leftover);
    } else {
        // Merge the undersized remainder into the adjacent group reached by
        // the smallest carved child of any leftover vertex.
        let leftover_set: HashSet<UserId> = leftover.iter().copied().collect();
        let target = order
            .iter()
            .filter(|&&v| !leftover_set.contains(&v) && leftover_set.contains(&parent[&v]))
            .min()
            .map(|&v| group_of[&v])
            .expect("tree connectivity guarantees an adjacent group");
        groups[target as usize].extend(leftover);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    debug_assert!(groups.iter().all(|g| g.len() >= k));
    groups
}

fn collect_leaves(nodes: &[ClassNode], root: u32, out: &mut Vec<UserId>) {
    let mut stack = vec![root];
    while let Some(ni) = stack.pop() {
        let node = &nodes[ni as usize];
        if node.children.is_empty() {
            out.push(node.vertex);
        } else {
            stack.extend(node.children.iter().copied());
        }
    }
}

/// A slow, direct implementation of the level-based semantics used as the
/// differential-testing oracle for [`centralized_k_clustering`]: recompute
/// connectivity components per weight level by BFS, recurse, then attach
/// stragglers by ascending edge scan.
pub fn level_reference_k_clustering(g: &Wpg, k: usize) -> GlobalClustering {
    assert!(k >= 1, "anonymity level must be at least 1");
    let all_edges: Vec<Edge> = g.edges().collect();
    let comps = components_of(&(0..g.n() as UserId).collect::<Vec<_>>(), &all_edges);
    let mut finals: Vec<(Vec<UserId>, u32)> = Vec::new();
    let mut stragglers: Vec<(Vec<UserId>, u32)> = Vec::new();
    let mut underfilled: Vec<Vec<UserId>> = Vec::new();
    let mut queue: Vec<Vec<UserId>> = Vec::new();
    for c in comps {
        if c.len() < k {
            underfilled.push(c);
        } else {
            queue.push(c);
        }
    }
    while let Some(members) = queue.pop() {
        let set: std::collections::HashSet<UserId> = members.iter().copied().collect();
        let internal: Vec<Edge> = all_edges
            .iter()
            .copied()
            .filter(|e| set.contains(&e.u) && set.contains(&e.v))
            .collect();
        // The class formation level is the MST bottleneck, not the raw MEW:
        // heavier cycle edges never decide connectivity.
        let t = min_spanning_mew(&members, &internal);
        if t == 0 {
            finals.push((members, 0));
            continue;
        }
        // Removing every edge of weight ≥ t disconnects (the MST needs a
        // weight-t edge), so the recursion strictly descends.
        let below: Vec<Edge> = internal.iter().copied().filter(|e| e.w < t).collect();
        let sub = components_of(&members, &below);
        debug_assert!(sub.len() >= 2, "bottleneck removal must disconnect");
        if sub.iter().all(|c| c.len() < k) {
            finals.push((members, t));
            continue;
        }
        for c in sub {
            if c.len() >= k {
                queue.push(c);
            } else {
                let cset: std::collections::HashSet<UserId> = c.iter().copied().collect();
                let cedges: Vec<Edge> = below
                    .iter()
                    .copied()
                    .filter(|e| cset.contains(&e.u) && cset.contains(&e.v))
                    .collect();
                let own_level = min_spanning_mew(&c, &cedges);
                stragglers.push((c, own_level));
            }
        }
    }
    // Attach stragglers: ascending edge scan, never merging two finals.
    let n = g.n();
    let mut ds = DisjointSets::new(n);
    let mut settled = vec![false; n];
    let mut conn = vec![0u32; n];
    let mut unsettled = stragglers.len();
    let seed = |members: &[UserId],
                level: u32,
                is_final: bool,
                ds: &mut DisjointSets,
                settled: &mut [bool],
                conn: &mut [u32]| {
        for w in members.windows(2) {
            ds.union(w[0], w[1]);
        }
        let r = ds.find(members[0]);
        settled[r as usize] = is_final;
        conn[r as usize] = level;
    };
    for (m, l) in &finals {
        seed(m, *l, true, &mut ds, &mut settled, &mut conn);
    }
    for (m, l) in &stragglers {
        seed(m, *l, false, &mut ds, &mut settled, &mut conn);
    }
    if unsettled > 0 {
        let mut sorted = all_edges.clone();
        sorted.sort_unstable_by_key(|e| (e.w, e.u, e.v));
        let underfilled_set: std::collections::HashSet<UserId> =
            underfilled.iter().flatten().copied().collect();
        for e in sorted {
            if underfilled_set.contains(&e.u) {
                continue;
            }
            let (ra, rb) = (ds.find(e.u), ds.find(e.v));
            if ra == rb || (settled[ra as usize] && settled[rb as usize]) {
                continue;
            }
            let was = settled[ra as usize] || settled[rb as usize];
            let c = conn[ra as usize].max(conn[rb as usize]).max(e.w);
            let both_un = !settled[ra as usize] && !settled[rb as usize];
            ds.union(e.u, e.v);
            let r = ds.find(e.u);
            settled[r as usize] = was;
            conn[r as usize] = c;
            if was || both_un {
                unsettled -= 1;
            }
            if unsettled == 0 {
                break;
            }
        }
    }
    let underfilled_set: std::collections::HashSet<UserId> =
        underfilled.iter().flatten().copied().collect();
    let mut by_root: std::collections::HashMap<u32, Vec<UserId>> = std::collections::HashMap::new();
    for v in 0..n as UserId {
        if !underfilled_set.contains(&v) {
            by_root.entry(ds.find(v)).or_default().push(v);
        }
    }
    let mut clusters: Vec<Cluster> = by_root
        .into_iter()
        .map(|(root, mut members)| {
            members.sort_unstable();
            Cluster {
                members,
                connectivity: conn[root as usize],
            }
        })
        .collect();
    clusters.sort_by_key(|c| c.members[0]);
    underfilled.sort();
    let clusters = pack_oversized_clusters(clusters, &all_edges, k);
    GlobalClustering {
        clusters,
        underfilled,
    }
}

// ---------------------------------------------------------------------------
// Single-linkage (one-edge-at-a-time) variants — the pseudocode's literal
// reading, kept for differential testing and the chaining ablation.
// ---------------------------------------------------------------------------

/// Dendrogram node for the binary single-linkage cut.
struct MergeNode {
    weight: u32,
    size: u32,
    children: Option<(u32, u32)>,
    vertex: UserId,
}

/// The fast binary-dendrogram implementation of the pseudocode's literal
/// one-edge-at-a-time reading: removing edges in descending `(w, u, v)`
/// order and stopping at the first disconnection is the time-reverse of an
/// ascending Kruskal pass, so the recursion equals a top-down cut of the
/// Kruskal merge tree where a node splits only when **both** children hold
/// ≥ k vertices. Suffers chaining on tie-heavy weights (see module docs).
pub fn single_linkage_k_clustering(g: &Wpg, k: usize) -> GlobalClustering {
    assert!(k >= 1, "anonymity level must be at least 1");
    let mut edges: Vec<Edge> = g.edges().collect();
    edges.sort_unstable_by_key(|e| (e.w, e.u, e.v));

    let n = g.n();
    let mut nodes: Vec<MergeNode> = Vec::with_capacity(2 * n);
    let mut node_of_root = vec![u32::MAX; n];
    for v in 0..n as UserId {
        node_of_root[v as usize] = nodes.len() as u32;
        nodes.push(MergeNode {
            weight: 0,
            size: 1,
            children: None,
            vertex: v,
        });
    }
    let mut ds = DisjointSets::new(n);
    for e in &edges {
        let (ru, rv) = (ds.find(e.u), ds.find(e.v));
        if ru == rv {
            continue;
        }
        let (nu, nv) = (node_of_root[ru as usize], node_of_root[rv as usize]);
        let mi = nodes.len() as u32;
        nodes.push(MergeNode {
            weight: e.w,
            size: nodes[nu as usize].size + nodes[nv as usize].size,
            children: Some((nu, nv)),
            vertex: UserId::MAX,
        });
        ds.union(e.u, e.v);
        node_of_root[ds.find(e.u) as usize] = mi;
    }

    let mut roots: Vec<u32> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for v in 0..n as UserId {
        let r = ds.find(v);
        if seen.insert(r) {
            roots.push(node_of_root[r as usize]);
        }
    }
    let mut clusters = Vec::new();
    let mut underfilled = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let collect = |nodes: &[MergeNode], root: u32| -> Vec<UserId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            match nodes[ni as usize].children {
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
                None => out.push(nodes[ni as usize].vertex),
            }
        }
        out.sort_unstable();
        out
    };
    for root in roots {
        if (nodes[root as usize].size as usize) < k {
            underfilled.push(collect(&nodes, root));
            continue;
        }
        stack.push(root);
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            match node.children {
                Some((a, b))
                    if nodes[a as usize].size as usize >= k
                        && nodes[b as usize].size as usize >= k =>
                {
                    stack.push(a);
                    stack.push(b);
                }
                _ => clusters.push(Cluster {
                    members: collect(&nodes, ni),
                    connectivity: node.weight,
                }),
            }
        }
    }
    clusters.sort_by_key(|c| c.members[0]);
    underfilled.sort();
    GlobalClustering {
        clusters,
        underfilled,
    }
}

/// The O(E²) literal transcription of the paper's Algorithm 1 pseudocode:
/// repeated descending-order single-edge removal with a connectivity check
/// after every removal. Differential oracle for
/// [`single_linkage_k_clustering`].
pub fn reference_k_clustering(g: &Wpg, k: usize) -> GlobalClustering {
    assert!(k >= 1, "anonymity level must be at least 1");
    let mut all_edges: Vec<Edge> = g.edges().collect();
    all_edges.sort_unstable_by_key(|e| std::cmp::Reverse((e.w, e.u, e.v)));

    let comps = nela_wpg::connectivity::components_under(
        g,
        g.max_weight().unwrap_or(0),
        &nela_wpg::connectivity::nothing_removed,
    );
    let mut clusters = Vec::new();
    let mut underfilled = Vec::new();
    let mut queue: Vec<(Vec<UserId>, Vec<Edge>)> = comps
        .into_iter()
        .map(|members| {
            let set: std::collections::HashSet<UserId> = members.iter().copied().collect();
            let edges: Vec<Edge> = all_edges
                .iter()
                .copied()
                .filter(|e| set.contains(&e.u) && set.contains(&e.v))
                .collect();
            (members, edges)
        })
        .collect();

    while let Some((members, edges)) = queue.pop() {
        if members.len() < k {
            underfilled.push(members);
            continue;
        }
        let mut split = None;
        for removed_prefix in 1..=edges.len() {
            let remaining = &edges[removed_prefix..];
            let comps = components_of(&members, remaining);
            if comps.len() > 1 {
                split = Some((removed_prefix, comps));
                break;
            }
        }
        match split {
            Some((prefix, comps)) if comps.iter().all(|c| c.len() >= k) => {
                for part in comps {
                    let set: std::collections::HashSet<UserId> = part.iter().copied().collect();
                    let part_edges: Vec<Edge> = edges[prefix..]
                        .iter()
                        .copied()
                        .filter(|e| set.contains(&e.u) && set.contains(&e.v))
                        .collect();
                    queue.push((part, part_edges));
                }
            }
            _ => {
                let connectivity = min_spanning_mew(&members, &edges);
                let mut members = members;
                members.sort_unstable();
                clusters.push(Cluster {
                    members,
                    connectivity,
                });
            }
        }
    }
    clusters.sort_by_key(|c| c.members[0]);
    underfilled.sort();
    GlobalClustering {
        clusters,
        underfilled,
    }
}

/// Connected components of `members` under the given edge list.
fn components_of(members: &[UserId], edges: &[Edge]) -> Vec<Vec<UserId>> {
    let mut index: std::collections::HashMap<UserId, u32> = std::collections::HashMap::new();
    for (i, &m) in members.iter().enumerate() {
        index.insert(m, i as u32);
    }
    let mut ds = DisjointSets::new(members.len());
    for e in edges {
        ds.union(index[&e.u], index[&e.v]);
    }
    let mut by_root: std::collections::HashMap<u32, Vec<UserId>> = std::collections::HashMap::new();
    for (i, &m) in members.iter().enumerate() {
        by_root.entry(ds.find(i as u32)).or_default().push(m);
    }
    let mut comps: Vec<Vec<UserId>> = by_root.into_values().collect();
    for c in &mut comps {
        c.sort_unstable();
    }
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Bottleneck (maximum) weight of a minimum spanning tree over `members`;
/// 0 for singletons.
fn min_spanning_mew(members: &[UserId], edges: &[Edge]) -> u32 {
    if members.len() <= 1 {
        return 0;
    }
    let mut index: std::collections::HashMap<UserId, u32> = std::collections::HashMap::new();
    for (i, &m) in members.iter().enumerate() {
        index.insert(m, i as u32);
    }
    let mut sorted: Vec<Edge> = edges.to_vec();
    sorted.sort_unstable_by_key(|e| (e.w, e.u, e.v));
    let mut ds = DisjointSets::new(members.len());
    let mut mew = 0;
    let mut merges = 0;
    for e in &sorted {
        if ds.union(index[&e.u], index[&e.v]) {
            mew = mew.max(e.w);
            merges += 1;
            if merges == members.len() - 1 {
                break;
            }
        }
    }
    mew
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_wpg::topology;

    /// The worked example of paper Fig. 6 (reconstructed so the 2-clustering
    /// flows exactly as described in §IV-A): a left pentagon, a bridge of
    /// weight 8, and a right pentagon that splits once more.
    fn fig6_like() -> Wpg {
        Wpg::from_edges(
            10,
            &[
                Edge::new(0, 1, 6),
                Edge::new(1, 2, 7),
                Edge::new(2, 3, 5),
                Edge::new(3, 4, 3),
                Edge::new(4, 0, 7),
                Edge::new(2, 5, 8),
                Edge::new(5, 6, 6),
                Edge::new(6, 7, 4),
                Edge::new(7, 8, 3),
                Edge::new(8, 9, 6),
                Edge::new(9, 5, 6),
            ],
        )
    }

    #[test]
    fn two_clustering_of_fig6_like_graph() {
        let g = fig6_like();
        let r = centralized_k_clustering(&g, 2);
        assert!(r.underfilled.is_empty());
        assert!(r.is_partition_of(10));
        for c in &r.clusters {
            assert!(c.len() >= 2);
        }
        // The bridge edge (weight 8) must never be inside a cluster: 0..=4
        // and 5..=9 must not share one.
        let left = r.cluster_of(2).unwrap();
        let right = r.cluster_of(5).unwrap();
        assert_ne!(left, right);
    }

    #[test]
    fn cluster_connectivity_is_internal_mew() {
        // Path 0-1-2-3 with weights 1,5,2: 2-clustering splits at 5 into
        // {0,1} (t=1) and {2,3} (t=2).
        let g = Wpg::from_edges(
            4,
            &[Edge::new(0, 1, 1), Edge::new(1, 2, 5), Edge::new(2, 3, 2)],
        );
        let r = centralized_k_clustering(&g, 2);
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.clusters[0].members, vec![0, 1]);
        assert_eq!(r.clusters[0].connectivity, 1);
        assert_eq!(r.clusters[1].members, vec![2, 3]);
        assert_eq!(r.clusters[1].connectivity, 2);
    }

    #[test]
    fn straggler_is_attached_not_blocking() {
        // Path a-b:1, b-c:2 with k=2: level-2 cut leaves {a,b} valid and {c}
        // a straggler, which is re-attached — one cluster of all three, with
        // connectivity 2 (the attachment level).
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 2)]);
        let r = centralized_k_clustering(&g, 2);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].members, vec![0, 1, 2]);
        assert_eq!(r.clusters[0].connectivity, 2);
    }

    #[test]
    fn level_cut_beats_single_linkage_on_tie_heavy_graph() {
        // Two weight-1 blobs of 4 vertices joined by a few weight-2 edges
        // and a weight-2 pendant: single linkage chains, the level cut
        // separates the blobs.
        let mut edges = vec![
            // blob A: 0-3 (clique-ish at weight 1)
            Edge::new(0, 1, 1),
            Edge::new(1, 2, 1),
            Edge::new(2, 3, 1),
            Edge::new(3, 0, 1),
            // blob B: 4-7
            Edge::new(4, 5, 1),
            Edge::new(5, 6, 1),
            Edge::new(6, 7, 1),
            Edge::new(7, 4, 1),
            // weight-2 bridges and pendant 8
            Edge::new(3, 4, 2),
            Edge::new(0, 7, 2),
            Edge::new(8, 2, 2),
        ];
        edges.sort_unstable_by_key(|e| (e.w, e.u, e.v));
        let g = Wpg::from_edges(9, &edges);
        let level = centralized_k_clustering(&g, 4);
        assert_eq!(level.clusters.len(), 2, "{:?}", level.clusters);
        // Pendant 8 joins blob A (attached via its weight-2 edge to 2).
        let a = level.cluster_of(0).unwrap();
        assert_eq!(level.cluster_of(8).unwrap(), a);
        assert_eq!(level.clusters[a].connectivity, 2);
        let b = level.cluster_of(4).unwrap();
        assert_eq!(level.clusters[b].connectivity, 1);
        // Single linkage cannot split: first disconnection strands a tiny
        // side (the pendant), so everything stays one cluster.
        let sl = single_linkage_k_clustering(&g, 4);
        assert_eq!(sl.clusters.len(), 1);
    }

    #[test]
    fn underfilled_components_are_reported() {
        let g = Wpg::from_edges(5, &[Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        // Vertices 3 and 4 are isolated; k=3.
        let r = centralized_k_clustering(&g, 3);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].members, vec![0, 1, 2]);
        assert_eq!(r.underfilled.len(), 2);
        assert!(r.is_partition_of(5));
    }

    #[test]
    fn k_equal_one_yields_singletons_where_possible() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 2)]);
        let r = centralized_k_clustering(&g, 1);
        assert_eq!(r.clusters.len(), 3);
        for c in &r.clusters {
            assert_eq!(c.len(), 1);
            assert_eq!(c.connectivity, 0);
        }
    }

    #[test]
    fn subset_clustering_ignores_outside_vertices() {
        let g = fig6_like();
        let members = vec![5, 6, 7, 8, 9];
        let r = centralized_k_clustering_subset(&g, &members, 2);
        let clustered: Vec<UserId> = r
            .clusters
            .iter()
            .flat_map(|c| c.members.clone())
            .chain(r.underfilled.iter().flatten().copied())
            .collect();
        let mut clustered_sorted = clustered.clone();
        clustered_sorted.sort_unstable();
        assert_eq!(clustered_sorted, members);
    }

    #[test]
    fn fast_level_algorithm_matches_slow_reference() {
        for seed in 0..8u64 {
            let g = topology::small_world(30, 4, 0.3, 5, seed);
            for k in [2usize, 3, 5] {
                let fast = centralized_k_clustering(&g, k);
                let slow = level_reference_k_clustering(&g, k);
                assert_eq!(fast.clusters, slow.clusters, "seed={seed} k={k}");
                assert_eq!(fast.underfilled, slow.underfilled, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn fast_level_matches_reference_on_grids() {
        for seed in 0..4u64 {
            let g = topology::grid_graph(5, 6, 4, seed);
            for k in [2usize, 4] {
                let fast = centralized_k_clustering(&g, k);
                let slow = level_reference_k_clustering(&g, k);
                assert_eq!(fast.clusters, slow.clusters, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn single_linkage_matches_literal_pseudocode() {
        let g = fig6_like();
        for k in 1..=5 {
            let fast = single_linkage_k_clustering(&g, k);
            let slow = reference_k_clustering(&g, k);
            assert_eq!(fast.clusters, slow.clusters, "k={k}");
        }
        for seed in 0..6u64 {
            let g = topology::small_world(24, 4, 0.3, 6, seed);
            for k in [2usize, 3, 5] {
                let fast = single_linkage_k_clustering(&g, k);
                let slow = reference_k_clustering(&g, k);
                assert_eq!(fast.clusters, slow.clusters, "seed={seed} k={k}");
                assert_eq!(fast.underfilled, slow.underfilled, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn all_level_clusters_are_connected_at_reported_t() {
        let g = topology::small_world(40, 4, 0.2, 8, 9);
        let r = centralized_k_clustering(&g, 4);
        assert!(r.is_partition_of(40));
        for c in &r.clusters {
            let set: std::collections::HashSet<UserId> = c.members.iter().copied().collect();
            let internal: Vec<Edge> = g
                .edges()
                .filter(|e| set.contains(&e.u) && set.contains(&e.v) && e.w <= c.connectivity)
                .collect();
            let comps = components_of(&c.members, &internal);
            assert_eq!(comps.len(), 1, "cluster not t-connected at reported t");
        }
    }

    #[test]
    fn level_clusters_never_smaller_than_k() {
        for seed in 0..5u64 {
            let g = topology::random_regular(40, 4, 6, seed);
            for k in [2usize, 5, 10] {
                let r = centralized_k_clustering(&g, k);
                for c in &r.clusters {
                    assert!(c.len() >= k, "seed {seed} k {k}: {:?}", c.members);
                }
                assert!(r.is_partition_of(40));
            }
        }
    }

    #[test]
    fn empty_graph_clusters_nothing() {
        let g = Wpg::from_edges(0, &[]);
        let r = centralized_k_clustering(&g, 2);
        assert!(r.clusters.is_empty());
        assert!(r.underfilled.is_empty());
    }
}
