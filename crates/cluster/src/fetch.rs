//! Peer adjacency transport abstraction.
//!
//! In the distributed protocols the host learns the WPG incrementally: each
//! involved peer sends *one* message carrying its adjacency list and edge
//! weights (paper §VI). The algorithms in this crate are written against
//! [`PeerFetch`] so the same code runs over an in-memory graph (analysis,
//! tests) or over `nela-netsim`'s simulated radio network (latency, loss,
//! peer failures).

use nela_geo::UserId;
use nela_wpg::{Weight, Wpg};

/// Source of peer adjacency lists. One `fetch` per distinct peer corresponds
/// to one protocol message; the algorithms cache internally, so
/// implementations need not deduplicate.
pub trait PeerFetch {
    /// The adjacency list of `u` as `(neighbor, weight)` pairs, or `None`
    /// when the peer is unreachable (crashed, out of range, messages lost
    /// beyond retry).
    fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>>;
}

/// Infallible in-memory fetch straight from a [`Wpg`].
pub struct LocalFetch<'a> {
    g: &'a Wpg,
}

impl<'a> LocalFetch<'a> {
    /// Wraps a graph.
    pub fn new(g: &'a Wpg) -> Self {
        LocalFetch { g }
    }
}

impl PeerFetch for LocalFetch<'_> {
    fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>> {
        Some(self.g.neighbors(u).collect())
    }
}

/// Host-side adjacency cache: first access to a peer costs a fetch (one
/// message), later accesses are free. Tracks the distinct peers contacted —
/// the paper's communication-cost metric.
pub struct AdjCache<'f> {
    fetch: &'f mut dyn PeerFetch,
    host: UserId,
    map: std::collections::HashMap<UserId, Vec<(UserId, Weight)>>,
}

impl<'f> AdjCache<'f> {
    /// Creates a cache for a protocol run by `host`.
    pub fn new(fetch: &'f mut dyn PeerFetch, host: UserId) -> Self {
        AdjCache {
            fetch,
            host,
            map: std::collections::HashMap::new(),
        }
    }

    /// The adjacency of `u`, fetching on first use.
    pub fn get(&mut self, u: UserId) -> Result<&[(UserId, Weight)], crate::ClusterError> {
        if !self.map.contains_key(&u) {
            let adj = self
                .fetch
                .fetch(u)
                .ok_or(crate::ClusterError::PeerUnreachable { peer: u })?;
            self.map.insert(u, adj);
        }
        Ok(self.map.get(&u).expect("just inserted"))
    }

    /// Number of peers whose adjacency was fetched, excluding the host's own
    /// (local, free) list — the per-request communication cost.
    pub fn contacted(&self) -> usize {
        self.map.len() - usize::from(self.map.contains_key(&self.host))
    }

    /// Every undirected edge among `members` known to the cache, each once.
    pub fn internal_edges(&self, members: &[UserId]) -> Vec<nela_wpg::Edge> {
        let set: std::collections::HashSet<UserId> = members.iter().copied().collect();
        let mut edges = Vec::new();
        for &m in members {
            if let Some(adj) = self.map.get(&m) {
                for &(v, w) in adj {
                    if m < v && set.contains(&v) {
                        edges.push(nela_wpg::Edge::new(m, v, w));
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_wpg::Edge;

    #[test]
    fn cache_fetches_once_and_counts() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 2)]);
        let mut local = LocalFetch::new(&g);
        let mut cache = AdjCache::new(&mut local, 0);
        assert_eq!(cache.get(0).unwrap().len(), 1);
        assert_eq!(cache.get(1).unwrap().len(), 2);
        assert_eq!(cache.get(1).unwrap().len(), 2);
        assert_eq!(cache.contacted(), 1, "host's own list is free");
    }

    #[test]
    fn internal_edges_are_deduplicated() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 2)]);
        let mut local = LocalFetch::new(&g);
        let mut cache = AdjCache::new(&mut local, 0);
        for u in 0..3 {
            cache.get(u).unwrap();
        }
        let edges = cache.internal_edges(&[0, 1, 2]);
        assert_eq!(edges.len(), 2);
    }

    /// A fetch that fails for a chosen peer.
    struct FailingFetch<'a> {
        inner: LocalFetch<'a>,
        dead: UserId,
    }
    impl PeerFetch for FailingFetch<'_> {
        fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>> {
            if u == self.dead {
                None
            } else {
                self.inner.fetch(u)
            }
        }
    }

    #[test]
    fn unreachable_peer_surfaces_as_error() {
        let g = Wpg::from_edges(2, &[Edge::new(0, 1, 1)]);
        let mut f = FailingFetch {
            inner: LocalFetch::new(&g),
            dead: 1,
        };
        let mut cache = AdjCache::new(&mut f, 0);
        assert!(cache.get(0).is_ok());
        assert_eq!(
            cache.get(1).unwrap_err(),
            crate::ClusterError::PeerUnreachable { peer: 1 }
        );
    }
}
