//! Executable checker for the cluster-isolation property (Property 4.1).
//!
//! A distributed k-clustering algorithm is *cluster-isolated* when, for any
//! host u whose cluster is carved out of the WPG, every other vertex v
//! obtains the same cluster in the original WPG G and in the remaining one.
//! The t-connectivity algorithm satisfies Theorem 4.4's sufficient condition
//! by construction; kNN does not — the paper's central motivation.
//!
//! Two fidelity notes, verified by this module's tests and documented in
//! `DESIGN.md`:
//!
//! - On geometric, rank-weighted WPGs (the paper's evaluation setting) the
//!   t-connectivity algorithm is empirically isolation-clean at the
//!   final-cluster granularity: no victim's cluster changes, degrades, or
//!   disappears after a carve-out.
//! - On abstract topologies with uniformly random weights (many ties, no
//!   geometric locality) the border-absorption loop can cascade, and strict
//!   set-equality can fail for vertices far from the host even though no
//!   vertex *loses* the ability to cluster. The paper's proof covers the
//!   border vertices of a single carve, not cascaded interactions; the
//!   behavioral guarantee the evaluation relies on (Fig. 12(b): cloaked
//!   regions do not grow as more users get clustered) is what
//!   [`IsolationReport::degraded`]/[`IsolationReport::lost`] quantify.

use crate::distributed::distributed_k_clustering;
use crate::knn::{knn_cluster, TieBreak};
use nela_geo::UserId;
use nela_wpg::Wpg;
use std::collections::HashSet;

/// One clustering run, as seen by the isolation checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoOutcome {
    /// The host's final k-anonymity cluster (sorted members).
    pub cluster: Vec<UserId>,
    /// A scalar quality indicator where *larger is worse* (connectivity t
    /// for t-Conn, max shortest-path distance for kNN).
    pub quality: u64,
    /// The set of vertices this request would remove from the remaining WPG
    /// (the super-cluster for t-Conn, the k members for kNN).
    pub carve: Vec<UserId>,
}

/// A clustering algorithm under isolation test.
pub type AlgoFn<'a> = dyn Fn(&Wpg, UserId, &dyn Fn(UserId) -> bool) -> Option<AlgoOutcome> + 'a;

/// Aggregate isolation statistics over a set of carve-outs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationReport {
    /// Victim runs compared.
    pub checked: usize,
    /// Victims whose final cluster member set changed.
    pub changed: usize,
    /// Victims whose quality scalar strictly worsened.
    pub degraded: usize,
    /// Victims who could cluster before but not after.
    pub lost: usize,
}

impl IsolationReport {
    /// True when no victim was affected in any way — strict isolation.
    pub fn is_clean(&self) -> bool {
        self.changed == 0 && self.degraded == 0 && self.lost == 0
    }

    /// True when no victim got a worse or impossible cluster — the
    /// behavioral guarantee behind the paper's Fig. 12(b).
    pub fn is_non_degrading(&self) -> bool {
        self.degraded == 0 && self.lost == 0
    }
}

/// For each host in `hosts`: run `algo`, carve out its removable unit, and
/// re-run `algo` for every `victim_stride`-th remaining vertex, comparing
/// outcomes. Violations accumulate into the report.
pub fn isolation_report(
    g: &Wpg,
    hosts: &[UserId],
    victim_stride: usize,
    algo: &AlgoFn<'_>,
) -> IsolationReport {
    let stride = victim_stride.max(1);
    let none = |_: UserId| false;
    let mut report = IsolationReport::default();
    for &host in hosts {
        let Some(out) = algo(g, host, &none) else {
            continue;
        };
        let carved: HashSet<UserId> = out.carve.iter().copied().collect();
        let removed = |u: UserId| carved.contains(&u);
        for v in (0..g.n() as UserId).step_by(stride) {
            if carved.contains(&v) {
                continue;
            }
            let before = algo(g, v, &none);
            let after = algo(g, v, &removed);
            match (&before, &after) {
                (Some(b), Some(a)) => {
                    report.checked += 1;
                    if b.cluster != a.cluster {
                        report.changed += 1;
                    }
                    if a.quality > b.quality {
                        report.degraded += 1;
                    }
                }
                (Some(_), None) => {
                    report.checked += 1;
                    report.lost += 1;
                }
                (None, _) => {} // victim could never cluster; nothing to protect
            }
        }
    }
    report
}

/// The t-connectivity algorithm as an [`AlgoFn`].
pub fn t_conn_algo(
    k: usize,
) -> impl Fn(&Wpg, UserId, &dyn Fn(UserId) -> bool) -> Option<AlgoOutcome> {
    move |g, host, removed| {
        distributed_k_clustering(g, host, k, removed)
            .ok()
            .map(|o| AlgoOutcome {
                cluster: o.host_cluster.members.clone(),
                quality: o.host_cluster.connectivity as u64,
                carve: o.super_cluster,
            })
    }
}

/// kNN as an [`AlgoFn`].
pub fn knn_algo(
    k: usize,
    tie: TieBreak,
) -> impl Fn(&Wpg, UserId, &dyn Fn(UserId) -> bool) -> Option<AlgoOutcome> {
    move |g, host, removed| {
        knn_cluster(g, host, k, removed, tie)
            .ok()
            .map(|o| AlgoOutcome {
                carve: o.cluster.members.clone(),
                cluster: o.cluster.members,
                quality: o.max_distance,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_geo::{DatasetSpec, SpatialDistribution};
    use nela_wpg::{Edge, InverseDistanceRss, WpgBuilder};

    fn california_wpg(n: usize, seed: u64) -> Wpg {
        let pts = DatasetSpec {
            n,
            seed,
            distribution: SpatialDistribution::california(),
        }
        .generate();
        WpgBuilder::new(0.02, 10, InverseDistanceRss).build(&pts)
    }

    /// Hosts that can actually be served (sparse synthetic data strands
    /// some users — the paper's Fig. 5 situation).
    fn servable_hosts(g: &Wpg, k: usize, want: usize) -> Vec<UserId> {
        let none = |_: UserId| false;
        (0..g.n() as UserId)
            .step_by(17)
            .filter(|&h| distributed_k_clustering(g, h, k, &none).is_ok())
            .take(want)
            .collect()
    }

    #[test]
    fn t_conn_is_non_degrading_on_geometric_wpg() {
        // The paper's setting: clustered geometric data, mutual-rank
        // weights, k = 10. Carving a cluster must not worsen or destroy any
        // other user's cluster; a small amount of tie-level membership churn
        // (different but equally good clusters) is tolerated and quantified.
        let g = california_wpg(2000, 7);
        let algo = t_conn_algo(10);
        let hosts = servable_hosts(&g, 10, 3);
        assert!(!hosts.is_empty(), "no servable hosts");
        let report = isolation_report(&g, &hosts, 17, &algo);
        assert!(report.checked > 100, "checker barely ran: {report:?}");
        assert!(
            report.is_non_degrading(),
            "t-Conn degraded victims: {report:?}"
        );
        assert!(
            (report.changed as f64) < 0.05 * report.checked as f64,
            "excessive membership churn: {report:?}"
        );
    }

    #[test]
    fn t_conn_rarely_degrades_and_never_strands_on_geometric_wpg() {
        let g = california_wpg(1500, 21);
        let algo = t_conn_algo(5);
        let hosts = servable_hosts(&g, 5, 3);
        assert!(!hosts.is_empty(), "no servable hosts");
        let report = isolation_report(&g, &hosts, 13, &algo);
        assert_eq!(report.lost, 0, "{report:?}");
        assert!(
            (report.degraded as f64) <= 0.02 * report.checked as f64,
            "{report:?}"
        );
    }

    #[test]
    fn knn_harms_victims_on_the_fig4_variant() {
        // §IV's closing example: with edge (u4,u6) at weight 3, kNN clusters
        // u4 with {u3, u4, u5}; u6 (id 5) — whose only neighbors were u4 and
        // u5 — must now cluster with the distant u1/u2 side, reached only by
        // relaying through its consumed neighbors: a strictly worse cluster.
        let g = Wpg::from_edges(
            6,
            &[
                Edge::new(1, 0, 1),
                Edge::new(1, 2, 2),
                Edge::new(0, 2, 2),
                Edge::new(2, 3, 2),
                Edge::new(3, 4, 1),
                Edge::new(3, 5, 3),
                Edge::new(4, 5, 1),
            ],
        );
        let algo = knn_algo(3, TieBreak::Id);
        let none = |_: UserId| false;
        let host_out = algo(&g, 3, &none).unwrap();
        assert_eq!(host_out.cluster, vec![2, 3, 4], "host picks u3,u4,u5");
        let report = isolation_report(&g, &[3], 1, &algo);
        assert!(report.degraded > 0, "u6 should be degraded: {report:?}");
        assert!(report.changed > 0, "{report:?}");
    }

    #[test]
    fn knn_degrades_under_accumulated_carves_on_geometric_wpg() {
        // Sequentially carve kNN clusters (as a workload would) and verify
        // that *some* later request ends up with a worse max-distance than it
        // would have had on the fresh WPG — the effect behind Fig. 12(b).
        let g = california_wpg(1000, 3);
        let none = |_: UserId| false;
        let mut carved: HashSet<UserId> = HashSet::new();
        let mut degraded = false;
        for host in 0..g.n() as UserId {
            if carved.contains(&host) {
                continue;
            }
            let removed = |u: UserId| carved.contains(&u);
            let Ok(now) = knn_cluster(&g, host, 10, &removed, TieBreak::SmallestDegree) else {
                continue;
            };
            let fresh = knn_cluster(&g, host, 10, &none, TieBreak::SmallestDegree).unwrap();
            if now.max_distance > fresh.max_distance {
                degraded = true;
                break;
            }
            carved.extend(now.cluster.members.iter().copied());
        }
        assert!(degraded, "kNN quality never degraded under accumulation");
    }

    #[test]
    fn report_flags_are_consistent() {
        let clean = IsolationReport {
            checked: 10,
            ..Default::default()
        };
        assert!(clean.is_clean() && clean.is_non_degrading());
        let changed_only = IsolationReport {
            checked: 10,
            changed: 2,
            ..Default::default()
        };
        assert!(!changed_only.is_clean());
        assert!(changed_only.is_non_degrading());
        let lossy = IsolationReport {
            checked: 10,
            lost: 1,
            ..Default::default()
        };
        assert!(!lossy.is_non_degrading());
    }
}
