//! The hilbASR baseline (Ghinita et al., paper reference \[7\]) — the
//! strongest *position-exposing* prior work.
//!
//! hilbASR sorts all users along a Hilbert space-filling curve and groups
//! every k consecutive users into an anonymizing spatial region. The Hilbert
//! ordering's locality makes the groups spatially tight, and fixed-offset
//! bucketing gives the reciprocity property by construction. The catch — and
//! the motivation of the NELA paper — is that building the ordering requires
//! every user's **exact coordinates**.
//!
//! This module implements it as the privacy-vs-quality reference: what
//! cloaked-region quality is achievable *if* one gives up non-exposure. It
//! includes a from-scratch Hilbert curve (coordinates → d index) since no
//! external dependency is used.

use crate::registry::ClusterRegistry;
use crate::Cluster;
use nela_geo::{Point, UserId};

/// Order of the Hilbert curve used for indexing (2^16 cells per axis —
/// ample resolution below the radio range for any realistic population).
const ORDER: u32 = 16;

/// Maps a unit-square point to its Hilbert curve index at `ORDER` (16) bits
/// per axis, using the classic rotate-and-accumulate construction.
pub fn hilbert_index(p: Point) -> u64 {
    let side = 1u32 << ORDER;
    let clamp = |v: f64| -> u32 {
        let scaled = (v.clamp(0.0, 1.0) * side as f64) as u32;
        scaled.min(side - 1)
    };
    let (mut x, mut y) = (clamp(p.x), clamp(p.y));
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant (canonical xy2d rotation).
        if ry == 0 {
            if rx == 1 {
                x = (side - 1) - x;
                y = (side - 1) - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Partitions the whole population into clusters of k consecutive users in
/// Hilbert order (the final bucket absorbs the remainder, as in hilbASR).
/// Requires every user's exact position — the assumption NELA removes.
pub fn hilb_asr_partition(points: &[Point], k: usize) -> Vec<Cluster> {
    assert!(k >= 1, "anonymity level must be at least 1");
    let mut order: Vec<(u64, UserId)> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| (hilbert_index(p), i as UserId))
        .collect();
    order.sort_unstable();
    let n = points.len();
    if n < k {
        return Vec::new();
    }
    let buckets = n / k; // final bucket takes n % k extras
    let mut clusters = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let start = b * k;
        let end = if b + 1 == buckets { n } else { start + k };
        let mut members: Vec<UserId> = order[start..end].iter().map(|&(_, u)| u).collect();
        members.sort_unstable();
        clusters.push(Cluster {
            members,
            connectivity: 0, // not defined for a coordinate-based scheme
        });
    }
    clusters
}

/// Registers the full hilbASR partition into a registry (the scheme is
/// inherently global: the anonymizer computes every bucket up front).
pub fn hilb_asr_registry(points: &[Point], k: usize) -> ClusterRegistry {
    let mut registry = ClusterRegistry::new(points.len());
    for c in hilb_asr_partition(points, k) {
        registry.register(c);
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_index_is_injective_on_distinct_cells() {
        let pts = [
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.9, 0.9),
            Point::new(0.5, 0.5),
        ];
        let mut idx: Vec<u64> = pts.iter().map(|&p| hilbert_index(p)).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), pts.len());
    }

    #[test]
    fn hilbert_curve_is_local() {
        // Nearby points get nearby indices far more often than far points —
        // check the classic locality property statistically.
        let step = 1.0 / (1u32 << ORDER) as f64;
        let base = Point::new(0.3712, 0.6183);
        let near = Point::new(base.x + step, base.y);
        let far = Point::new(0.93, 0.08);
        let d_near = hilbert_index(base).abs_diff(hilbert_index(near));
        let d_far = hilbert_index(base).abs_diff(hilbert_index(far));
        assert!(d_near < d_far);
    }

    #[test]
    fn curve_visits_each_quadrant_contiguously_at_order_one() {
        // The four quadrant representatives must occupy the four quarters of
        // the index range in curve order.
        let q = [
            Point::new(0.25, 0.25),
            Point::new(0.25, 0.75),
            Point::new(0.75, 0.75),
            Point::new(0.75, 0.25),
        ];
        let total = 1u64 << (2 * ORDER);
        for (i, p) in q.iter().enumerate() {
            let d = hilbert_index(*p);
            let quarter = (d / (total / 4)) as usize;
            assert_eq!(quarter, i, "{p:?} landed in quarter {quarter}");
        }
    }

    #[test]
    fn partition_covers_everyone_with_buckets_of_k() {
        let pts: Vec<Point> = (0..103)
            .map(|i| Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.71) % 1.0))
            .collect();
        let clusters = hilb_asr_partition(&pts, 10);
        assert_eq!(clusters.len(), 10);
        let mut all: Vec<UserId> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<UserId>>());
        for (i, c) in clusters.iter().enumerate() {
            if i + 1 < clusters.len() {
                assert_eq!(c.len(), 10);
            } else {
                assert_eq!(c.len(), 13, "last bucket absorbs the remainder");
            }
        }
    }

    #[test]
    fn registry_reciprocity_holds() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.29) % 1.0))
            .collect();
        let registry = hilb_asr_registry(&pts, 5);
        assert_eq!(registry.reciprocity_violation(), None);
        assert_eq!(registry.clustered_users(), 50);
    }

    #[test]
    fn tiny_population_yields_nothing() {
        let pts = vec![Point::new(0.5, 0.5); 3];
        assert!(hilb_asr_partition(&pts, 5).is_empty());
    }

    #[test]
    fn hilbert_buckets_are_spatially_tighter_than_random_buckets() {
        // The whole point of hilbASR: curve-order groups beat arbitrary
        // groups on bounding-box area.
        let mut pts = Vec::new();
        let mut s: u64 = 99;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..400 {
            pts.push(Point::new(next(), next()));
        }
        let area_of = |members: &[UserId]| {
            let mpts: Vec<Point> = members.iter().map(|&m| pts[m as usize]).collect();
            nela_geo::Rect::bounding(&mpts).unwrap().area()
        };
        let hilb: f64 = hilb_asr_partition(&pts, 10)
            .iter()
            .map(|c| area_of(&c.members))
            .sum::<f64>()
            / 40.0;
        let random: f64 = (0..40)
            .map(|b| {
                area_of(
                    &(b * 10..(b + 1) * 10)
                        .map(|i| i as UserId)
                        .collect::<Vec<_>>(),
                )
            })
            .sum::<f64>()
            / 40.0;
        assert!(
            hilb < random / 2.0,
            "hilbert {hilb} should be far tighter than id-order {random}"
        );
    }
}
