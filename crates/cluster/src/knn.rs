//! The kNN clustering baseline (paper §IV, Fig. 4, §VI).
//!
//! kNN clusters the host vertex with its k−1 nearest not-yet-clustered
//! neighbors in the WPG, where "nearest" is by shortest weighted path
//! (multi-hop spanning is explicitly required in the paper when immediate
//! peers are exhausted: "the algorithm has to further span the WPG to find
//! k − 1 un-clustered users, which might be far away", §VI-A).
//!
//! The revised variant of Fig. 4(b) breaks distance ties by the smaller
//! vertex degree, which makes the algorithm cluster-isolated on that figure's
//! WPG — but not in general, which is the paper's motivation for the
//! t-connectivity algorithm. Both tie-break rules are provided.
//!
//! Already-clustered users cannot *join* the group, but they still *relay*
//! multi-hop paths — radio hops do not care about cluster membership. This
//! is what lets a host whose whole neighborhood has been consumed by earlier
//! requests still "find k−1 un-clustered users … far away" (§VI-C), which is
//! the mechanism behind kNN's region-size degradation as clustering
//! requests accumulate (Figs. 9(b), 11(b), 12(b)).
//!
//! Communication accounting matches the t-connectivity algorithm's: the host
//! fetches the adjacency list of every vertex it settles during the Dijkstra
//! expansion, so the cost equals the number of settled vertices (host
//! excluded).

use crate::fetch::{AdjCache, LocalFetch, PeerFetch};
use crate::{Cluster, ClusterError};
use nela_geo::UserId;
use nela_wpg::Wpg;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Distance-tie handling for the kNN expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Plain kNN: ties broken by vertex id (deterministic stand-in for the
    /// unspecified order of the naive algorithm in Fig. 4(a)).
    #[default]
    Id,
    /// Revised kNN of Fig. 4(b): ties broken by the smaller vertex degree,
    /// then id.
    SmallestDegree,
}

/// Result of a kNN clustering request.
#[derive(Debug, Clone)]
pub struct KnnOutcome {
    /// The cluster: host plus its k−1 nearest unclustered users.
    pub cluster: Cluster,
    /// Number of peers whose adjacency the host fetched (settled vertices).
    pub involved_users: usize,
    /// The largest shortest-path distance among the chosen members — a
    /// dispersion indicator (grows as the neighborhood gets exhausted).
    pub max_distance: u64,
}

/// Clusters `host` with its k−1 nearest unclustered peers by weighted
/// shortest-path distance over an in-memory WPG. See [`knn_cluster_with`]
/// for the transport-generic version.
pub fn knn_cluster(
    g: &Wpg,
    host: UserId,
    k: usize,
    removed: &dyn Fn(UserId) -> bool,
    tie: TieBreak,
) -> Result<KnnOutcome, ClusterError> {
    let mut fetch = LocalFetch::new(g);
    knn_cluster_with(&mut fetch, host, k, removed, tie)
}

/// Clusters `host` with its k−1 nearest unclustered peers, fetching
/// adjacency through `fetch`. Vertices with `removed(v) == true` cannot join
/// the cluster but still relay multi-hop paths.
///
/// # Errors
/// - [`ClusterError::ComponentTooSmall`] when fewer than k unclustered users
///   (host included) are reachable at all.
/// - [`ClusterError::PeerUnreachable`] when a required peer cannot be
///   contacted (only possible with fallible transports).
pub fn knn_cluster_with(
    fetch: &mut dyn PeerFetch,
    host: UserId,
    k: usize,
    removed: &dyn Fn(UserId) -> bool,
    tie: TieBreak,
) -> Result<KnnOutcome, ClusterError> {
    assert!(k >= 1, "anonymity level must be at least 1");
    assert!(!removed(host), "host must not be already clustered");
    let mut adj = AdjCache::new(fetch, host);

    let mut dist: HashMap<UserId, u64> = HashMap::from([(host, 0)]);
    let mut settled: HashSet<UserId> = HashSet::new();
    // The degree tie-break needs the candidate's adjacency; by the time a
    // vertex is pushed, its *predecessor*'s list is cached, but its own may
    // not be. Fetching it at push time matches the real protocol (a peer's
    // single message carries its adjacency, hence its degree).
    let mut heap: BinaryHeap<Reverse<(u64, u64, UserId)>> = BinaryHeap::new();
    let host_key = match tie {
        TieBreak::Id => (0u64, 0u64, host),
        TieBreak::SmallestDegree => (0, adj.get(host)?.len() as u64, host),
    };
    heap.push(Reverse(host_key));

    let mut members: Vec<UserId> = Vec::with_capacity(k);
    let mut max_distance = 0u64;

    while let Some(Reverse((d, _, v))) = heap.pop() {
        if settled.contains(&v) {
            continue;
        }
        if dist.get(&v).copied().unwrap_or(u64::MAX) < d {
            continue; // stale entry
        }
        settled.insert(v);
        if !removed(v) {
            members.push(v);
            max_distance = d;
            if members.len() == k {
                break;
            }
        }
        let nbrs: Vec<(UserId, nela_wpg::Weight)> = adj.get(v)?.to_vec();
        for (y, w) in nbrs {
            let nd = d + w as u64;
            if nd < dist.get(&y).copied().unwrap_or(u64::MAX) {
                dist.insert(y, nd);
                let key = match tie {
                    TieBreak::Id => (nd, 0, y),
                    TieBreak::SmallestDegree => (nd, adj.get(y)?.len() as u64, y),
                };
                heap.push(Reverse(key));
            }
        }
    }

    if members.len() < k {
        return Err(ClusterError::ComponentTooSmall {
            reachable: members.len(),
        });
    }
    members.sort_unstable();
    let connectivity = internal_mew(&mut adj, &members)?;
    Ok(KnnOutcome {
        cluster: Cluster {
            members,
            connectivity,
        },
        involved_users: adj.contacted(),
        max_distance,
    })
}

/// Maximum edge weight among edges internal to `members` (0 when the set has
/// no internal edges — kNN clusters are not necessarily connected through
/// internal edges once the neighborhood is depleted).
fn internal_mew(adj: &mut AdjCache<'_>, members: &[UserId]) -> Result<u32, ClusterError> {
    let set: HashSet<UserId> = members.iter().copied().collect();
    let mut mew = 0;
    for &m in members {
        for &(v, w) in adj.get(m)? {
            if set.contains(&v) {
                mew = mew.max(w);
            }
        }
    }
    Ok(mew)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_wpg::{topology, Edge};

    fn no_removed(_: UserId) -> bool {
        false
    }

    /// Paper Fig. 4's 6-vertex WPG (u1..u6 → ids 0..5) with the weights of
    /// Fig. 4(b): (u2,u1)=1, (u2,u3)=2, (u1,u3)=2, (u3,u4)=2, (u4,u5)=1,
    /// (u4,u6)=2, (u5,u6)=1.
    fn fig4_graph() -> Wpg {
        Wpg::from_edges(
            6,
            &[
                Edge::new(1, 0, 1),
                Edge::new(1, 2, 2),
                Edge::new(0, 2, 2),
                Edge::new(2, 3, 2),
                Edge::new(3, 4, 1),
                Edge::new(3, 5, 2),
                Edge::new(4, 5, 1),
            ],
        )
    }

    #[test]
    fn revised_knn_reproduces_fig4b() {
        // Host u4 (id 3), k=3. Nearest is u5 (w=1). Then u3 and u6 tie at
        // distance 2; u6 (degree 2) beats u3 (degree 3) under the revised
        // tie-break, giving {u4, u5, u6}.
        let g = fig4_graph();
        let out = knn_cluster(&g, 3, 3, &no_removed, TieBreak::SmallestDegree).unwrap();
        assert_eq!(out.cluster.members, vec![3, 4, 5]);
    }

    #[test]
    fn naive_knn_may_choose_differently_on_fig4() {
        // Under id tie-break, u3 (id 2) wins the tie instead of u6 (id 5).
        let g = fig4_graph();
        let out = knn_cluster(&g, 3, 3, &no_removed, TieBreak::Id).unwrap();
        assert_eq!(out.cluster.members, vec![2, 3, 4]);
    }

    #[test]
    fn multi_hop_distances_are_used() {
        // Path 0-1 (1), 1-2 (1), 0-3 (5): the 3-cluster of 0 takes the
        // 2-hop vertex 2 (distance 2) over the direct heavy neighbor 3.
        let g = Wpg::from_edges(
            4,
            &[Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 3, 5)],
        );
        let out = knn_cluster(&g, 0, 3, &no_removed, TieBreak::Id).unwrap();
        assert_eq!(out.cluster.members, vec![0, 1, 2]);
        assert_eq!(out.max_distance, 2);
    }

    #[test]
    fn clustered_users_relay_but_cannot_join() {
        // Path 0-1-2 plus heavy edge 0-3. With vertex 1 clustered, vertex 2
        // is still reachable *through* 1 (distance 2 < direct 5 to vertex
        // 3), so the 3-cluster is {0, 2, 3}.
        let g = Wpg::from_edges(
            4,
            &[Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 3, 5)],
        );
        let removed = |u: UserId| u == 1;
        let out = knn_cluster(&g, 0, 3, &removed, TieBreak::Id).unwrap();
        assert_eq!(out.cluster.members, vec![0, 2, 3]);
    }

    #[test]
    fn depletion_forces_farther_members() {
        // Ring 0..5 (weight 1). With 1 and 5 clustered, 0's 3-cluster must
        // take users two hops out on both sides.
        let g = topology::ring_lattice(6, 2, 1, 0);
        let fresh = knn_cluster(&g, 0, 3, &no_removed, TieBreak::Id).unwrap();
        assert_eq!(fresh.max_distance, 1); // one neighbor on each side
        let removed = |u: UserId| u == 1 || u == 5;
        let depleted = knn_cluster(&g, 0, 3, &removed, TieBreak::Id).unwrap();
        assert_eq!(depleted.cluster.members, vec![0, 2, 4]);
        assert_eq!(depleted.max_distance, 2);
    }

    #[test]
    fn errors_when_not_enough_unclustered() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        let removed = |u: UserId| u == 2;
        let err = knn_cluster(&g, 0, 3, &removed, TieBreak::Id).unwrap_err();
        assert_eq!(err, ClusterError::ComponentTooSmall { reachable: 2 });
    }

    #[test]
    fn cluster_always_contains_host_and_is_size_k() {
        let g = topology::small_world(50, 4, 0.2, 6, 8);
        for host in [0u32, 13, 49] {
            for k in [2usize, 5, 10] {
                let out = knn_cluster(&g, host, k, &no_removed, TieBreak::SmallestDegree).unwrap();
                assert_eq!(out.cluster.len(), k);
                assert!(out.cluster.contains(host));
            }
        }
    }

    #[test]
    fn involved_users_at_least_k_minus_one() {
        let g = topology::ring_lattice(30, 4, 5, 2);
        let out = knn_cluster(&g, 5, 6, &no_removed, TieBreak::Id).unwrap();
        assert!(out.involved_users >= 5);
    }

    #[test]
    fn exhausted_neighborhood_spans_farther() {
        // Ring: after clustering most of the ring, the host must span far to
        // find unclustered users, raising max_distance.
        let g = topology::ring_lattice(20, 2, 1, 0);
        let near = knn_cluster(&g, 0, 3, &no_removed, TieBreak::Id).unwrap();
        let removed = |u: UserId| u != 0 && u < 8; // ids 1..7 taken
        let far = knn_cluster(&g, 0, 3, &removed, TieBreak::Id).unwrap();
        assert!(far.max_distance > near.max_distance);
        assert!(far.involved_users >= near.involved_users);
    }
}
