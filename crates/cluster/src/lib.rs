//! Proximity minimum k-clustering — phase 1 of non-exposure location
//! cloaking (paper §IV).
//!
//! Given a weighted proximity graph, a host user and an anonymity level `k`,
//! find a cluster of ≥ k users containing the host with minimum maximum edge
//! weight (MEW — the paper's surrogate for cluster diameter, Corollary 4.2),
//! such that carving the cluster out of the graph does not change any other
//! user's future cluster (*cluster-isolation*, Property 4.1).
//!
//! Modules:
//!
//! - [`centralized`] — Algorithm 1, the centralized t-connectivity
//!   k-clustering that partitions a whole WPG; implemented both as a fast
//!   Kruskal-dendrogram cut and as a literal transcription of the paper's
//!   pseudocode (used for differential testing).
//! - [`distributed`] — Algorithm 2, the distributed, cluster-isolated
//!   t-connectivity k-clustering run by a host vertex, with per-request
//!   communication accounting (number of involved users, §VI).
//! - [`knn`] — the kNN baseline (and its smallest-degree tie-break revision
//!   from Fig. 4(b)) the paper compares against.
//! - [`registry`] — cluster membership bookkeeping across a sequence of host
//!   requests, enforcing the reciprocity property.
//! - [`isolation`] — an executable checker of the cluster-isolation property
//!   used by the test suite.

pub mod centralized;
pub mod distributed;
pub mod fetch;
pub mod hilbert;
pub mod isolation;
pub mod knn;
pub mod registry;

pub use centralized::{centralized_k_clustering, reference_k_clustering, GlobalClustering};
pub use distributed::{
    distributed_k_clustering, distributed_k_clustering_policy, distributed_k_clustering_with,
    distributed_k_clustering_with_policy, DistributedOutcome,
};
pub use fetch::{LocalFetch, PeerFetch};
pub use knn::{knn_cluster, knn_cluster_with, KnnOutcome, TieBreak};
pub use registry::{ClaimOutcome, ClusterRegistry, ShardTelemetry, ShardedRegistry};

use nela_geo::UserId;
use nela_wpg::Weight;

/// A finished k-anonymity cluster: its members (sorted) and its connectivity
/// `t` — the smallest threshold under which the members are mutually
/// t-connected through internal edges (equals the cluster's MEW in its
/// minimum spanning tree; `0` for singleton clusters, which only arise for
/// `k = 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    pub members: Vec<UserId>,
    pub connectivity: Weight,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by the
    /// algorithms; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True when the cluster meets the anonymity requirement `k`.
    pub fn is_valid(&self, k: usize) -> bool {
        self.members.len() >= k
    }

    /// The anonymity requirement this cluster must meet under `kp`: the
    /// strictest (maximum) `k_i` of its members.
    pub fn required_k(&self, kp: KPolicy<'_>) -> usize {
        kp.required(self.members.iter().copied())
    }

    /// True when the cluster meets the per-member requirement of `kp` —
    /// size at least the max `k_i` over its members. Reduces to
    /// [`Cluster::is_valid`] under [`KPolicy::Uniform`].
    pub fn is_valid_for(&self, kp: KPolicy<'_>) -> bool {
        self.members.len() >= self.required_k(kp)
    }

    /// True when `u` is a member (members are sorted, so binary search).
    pub fn contains(&self, u: UserId) -> bool {
        self.members.binary_search(&u).is_ok()
    }
}

/// Per-user anonymity requirement. The paper assumes one global `k`
/// ([`KPolicy::Uniform`]); personalized privacy (à la MeshCloak) lets each
/// user carry its own `k_i` ([`KPolicy::PerUser`]). A cluster satisfies the
/// policy when its size reaches the **max** `k_i` of its members — every
/// member gets at least the anonymity it asked for.
#[derive(Debug, Clone, Copy)]
pub enum KPolicy<'a> {
    /// Every user requires the same k (the paper's setting).
    Uniform(usize),
    /// `per_user[u]` is user `u`'s personal requirement `k_i` (each ≥ 1).
    /// The slice must cover every user id the algorithm can touch.
    PerUser(&'a [usize]),
}

impl KPolicy<'_> {
    /// User `u`'s own requirement.
    pub fn of(&self, u: UserId) -> usize {
        match self {
            KPolicy::Uniform(k) => *k,
            KPolicy::PerUser(ks) => ks[u as usize],
        }
    }

    /// The requirement a cluster with exactly `members` must meet: the max
    /// `k_i` over them (the uniform k regardless of membership for
    /// [`KPolicy::Uniform`]; at least 1 always).
    pub fn required<I: IntoIterator<Item = UserId>>(&self, members: I) -> usize {
        match self {
            KPolicy::Uniform(k) => (*k).max(1),
            KPolicy::PerUser(_) => members
                .into_iter()
                .map(|u| self.of(u))
                .max()
                .unwrap_or(1)
                .max(1),
        }
    }

    /// True for the uniform (single global k) policy.
    pub fn is_uniform(&self) -> bool {
        matches!(self, KPolicy::Uniform(_))
    }
}

/// Why a clustering request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// The host's connected component in the remaining WPG has fewer than k
    /// users — the "disconnected problem" of paper Fig. 5: no algorithm can
    /// reach k-anonymity for this host.
    ComponentTooSmall { reachable: usize },
    /// A peer required by the protocol never answered (crashed or all
    /// retransmissions lost). Only produced by fallible transports.
    PeerUnreachable { peer: UserId },
    /// The adjacency gathered from peers is internally inconsistent at
    /// `user` — e.g. a member reports an edge its endpoint denies, or the
    /// final partition fails to cover the host. Impossible over an honest
    /// in-memory graph; only produced when a lying or corrupting transport
    /// feeds the algorithm contradictory views.
    Inconsistent { user: UserId },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ComponentTooSmall { reachable } => write!(
                f,
                "host's component has only {reachable} reachable users, below the anonymity level"
            ),
            ClusterError::PeerUnreachable { peer } => {
                write!(f, "peer {peer} is unreachable")
            }
            ClusterError::Inconsistent { user } => {
                write!(f, "peer-reported adjacency is inconsistent at user {user}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}
