//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's §VI (see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for recorded outcomes).
//!
//! Each `src/bin/exp_*.rs` binary prints the paper-matching series as an
//! aligned table on stdout and, when `NELA_RESULTS_DIR` is set, also writes
//! machine-readable JSON there (consumed when updating `EXPERIMENTS.md`).
//!
//! Scaling: the full paper population (104,770 users) is expensive to sweep
//! repeatedly; by default experiments run a proportionally scaled system
//! (`NELA_USERS`, default 20,000) with δ and S adjusted to preserve the WPG
//! density and the request fraction. Run with `NELA_USERS=104770` for the
//! full-size reproduction.

use nela::{Params, System};
use serde::Serialize;

/// Experiment-wide configuration from the environment.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Population size (`NELA_USERS`, default 20,000).
    pub users: usize,
    /// Directory for JSON result dumps (`NELA_RESULTS_DIR`, optional).
    pub results_dir: Option<std::path::PathBuf>,
}

impl ExpConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let users = std::env::var("NELA_USERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        let results_dir = std::env::var_os("NELA_RESULTS_DIR").map(Into::into);
        ExpConfig { users, results_dir }
    }

    /// Baseline parameters at this scale (Table I, proportionally scaled).
    pub fn params(&self) -> Params {
        Params::scaled(self.users)
    }

    /// Builds a system, echoing its shape.
    pub fn build(&self, params: &Params) -> System {
        eprintln!(
            "[build] {} users, δ={:.2e}, M={}, k={} ...",
            params.n_users, params.delta, params.max_peers, params.k
        );
        let system = System::build(params);
        eprintln!(
            "[build] WPG: {} edges, avg degree {:.2}",
            system.wpg.m(),
            system.avg_degree()
        );
        system
    }

    /// Writes a JSON result dump when `NELA_RESULTS_DIR` is set.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) {
        let Some(dir) = &self.results_dir else {
            return;
        };
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).expect("write results");
        eprintln!("[results] wrote {}", path.display());
    }
}

/// Prints an aligned table: a title line, a header row, then rows of
/// preformatted cells.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float in short scientific or fixed form for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.2}")
    }
}
