//! Fig. 12 — performance under various numbers of requesting users S.
//!
//! Sweeps the workload size (the paper uses S ∈ {1000, 2000, 4000, 8000} of
//! 104,770 users; here S scales with the population so the request
//! *fraction* matches) and reports communication cost (Fig. 12(a)) and
//! cloaked-region size (Fig. 12(b)). The expected shapes: both
//! t-connectivity variants amortize (cost falls with S) while kNN stays
//! low-and-flat in cost but degrades in region size; t-Conn's region size is
//! flat — the observable face of cluster-isolation.

use nela::cluster::knn::TieBreak;
use nela::metrics::run_workload;
use nela::WorkloadStats;
use nela::{BoundingAlgo, ClusteringAlgo};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    s: usize,
    tconn_cost: f64,
    knn_cost: f64,
    central_cost: f64,
    tconn_area: f64,
    knn_area: f64,
    central_area: f64,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let params = cfg.params();
    let system = cfg.build(&params);
    // Paper S values scaled by population (104770 → n_users).
    let scale = params.n_users as f64 / 104_770.0;
    let s_values: Vec<usize> = [1000usize, 2000, 4000, 8000]
        .iter()
        .map(|&s| ((s as f64 * scale) as usize).max(10))
        .collect();

    let mut rows = Vec::new();
    for &s in &s_values {
        let hosts = system.host_sequence(s, 1);
        let run = |algo| run_workload(&system, algo, BoundingAlgo::Optimal, &hosts);
        let tconn = run(ClusteringAlgo::TConnDistributed);
        let knn = run(ClusteringAlgo::Knn(TieBreak::Id));
        let central = run(ClusteringAlgo::TConnCentralized);
        let cost = |st: &WorkloadStats| st.avg_clustering_messages.expect("workload served");
        let area = |st: &WorkloadStats| st.avg_cloaked_area.expect("workload served");
        rows.push(Row {
            s,
            tconn_cost: cost(&tconn),
            knn_cost: cost(&knn),
            central_cost: cost(&central),
            tconn_area: area(&tconn),
            knn_area: area(&knn),
            central_area: area(&central),
        });
    }

    print_table(
        "Fig. 12(a) — avg. communication cost vs. # of requesting users",
        &["S", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.s.to_string(),
                    fmt(r.tconn_cost),
                    fmt(r.knn_cost),
                    fmt(r.central_cost),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Fig. 12(b) — avg. cloaked region size vs. # of requesting users",
        &["S", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.s.to_string(),
                    fmt(r.tconn_area),
                    fmt(r.knn_area),
                    fmt(r.central_area),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("fig12", &rows);
}
