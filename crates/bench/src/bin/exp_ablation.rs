//! Ablation: the two readings of Algorithm 1 (see `DESIGN.md`, fidelity
//! decision #1) and the two N-bounding optimizers (Equation 5 approximation
//! vs. the exact dynamic program of Equation 3).
//!
//! Quantifies (a) the single-linkage chaining pathology that rules out the
//! literal pseudocode reading on rank-weighted WPGs, and (b) how close the
//! paper's CPU-cheap increment approximation is to the exact optimum.

use nela::bounding::cost::{AreaCost, RequestCost};
use nela::bounding::distribution::{ExcessDistribution, Uniform};
use nela::bounding::nbound::{exact_dp_increment, n_bounding_increment};
use nela::cluster::centralized::{centralized_k_clustering, single_linkage_k_clustering};
use nela::{Params, System};
use nela_bench::{fmt, print_table, ExpConfig};
use nela_geo::Rect;
use serde::Serialize;

#[derive(Serialize)]
struct ClusteringRow {
    algo: String,
    clusters: usize,
    size_p50: usize,
    size_p90: usize,
    size_max: usize,
    area_mean: f64,
    area_p90: f64,
}

fn clustering_row(
    name: &str,
    system: &System,
    r: &nela::cluster::GlobalClustering,
) -> ClusteringRow {
    let mut sizes: Vec<usize> = r.clusters.iter().map(|c| c.len()).collect();
    sizes.sort_unstable();
    let mut areas: Vec<f64> = r
        .clusters
        .iter()
        .map(|c| {
            let pts: Vec<_> = c
                .members
                .iter()
                .map(|&m| system.points[m as usize])
                .collect();
            Rect::bounding(&pts).expect("non-empty").area()
        })
        .collect();
    areas.sort_by(f64::total_cmp);
    let n = sizes.len();
    ClusteringRow {
        algo: name.to_string(),
        clusters: n,
        size_p50: sizes[n / 2],
        size_p90: sizes[n * 9 / 10],
        size_max: sizes[n - 1],
        area_mean: areas.iter().sum::<f64>() / n as f64,
        area_p90: areas[n * 9 / 10],
    }
}

fn main() {
    let cfg = ExpConfig::from_env();
    let params = Params {
        k: 10,
        ..cfg.params()
    };
    let system = cfg.build(&params);

    // ---- Part A: Algorithm 1 readings.
    let level = centralized_k_clustering(&system.wpg, params.k);
    let single = single_linkage_k_clustering(&system.wpg, params.k);
    let rows = vec![
        clustering_row("level-based (+packing)", &system, &level),
        clustering_row("single-linkage (literal)", &system, &single),
    ];
    print_table(
        "Ablation A — Algorithm 1 readings on the rank-weighted WPG (k = 10)",
        &[
            "algorithm",
            "clusters",
            "size p50",
            "p90",
            "max",
            "area mean",
            "area p90",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.clusters.to_string(),
                    r.size_p50.to_string(),
                    r.size_p90.to_string(),
                    r.size_max.to_string(),
                    fmt(r.area_mean),
                    fmt(r.area_p90),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("ablation_clustering", &rows);

    // ---- Part B: N-bounding optimizers.
    #[derive(Serialize)]
    struct BoundRow {
        n: usize,
        approx_x: f64,
        exact_x: f64,
        approx_cost: f64,
        exact_cost: f64,
        overhead_pct: f64,
    }
    let dist = Uniform::new(10.0 / params.n_users as f64);
    let cost = AreaCost {
        cr: params.cr * params.n_users as f64,
    };
    let dp = exact_dp_increment(20, &dist, &cost, params.cb);
    let eval = |x: f64, n: usize| -> f64 {
        // Expected cost of taking increment x in state n and then playing
        // optimally (the exact DP's continuation values) — isolates the
        // quality of the first-step choice.
        let p = dist.cdf(x);
        let q = 1.0 - p;
        let qn = q.powi(n as i32);
        let mut expect = 0.0;
        let mut term = n as f64 * q * p.powi(n as i32 - 1);
        for i in 1..n {
            expect += term * dp.cost[i];
            term *= (n - i) as f64 / (i + 1) as f64 * q / p.max(1e-300);
        }
        (n as f64 * params.cb + cost.r(x) + expect) / (1.0 - qn)
    };
    let mut brows = Vec::new();
    for n in [2usize, 5, 10, 20] {
        let approx_x = n_bounding_increment(n, &dist, &cost, params.cb);
        let exact_x = dp.increment[n];
        let approx_cost = eval(approx_x, n);
        let exact_cost = dp.cost[n];
        brows.push(BoundRow {
            n,
            approx_x,
            exact_x,
            approx_cost,
            exact_cost,
            overhead_pct: 100.0 * (approx_cost / exact_cost - 1.0),
        });
    }
    print_table(
        "Ablation B — Eq. 5 approximation vs. exact DP (Eq. 3)",
        &[
            "N",
            "approx x",
            "exact x",
            "approx cost",
            "exact cost",
            "overhead %",
        ],
        &brows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    fmt(r.approx_x),
                    fmt(r.exact_x),
                    fmt(r.approx_cost),
                    fmt(r.exact_cost),
                    fmt(r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("ablation_bounding", &brows);
}
