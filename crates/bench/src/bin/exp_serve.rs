//! End-to-end serving benchmark: sustained throughput and per-stage latency
//! of the anonymized LBS serving subsystem (`nela-serve`) under open-loop
//! Poisson load.
//!
//! Full mode builds one system (`NELA_USERS`, default 20,000), then sweeps
//! query type ∈ {range, krnn} × workers ∈ {1, 2, 4, 8} × offered load,
//! running a fresh serving session per cell. Every session drives each
//! admitted request through the whole pipeline — cluster + secure bounding,
//! cloaked query at the LBS, client refinement — and the report carries
//! exact per-stage p50/p95/p99 plus backpressure accounting. Results go to
//! `BENCH_serve.json` at the repository root.
//!
//! `--smoke` runs a small population and exits non-zero unless (a) two
//! same-seed single-worker sessions replay bit-identically (served/shed
//! counts and the per-request answer digest), and (b) a 2-worker session
//! with covering queue capacity serves requests with zero shed — the CI
//! guard for the serving determinism and liveness contracts.
//!
//! Environment: `NELA_USERS`, `NELA_RESULTS_DIR` (optional JSON dump).

use nela_bench::{fmt, print_table, ExpConfig};
use nela_serve::{run_with_system, QueryMix, ServeConfig, ServeReport};
use serde::Serialize;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Offered loads swept per (query, workers) cell, in requests per second.
const RATES: [f64; 2] = [500.0, 2_000.0];
/// Requests per serving session (each cell is one bounded session).
const REQUESTS: usize = 400;
/// Range-query radius (unit square) and kRNN size for the workload.
const RADIUS: f64 = 0.02;
const K: usize = 5;

#[derive(Debug, Clone, Serialize)]
struct Row {
    query: String,
    report: ServeReport,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Logical CPUs available (sustained throughput needs real cores).
    cores: usize,
    population: usize,
    rows: Vec<Row>,
}

fn cell_config(query: QueryMix, workers: usize, rate: f64) -> ServeConfig {
    ServeConfig {
        requests: REQUESTS,
        rate,
        workers,
        queue_capacity: 1_024,
        query,
        seed: 42,
        ..ServeConfig::default()
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn smoke() -> i32 {
    let cfg = ExpConfig {
        users: 2_500,
        results_dir: None,
    };
    let system = cfg.build(&cfg.params());
    let replay_cfg = ServeConfig {
        requests: 60,
        rate: 20_000.0,
        workers: 1,
        queue_capacity: 128,
        seed: 9,
        query: QueryMix::Mixed {
            radius: RADIUS,
            k: K,
            range_frac: 0.5,
        },
        ..ServeConfig::default()
    };
    eprintln!("[smoke] replay: two single-worker sessions, same seed");
    let a = run_with_system(&system, &replay_cfg).expect("valid config");
    let b = run_with_system(&system, &replay_cfg).expect("valid config");
    if (a.served, a.shed, a.failed, a.expired) != (b.served, b.shed, b.failed, b.expired) {
        eprintln!(
            "[smoke] FAIL: outcome counts diverged across replays \
             ({}/{}/{}/{} vs {}/{}/{}/{})",
            a.served, a.shed, a.failed, a.expired, b.served, b.shed, b.failed, b.expired
        );
        return 1;
    }
    if a.answers_digest != b.answers_digest {
        eprintln!(
            "[smoke] FAIL: answer digests diverged across replays \
             ({:#x} vs {:#x})",
            a.answers_digest, b.answers_digest
        );
        return 1;
    }
    if a.served == 0 {
        eprintln!("[smoke] FAIL: single-worker session served nothing");
        return 1;
    }

    eprintln!("[smoke] liveness: 2 workers, covering queue capacity");
    let pool_cfg = ServeConfig {
        workers: 2,
        ..replay_cfg
    };
    let pooled = run_with_system(&system, &pool_cfg).expect("valid config");
    if pooled.served == 0 {
        eprintln!("[smoke] FAIL: 2-worker session served nothing");
        return 1;
    }
    if pooled.shed != 0 {
        eprintln!(
            "[smoke] FAIL: shed {} requests with capacity covering the whole schedule",
            pooled.shed
        );
        return 1;
    }
    if pooled.served + pooled.failed + pooled.expired != pooled.admitted {
        eprintln!("[smoke] FAIL: admitted requests unaccounted for");
        return 1;
    }
    eprintln!(
        "[smoke] OK: replay identical (digest {:#x}), {} served across both checks",
        a.answers_digest,
        a.served + pooled.served
    );
    0
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let cfg = ExpConfig::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let system = cfg.build(&cfg.params());
    let mut rows = Vec::new();
    for (label, query) in [
        ("range", QueryMix::Range { radius: RADIUS }),
        ("krnn", QueryMix::Knn { k: K }),
    ] {
        for workers in WORKERS {
            for rate in RATES {
                eprintln!("[serve] query = {label}, workers = {workers}, rate = {rate} req/s");
                let report = run_with_system(&system, &cell_config(query, workers, rate))
                    .expect("cell config is valid");
                rows.push(Row {
                    query: label.to_string(),
                    report,
                });
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                r.report.workers.to_string(),
                fmt(r.report.offered_rps),
                fmt(r.report.sustained_rps),
                format!("{}/{}", r.report.served, r.report.requests),
                r.report.shed.to_string(),
                fmt(ms(r.report.e2e.p50_ns)),
                fmt(ms(r.report.e2e.p95_ns)),
                fmt(ms(r.report.e2e.p99_ns)),
                fmt(ms(r.report.cloak.p50_ns)),
                fmt(ms(r.report.lbs.p50_ns)),
                fmt(ms(r.report.refine.p50_ns)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Serving under open-loop load, {} users ({cores} cores available)",
            system.points.len()
        ),
        &[
            "query",
            "workers",
            "offered/s",
            "sustained/s",
            "served",
            "shed",
            "e2e p50 ms",
            "e2e p95 ms",
            "e2e p99 ms",
            "cloak p50",
            "lbs p50",
            "refine p50",
        ],
        &table,
    );

    let report = Report {
        cores,
        population: system.points.len(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&root, &json).expect("write BENCH_serve.json");
    eprintln!("[results] wrote {}", root.display());
    cfg.write_json("exp_serve", &report);
}
