//! End-to-end serving benchmark: sustained throughput and per-stage latency
//! of the anonymized LBS serving subsystem (`nela-serve`) under open-loop
//! Poisson load.
//!
//! Full mode builds one system (`NELA_USERS`, default 20,000), then runs
//! four sections into `BENCH_serve.json` at the repository root:
//!
//! 1. **Baseline sweep** — query type ∈ {range, krnn} × workers ∈
//!    {1, 2, 4, 8} × offered load, a fresh in-process serving session per
//!    cell, exact per-stage p50/p95/p99 plus backpressure accounting.
//! 2. **Netsim transport** — the same serving loop with both protocol
//!    phases carried by the simulated radio (5% per-transmission loss):
//!    per-session RPC retransmit/timeout totals and the virtual time the
//!    requests spent on the air.
//! 3. **Carry-over chain** — three sessions chained through
//!    [`nela_serve::run_session`] checkpoints against a cold baseline:
//!    the region-reuse rate each session starts with.
//! 4. **Saturation ramp** — per worker count, the offered rate doubles
//!    until the session sheds *and* expires requests (small queue, 5 ms
//!    deadline): the shed/latency knee of the service.
//!
//! `--smoke` runs a small population and exits non-zero unless (a) two
//! same-seed single-worker sessions replay bit-identically — in-process
//! *and* over a lossy netsim transport, (b) a 2-worker session with
//! covering queue capacity serves requests with zero shed, (c) the
//! shedding accounting identities hold, and (d) a carried checkpoint lifts
//! the reuse rate over a cold start — the CI guard for the serving
//! determinism, liveness, and carry-over contracts.
//!
//! Environment: `NELA_USERS`, `NELA_RESULTS_DIR` (optional JSON dump).

use nela::netsim::NetworkConfig;
use nela_bench::{fmt, print_table, ExpConfig};
use nela_serve::{run_session, run_with_system, QueryMix, ServeConfig, ServeReport, Transport};
use serde::Serialize;
use std::time::Duration;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Offered loads swept per (query, workers) cell, in requests per second.
const RATES: [f64; 2] = [500.0, 2_000.0];
/// Requests per serving session (each cell is one bounded session).
const REQUESTS: usize = 400;
/// Range-query radius (unit square) and kRNN size for the workload.
const RADIUS: f64 = 0.02;
const K: usize = 5;
/// Per-transmission loss of the netsim section's radio.
const NET_LOSS: f64 = 0.05;
/// Saturation ramp: queue depth, per-request deadline, and the rate ladder
/// bounds (the rate doubles until the knee or the cap).
const SAT_QUEUE: usize = 64;
const SAT_DEADLINE: Duration = Duration::from_millis(5);
const SAT_START_RATE: f64 = 1_000.0;
const SAT_MAX_RATE: f64 = 1_024_000.0;

#[derive(Debug, Clone, Serialize)]
struct Row {
    query: String,
    report: ServeReport,
}

/// One session of the carry-over chain (or its cold baseline).
#[derive(Debug, Clone, Serialize)]
struct CarryRow {
    /// Position in the chain (0 = first, cold by construction).
    session: usize,
    /// `"cold"` or `"carried"` — whether a prior checkpoint seeded it.
    mode: String,
    carried_clusters: usize,
    served: usize,
    reused: usize,
    reuse_rate: Option<f64>,
}

/// One rung of the saturation ramp.
#[derive(Debug, Clone, Serialize)]
struct SatRow {
    workers: usize,
    offered_rps: f64,
    sustained_rps: f64,
    served: usize,
    shed: usize,
    expired: usize,
    e2e_p50_ms: Option<f64>,
    e2e_p99_ms: Option<f64>,
    /// True on the rung where the service first sheds and expires — the
    /// knee this ramp exists to find.
    at_knee: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Logical CPUs available (sustained throughput needs real cores).
    cores: usize,
    population: usize,
    rows: Vec<Row>,
    netsim_rows: Vec<Row>,
    carry_over: Vec<CarryRow>,
    saturation: Vec<SatRow>,
}

fn cell_config(query: QueryMix, workers: usize, rate: f64) -> ServeConfig {
    ServeConfig {
        requests: REQUESTS,
        rate,
        workers,
        queue_capacity: 1_024,
        query,
        seed: 42,
        ..ServeConfig::default()
    }
}

/// Milliseconds of an optional nanosecond percentile, `None` when the stage
/// recorded no samples.
fn ms(ns: Option<u64>) -> Option<f64> {
    ns.map(|n| n as f64 / 1e6)
}

/// Table cell for an optional millisecond value (`n/a` when absent).
fn cell(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), fmt)
}

fn smoke() -> i32 {
    let cfg = ExpConfig {
        users: 2_500,
        results_dir: None,
    };
    let system = cfg.build(&cfg.params());
    let replay_cfg = ServeConfig {
        requests: 60,
        rate: 20_000.0,
        workers: 1,
        queue_capacity: 128,
        seed: 9,
        query: QueryMix::Mixed {
            radius: RADIUS,
            k: K,
            range_frac: 0.5,
        },
        ..ServeConfig::default()
    };
    eprintln!("[smoke] replay: two single-worker sessions, same seed");
    let a = run_with_system(&system, &replay_cfg).expect("valid config");
    let b = run_with_system(&system, &replay_cfg).expect("valid config");
    if (a.served, a.shed, a.failed, a.expired) != (b.served, b.shed, b.failed, b.expired) {
        eprintln!(
            "[smoke] FAIL: outcome counts diverged across replays \
             ({}/{}/{}/{} vs {}/{}/{}/{})",
            a.served, a.shed, a.failed, a.expired, b.served, b.shed, b.failed, b.expired
        );
        return 1;
    }
    if a.answers_digest != b.answers_digest {
        eprintln!(
            "[smoke] FAIL: answer digests diverged across replays \
             ({:#x} vs {:#x})",
            a.answers_digest, b.answers_digest
        );
        return 1;
    }
    if a.served == 0 {
        eprintln!("[smoke] FAIL: single-worker session served nothing");
        return 1;
    }

    eprintln!("[smoke] netsim replay: lossy transport, same seed twice");
    let net_cfg = ServeConfig {
        transport: Transport::Netsim(NetworkConfig {
            loss: NET_LOSS,
            seed: 7,
            ..NetworkConfig::default()
        }),
        ..replay_cfg.clone()
    };
    let na = run_with_system(&system, &net_cfg).expect("valid config");
    let nb = run_with_system(&system, &net_cfg).expect("valid config");
    if na.answers_digest != nb.answers_digest || (na.served, na.failed) != (nb.served, nb.failed) {
        eprintln!("[smoke] FAIL: netsim replay diverged at a fixed seed");
        return 1;
    }
    let net_a = na.net.clone().expect("netsim totals");
    let net_b = nb.net.clone().expect("netsim totals");
    if (net_a.transmissions, net_a.retransmits, net_a.timeouts)
        != (net_b.transmissions, net_b.retransmits, net_b.timeouts)
    {
        eprintln!("[smoke] FAIL: netsim network accounting diverged across replays");
        return 1;
    }
    if net_a.transmissions == 0 || net_a.retransmits == 0 {
        eprintln!(
            "[smoke] FAIL: lossy netsim session recorded no traffic/retransmits \
             ({} transmissions, {} retransmits)",
            net_a.transmissions, net_a.retransmits
        );
        return 1;
    }

    eprintln!("[smoke] liveness: 2 workers, covering queue capacity");
    let pool_cfg = ServeConfig {
        workers: 2,
        ..replay_cfg.clone()
    };
    let pooled = run_with_system(&system, &pool_cfg).expect("valid config");
    if pooled.served == 0 {
        eprintln!("[smoke] FAIL: 2-worker session served nothing");
        return 1;
    }
    if pooled.shed != 0 {
        eprintln!(
            "[smoke] FAIL: shed {} requests with capacity covering the whole schedule",
            pooled.shed
        );
        return 1;
    }
    for (label, r) in [("replay", &a), ("netsim", &na), ("pooled", &pooled)] {
        if r.admitted + r.shed != r.requests || r.served + r.failed + r.expired != r.admitted {
            eprintln!("[smoke] FAIL: {label} session broke the accounting identities");
            return 1;
        }
    }

    eprintln!("[smoke] carry-over: a checkpoint must lift the reuse rate");
    let chain_cfg = ServeConfig {
        requests: 200,
        ..replay_cfg
    };
    let first = run_session(&system, &chain_cfg, None).expect("valid config");
    let cold = run_session(&system, &chain_cfg, None).expect("valid config");
    let carried = run_session(&system, &chain_cfg, Some(first.checkpoint)).expect("valid config");
    if carried.report.carried_clusters == 0 {
        eprintln!("[smoke] FAIL: nothing carried over an unmoved population");
        return 1;
    }
    if carried.report.reused <= cold.report.reused {
        eprintln!(
            "[smoke] FAIL: carry-over did not lift reuse ({} vs cold {})",
            carried.report.reused, cold.report.reused
        );
        return 1;
    }
    eprintln!(
        "[smoke] OK: replay identical (digest {:#x}), netsim identical \
         ({} retransmits), carry-over reuse {} > cold {}",
        a.answers_digest, net_a.retransmits, carried.report.reused, cold.report.reused
    );
    0
}

/// Section 3: three chained sessions vs a cold baseline, same config.
fn carry_over_chain(system: &nela::System) -> Vec<CarryRow> {
    let cfg = cell_config(QueryMix::Knn { k: K }, 2, 2_000.0);
    let row = |session: usize, mode: &str, r: &ServeReport| CarryRow {
        session,
        mode: mode.to_string(),
        carried_clusters: r.carried_clusters,
        served: r.served,
        reused: r.reused,
        reuse_rate: r.reuse_rate,
    };
    let mut rows = Vec::new();
    // Cold baseline: what a session starting from nothing reuses.
    let cold = run_session(system, &cfg, None).expect("valid config");
    rows.push(row(0, "cold", &cold.report));
    // The chain: each session resumes from its predecessor's checkpoint.
    let mut checkpoint = None;
    for session in 0..3 {
        eprintln!("[carry] chained session {session}");
        let outcome = run_session(system, &cfg, checkpoint).expect("valid config");
        rows.push(row(
            session,
            if session == 0 { "cold" } else { "carried" },
            &outcome.report,
        ));
        checkpoint = Some(outcome.checkpoint);
    }
    rows
}

/// Section 4: double the offered rate until the service sheds and expires.
fn saturation_ramp(system: &nela::System) -> Vec<SatRow> {
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut rate = SAT_START_RATE;
        loop {
            eprintln!("[saturate] workers = {workers}, rate = {rate} req/s");
            let cfg = ServeConfig {
                requests: 300,
                rate,
                workers,
                queue_capacity: SAT_QUEUE,
                deadline: Some(SAT_DEADLINE),
                query: QueryMix::Knn { k: K },
                seed: 42,
                ..ServeConfig::default()
            };
            let r = run_with_system(system, &cfg).expect("valid config");
            let at_knee = r.shed > 0 && r.expired > 0;
            rows.push(SatRow {
                workers,
                offered_rps: rate,
                sustained_rps: r.sustained_rps,
                served: r.served,
                shed: r.shed,
                expired: r.expired,
                e2e_p50_ms: ms(r.e2e.p50_ns),
                e2e_p99_ms: ms(r.e2e.p99_ns),
                at_knee,
            });
            if at_knee || rate >= SAT_MAX_RATE {
                break;
            }
            rate *= 2.0;
        }
    }
    rows
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let cfg = ExpConfig::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let system = cfg.build(&cfg.params());
    let mut rows = Vec::new();
    for (label, query) in [
        ("range", QueryMix::Range { radius: RADIUS }),
        ("krnn", QueryMix::Knn { k: K }),
    ] {
        for workers in WORKERS {
            for rate in RATES {
                eprintln!("[serve] query = {label}, workers = {workers}, rate = {rate} req/s");
                let report = run_with_system(&system, &cell_config(query, workers, rate))
                    .expect("cell config is valid");
                rows.push(Row {
                    query: label.to_string(),
                    report,
                });
            }
        }
    }

    // Netsim transport: both protocol phases over a 5%-loss radio.
    let mut netsim_rows = Vec::new();
    for workers in [1usize, 2] {
        eprintln!("[netsim] workers = {workers}, loss = {NET_LOSS}");
        let config = ServeConfig {
            transport: Transport::Netsim(NetworkConfig {
                loss: NET_LOSS,
                seed: 7,
                ..NetworkConfig::default()
            }),
            ..cell_config(QueryMix::Knn { k: K }, workers, 500.0)
        };
        let report = run_with_system(&system, &config).expect("cell config is valid");
        netsim_rows.push(Row {
            query: "krnn".to_string(),
            report,
        });
    }

    let carry_over = carry_over_chain(&system);
    let saturation = saturation_ramp(&system);

    let table: Vec<Vec<String>> = rows
        .iter()
        .chain(netsim_rows.iter())
        .map(|r| {
            vec![
                format!("{}/{}", r.query, r.report.transport),
                r.report.workers.to_string(),
                fmt(r.report.offered_rps),
                fmt(r.report.sustained_rps),
                format!("{}/{}", r.report.served, r.report.requests),
                r.report.shed.to_string(),
                cell(ms(r.report.e2e.p50_ns)),
                cell(ms(r.report.e2e.p95_ns)),
                cell(ms(r.report.e2e.p99_ns)),
                cell(ms(r.report.cloak.p50_ns)),
                cell(ms(r.report.lbs.p50_ns)),
                cell(ms(r.report.refine.p50_ns)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Serving under open-loop load, {} users ({cores} cores available)",
            system.points.len()
        ),
        &[
            "query",
            "workers",
            "offered/s",
            "sustained/s",
            "served",
            "shed",
            "e2e p50 ms",
            "e2e p95 ms",
            "e2e p99 ms",
            "cloak p50",
            "lbs p50",
            "refine p50",
        ],
        &table,
    );

    let carry_table: Vec<Vec<String>> = carry_over
        .iter()
        .map(|c| {
            vec![
                c.session.to_string(),
                c.mode.clone(),
                c.carried_clusters.to_string(),
                c.served.to_string(),
                c.reused.to_string(),
                cell(c.reuse_rate),
            ]
        })
        .collect();
    print_table(
        "Cross-session cluster carry-over (chained checkpoints vs cold)",
        &[
            "session",
            "mode",
            "carried",
            "served",
            "reused",
            "reuse rate",
        ],
        &carry_table,
    );

    let sat_table: Vec<Vec<String>> = saturation
        .iter()
        .map(|s| {
            vec![
                s.workers.to_string(),
                fmt(s.offered_rps),
                fmt(s.sustained_rps),
                s.served.to_string(),
                s.shed.to_string(),
                s.expired.to_string(),
                cell(s.e2e_p50_ms),
                cell(s.e2e_p99_ms),
                if s.at_knee { "<- knee" } else { "" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Saturation ramp (rate doubles until shed > 0 and expired > 0)",
        &[
            "workers",
            "offered/s",
            "sustained/s",
            "served",
            "shed",
            "expired",
            "e2e p50 ms",
            "e2e p99 ms",
            "",
        ],
        &sat_table,
    );

    let report = Report {
        cores,
        population: system.points.len(),
        rows,
        netsim_rows,
        carry_over,
        saturation,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&root, &json).expect("write BENCH_serve.json");
    eprintln!("[results] wrote {}", root.display());
    cfg.write_json("exp_serve", &report);
}
