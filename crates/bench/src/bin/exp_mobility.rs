//! Continuous cloaking under mobility (beyond the paper's static snapshot).
//!
//! **Part A — continuous pipeline.** Runs `nela-mobility`: the population
//! moves under a seeded waypoint/Gauss–Markov/stationary mixture, the WPG is
//! maintained incrementally over the region-sharded grid, broken clusters
//! are retired by the epoch audit, and a Poisson stream of requests is
//! served with the cluster registry carried across ticks. Reports per-tick
//! and aggregate cluster-reuse rate, invalidation counts, anonymity
//! validity, and the incremental-vs-rebuild speedup.
//!
//! **Part B — maintenance sweep.** Times one incremental tick (staged moves
//! folded into the sharded grid + dirty-set rescore + in-place graph
//! refill) against a from-scratch `WpgBuilder::build` across populations
//! and move fractions, asserting graph equality outside the timed region
//! every tick. Writes `BENCH_mobility.json` at the repository root.
//!
//! Environment: `NELA_USERS` (Part A population, default 20,000),
//! `NELA_TICKS` (default 25), `NELA_RATE` (requests/tick, default 40),
//! `NELA_STATIONARY` (stationary fraction, default 0.9), `NELA_THREADS`,
//! `NELA_SWEEP_USERS` (comma-separated Part B populations, default
//! `10000,100000`), `NELA_SWEEP_FRACTIONS` (comma-separated move fractions,
//! default `0.05,0.25,0.5,1.0`), `NELA_SWEEP_TICKS` (timed ticks per cell,
//! default 8), `NELA_RESULTS_DIR` (optional JSON dump).
//!
//! Flags: `--metrics` enables the `nela-obs` recorder and writes
//! `BENCH_obs.json`; `--smoke` runs a small CI-sized sweep (equality
//! asserts intact, no files written) and exits.

use nela::{BoundingAlgo, ClusteringAlgo, Params};
use nela_bench::{fmt, print_table, ExpConfig};
use nela_geo::{DatasetSpec, Point};
use nela_mobility::{run_continuous, DriverConfig, MobilityConfig};
use nela_wpg::{IncrementalWpg, InverseDistanceRss, Wpg, WpgBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), fmt)
}

/// One cell of the Part B sweep.
#[derive(Debug, Clone, Serialize)]
struct SweepRow {
    n: usize,
    move_fraction: f64,
    ticks: usize,
    movers_per_tick: usize,
    /// Mean users rescored per tick (dirty-region superset).
    mean_dirty: f64,
    /// Mean users whose rank list actually changed per tick.
    mean_changed: f64,
    mean_incremental_ns: u64,
    mean_rebuild_ns: u64,
    /// `mean_rebuild_ns / mean_incremental_ns`.
    speedup: f64,
    /// Edges in the final maintained graph (equal to the rebuilt graph's —
    /// asserted every tick).
    edges: usize,
}

/// Times `ticks` maintenance rounds at one (n, fraction) cell. Movers are
/// seeded draws; targets drift up to ±2δ (clamped to the unit square), the
/// bounded-speed regime the mobility models produce — far enough to cross
/// grid cells and change neighborhoods, near enough that motion stays
/// local. Every tick asserts the maintained graph equals a rebuild, outside
/// the timed regions.
fn sweep_cell(n: usize, fraction: f64, ticks: usize, seed: u64) -> SweepRow {
    let params = Params::scaled(n);
    let spec = DatasetSpec {
        n,
        seed: params.seed,
        distribution: params.distribution.clone(),
    };
    let points = spec.generate();
    let builder = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss);
    let mut inc = IncrementalWpg::new(builder.clone(), &points);
    let mut reused: Wpg = inc.snapshot();
    let movers = ((n as f64 * fraction) as usize).clamp(1, n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    let drift = 2.0 * params.delta;
    let mut moves: Vec<(u32, Point)> = Vec::with_capacity(movers);
    let (mut inc_ns, mut reb_ns) = (0u64, 0u64);
    let (mut dirty, mut changed) = (0usize, 0usize);
    for _ in 0..ticks {
        moves.clear();
        for _ in 0..movers {
            let id = rng.gen_range(0..n as u32);
            let p = inc.points()[id as usize];
            moves.push((
                id,
                Point::new(
                    (p.x + rng.gen_range(-drift..drift)).clamp(0.0, 1.0),
                    (p.y + rng.gen_range(-drift..drift)).clamp(0.0, 1.0),
                ),
            ));
        }

        let t0 = Instant::now();
        let stats = inc.apply_moves(&moves);
        inc.snapshot_into(&mut reused);
        inc_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let rebuilt = builder.build(inc.points());
        reb_ns += t1.elapsed().as_nanos() as u64;

        assert_eq!(
            reused.m(),
            rebuilt.m(),
            "incremental diverged at n={n} f={fraction}"
        );
        assert!(
            reused.edges().eq(rebuilt.edges()),
            "edge mismatch at n={n} f={fraction}"
        );
        dirty += stats.dirty;
        changed += stats.changed;
    }
    let t = ticks as u64;
    SweepRow {
        n,
        move_fraction: fraction,
        ticks,
        movers_per_tick: movers,
        mean_dirty: dirty as f64 / ticks as f64,
        mean_changed: changed as f64 / ticks as f64,
        mean_incremental_ns: inc_ns / t,
        mean_rebuild_ns: reb_ns / t,
        speedup: (reb_ns / t) as f64 / (inc_ns / t).max(1) as f64,
        edges: reused.m(),
    }
}

fn run_sweep(populations: &[usize], fractions: &[f64], ticks: usize) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &n in populations {
        for &f in fractions {
            eprintln!("[sweep] n={n} fraction={f} ({ticks} ticks)");
            rows.push(sweep_cell(n, f, ticks, 0x5EED_2009 ^ n as u64));
        }
    }
    rows
}

fn print_sweep(rows: &[SweepRow]) {
    print_table(
        "Incremental maintenance vs from-scratch rebuild (per tick)",
        &[
            "users", "moved", "dirty", "changed", "inc ms", "full ms", "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} @{:.0}%", r.n, r.move_fraction * 100.0),
                    r.movers_per_tick.to_string(),
                    fmt(r.mean_dirty),
                    fmt(r.mean_changed),
                    fmt(r.mean_incremental_ns as f64 / 1e6),
                    fmt(r.mean_rebuild_ns as f64 / 1e6),
                    format!("{}x", fmt(r.speedup)),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn smoke() -> i32 {
    // CI-sized: tiny populations, both acceptance fractions, equality
    // asserted inside sweep_cell every tick.
    let rows = run_sweep(&[2_000], &[0.25, 0.5, 1.0], 3);
    print_sweep(&rows);
    println!("\nsmoke OK: {} cells, equality held every tick", rows.len());
    0
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let record_metrics = std::env::args().any(|a| a == "--metrics");
    if record_metrics {
        nela_obs::enable();
    }
    let cfg = ExpConfig::from_env();

    // ---- Part A: the continuous pipeline.
    let params = Params {
        k: 10,
        ..Params::scaled(cfg.users)
    };
    let mobility = MobilityConfig::with_stationary(env_or("NELA_STATIONARY", 0.9));
    let driver = DriverConfig {
        ticks: env_or("NELA_TICKS", 25),
        rate: env_or("NELA_RATE", 40.0),
        seed: 20090329,
        measure_rebuild: true,
        threads: env_or("NELA_THREADS", 1usize),
    };
    eprintln!(
        "[mobility] {} users, {} ticks, λ={}/tick, δ={:.2e}",
        params.n_users, driver.ticks, driver.rate, params.delta
    );

    let summary = run_continuous(
        &params,
        &mobility,
        &driver,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );

    let rows: Vec<Vec<String>> = summary
        .per_tick
        .iter()
        .map(|m| {
            vec![
                m.tick.to_string(),
                m.moved.to_string(),
                m.dirty.to_string(),
                m.changed.to_string(),
                fmt(m.incremental_ns as f64 / 1e6),
                fmt(m.rebuild_ns as f64 / 1e6),
                m.invalidated.to_string(),
                m.active_clusters.to_string(),
                m.requests.to_string(),
                m.reused.to_string(),
                m.failed.to_string(),
                m.valid_served.to_string(),
            ]
        })
        .collect();
    print_table(
        "Continuous cloaking under mobility (per tick)",
        &[
            "tick", "moved", "dirty", "chngd", "inc ms", "full ms", "invald", "active", "reqs",
            "reused", "failed", "valid",
        ],
        &rows,
    );

    print_table(
        "Aggregate",
        &[
            "requests",
            "served",
            "reuse rate",
            "validity",
            "invalidated",
            "released",
            "speedup",
        ],
        &[vec![
            summary.requests.to_string(),
            summary.served.to_string(),
            fmt_opt(summary.reuse_rate),
            fmt_opt(summary.validity_rate),
            summary.invalidated.to_string(),
            summary.released.to_string(),
            format!("{}x", fmt_opt(summary.mean_speedup)),
        ]],
    );

    // ---- Part B: incremental-vs-rebuild maintenance sweep.
    let populations: Vec<usize> = std::env::var("NELA_SWEEP_USERS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000]);
    let fractions: Vec<f64> = std::env::var("NELA_SWEEP_FRACTIONS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![0.05, 0.25, 0.5, 1.0]);
    let sweep_ticks = env_or("NELA_SWEEP_TICKS", 8usize);
    let sweep = run_sweep(&populations, &fractions, sweep_ticks);
    print_sweep(&sweep);

    #[derive(Serialize)]
    struct Report {
        continuous: nela_mobility::RunSummary,
        sweep: Vec<SweepRow>,
    }
    let report = Report {
        continuous: summary,
        sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_mobility.json");
    std::fs::write(&root, &json).expect("write BENCH_mobility.json");
    eprintln!("[results] wrote {}", root.display());
    cfg.write_json("exp_mobility", &report);

    if record_metrics {
        let obs_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json");
        std::fs::write(&obs_path, nela_obs::snapshot().to_json()).expect("write BENCH_obs.json");
        eprintln!("[results] wrote {}", obs_path.display());
    }
}
