//! Continuous cloaking under mobility (beyond the paper's static snapshot).
//!
//! Runs the `nela-mobility` pipeline: the population moves under a seeded
//! waypoint/Gauss–Markov/stationary mixture, the WPG is maintained
//! incrementally, broken clusters are retired, and a Poisson stream of
//! requests is served with the cluster registry carried across ticks.
//! Reports per-tick and aggregate cluster-reuse rate, invalidation counts,
//! anonymity validity, and the incremental-vs-rebuild speedup.
//!
//! Environment: `NELA_USERS` (population, default 20,000),
//! `NELA_TICKS` (default 25), `NELA_RATE` (requests/tick, default 40),
//! `NELA_STATIONARY` (stationary fraction, default 0.9 — roughly 10% of
//! devices in motion during any tick), `NELA_RESULTS_DIR` (optional JSON
//! dump).
//!
//! `--metrics` enables the `nela-obs` recorder (per-tick incremental and
//! rebuild timings, engine stage histograms) and writes the snapshot to
//! `BENCH_obs.json` at the repository root.

use nela::{BoundingAlgo, ClusteringAlgo, Params};
use nela_bench::{fmt, print_table, ExpConfig};
use nela_mobility::{run_continuous, DriverConfig, MobilityConfig};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let record_metrics = std::env::args().any(|a| a == "--metrics");
    if record_metrics {
        nela_obs::enable();
    }
    let cfg = ExpConfig::from_env();
    let params = Params {
        k: 10,
        ..Params::scaled(cfg.users)
    };
    let mobility = MobilityConfig::with_stationary(env_or("NELA_STATIONARY", 0.9));
    let driver = DriverConfig {
        ticks: env_or("NELA_TICKS", 25),
        rate: env_or("NELA_RATE", 40.0),
        seed: 20090329,
        measure_rebuild: true,
        threads: env_or("NELA_THREADS", 1usize),
    };
    eprintln!(
        "[mobility] {} users, {} ticks, λ={}/tick, δ={:.2e}",
        params.n_users, driver.ticks, driver.rate, params.delta
    );

    let summary = run_continuous(
        &params,
        &mobility,
        &driver,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );

    let rows: Vec<Vec<String>> = summary
        .per_tick
        .iter()
        .map(|m| {
            vec![
                m.tick.to_string(),
                m.moved.to_string(),
                m.dirty.to_string(),
                fmt(m.incremental_us as f64 / 1000.0),
                fmt(m.rebuild_us as f64 / 1000.0),
                m.invalidated.to_string(),
                m.active_clusters.to_string(),
                m.requests.to_string(),
                m.reused.to_string(),
                m.failed.to_string(),
                m.valid_served.to_string(),
            ]
        })
        .collect();
    print_table(
        "Continuous cloaking under mobility (per tick)",
        &[
            "tick", "moved", "dirty", "inc ms", "full ms", "invald", "active", "reqs", "reused",
            "failed", "valid",
        ],
        &rows,
    );

    print_table(
        "Aggregate",
        &[
            "requests",
            "served",
            "reuse rate",
            "validity",
            "invalidated",
            "released",
            "speedup",
        ],
        &[vec![
            summary.requests.to_string(),
            summary.served.to_string(),
            fmt(summary.reuse_rate),
            fmt(summary.validity_rate),
            summary.invalidated.to_string(),
            summary.released.to_string(),
            format!("{}x", fmt(summary.mean_speedup)),
        ]],
    );

    cfg.write_json("exp_mobility", &summary);

    if record_metrics {
        let obs_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json");
        std::fs::write(&obs_path, nela_obs::snapshot().to_json()).expect("write BENCH_obs.json");
        eprintln!("[results] wrote {}", obs_path.display());
    }
}
