//! Fig. 11 — performance under various anonymity levels k.
//!
//! Sweeps k ∈ {5, 10, 20, 30, 40, 50} at the default topology and reports
//! communication cost (Fig. 11(a)) and cloaked-region size (Fig. 11(b)) for
//! the three clustering algorithms, with optimal bounding.

use nela::cluster::knn::TieBreak;
use nela::metrics::run_workload;
use nela::WorkloadStats;
use nela::{BoundingAlgo, ClusteringAlgo};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    tconn_cost: f64,
    knn_cost: f64,
    central_cost: f64,
    tconn_area: f64,
    knn_area: f64,
    central_area: f64,
    knn_failed: usize,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let base = cfg.params();
    let system = cfg.build(&base);
    let hosts = system.host_sequence(base.requests, 1);

    let mut rows = Vec::new();
    for k in [5usize, 10, 20, 30, 40, 50] {
        // Rebuilding only the parameters — the WPG does not depend on k.
        let mut params = base.clone();
        params.k = k;
        let system_k = nela::System {
            params: params.clone(),
            points: system.points.clone(),
            grid: system.grid.clone(),
            wpg: system.wpg.clone(),
        };
        let run = |algo| run_workload(&system_k, algo, BoundingAlgo::Optimal, &hosts);
        let tconn = run(ClusteringAlgo::TConnDistributed);
        let knn = run(ClusteringAlgo::Knn(TieBreak::Id));
        let central = run(ClusteringAlgo::TConnCentralized);
        let cost = |s: &WorkloadStats| s.avg_clustering_messages.expect("workload served");
        let area = |s: &WorkloadStats| s.avg_cloaked_area.expect("workload served");
        rows.push(Row {
            k,
            tconn_cost: cost(&tconn),
            knn_cost: cost(&knn),
            central_cost: cost(&central),
            tconn_area: area(&tconn),
            knn_area: area(&knn),
            central_area: area(&central),
            knn_failed: knn.failed,
        });
    }

    print_table(
        "Fig. 11(a) — avg. communication cost vs. k",
        &["k", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    fmt(r.tconn_cost),
                    fmt(r.knn_cost),
                    fmt(r.central_cost),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Fig. 11(b) — avg. cloaked region size vs. k",
        &["k", "t-Conn", "kNN", "centralized t-Conn", "kNN/t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    fmt(r.tconn_area),
                    fmt(r.knn_area),
                    fmt(r.central_area),
                    fmt(r.knn_area / r.tconn_area),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("fig11", &rows);
}
