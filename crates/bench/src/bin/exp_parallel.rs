//! Parallel cloaking pipeline: scaling and bit-identity of the threaded
//! build paths (grid fill, WPG construction, connected components, batched
//! request serving) against their serial baselines.
//!
//! Full mode sweeps n ∈ {10k, 50k, 100k} × threads ∈ {1, 2, 4, 8}, checks
//! every parallel result against the single-threaded one, and writes the
//! timing series to `BENCH_parallel.json` at the repository root. Speedups
//! require real cores (the JSON records how many were available); on any
//! machine the bit-identity checks are exact.
//!
//! `--smoke` runs a small population with 2 threads and exits non-zero on
//! any parallel/serial divergence — the CI guard for the determinism
//! contract.
//!
//! `--metrics` additionally enables the `nela-obs` recorder for the whole
//! sweep (plus a lossy-network clustering stage, so the RPC retransmission
//! counters are populated) and writes the snapshot to `BENCH_obs.json` at
//! the repository root.
//!
//! Environment: `NELA_RESULTS_DIR` (optional extra JSON dump location).

use nela::{auto_shard_axis, BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use nela_bench::{fmt, print_table, ExpConfig};
use nela_geo::{DatasetSpec, GridIndex, Point};
use nela_wpg::connectivity::{components_under, components_under_threads, nothing_removed};
use nela_wpg::{Edge, InverseDistanceRss, Wpg, WpgBuilder};
use serde::Serialize;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone, Serialize)]
struct Cell {
    n: usize,
    threads: usize,
    /// Registry shards used by the batch stage (0 when it ran serially).
    shards: usize,
    grid_ms: f64,
    wpg_ms: f64,
    components_ms: f64,
    request_many_ms: f64,
    /// Total over the four stages.
    total_ms: f64,
    /// Speedup of `total_ms` relative to the 1-thread row at the same n.
    speedup: f64,
    /// Every parallel artifact equalled the serial one bit for bit.
    identical: bool,
}

/// One before/after batch-serving measurement: the same 1,000-host batch
/// through the global-mutex baseline (`request_many_locked`) and the
/// sharded registry (`request_many_sharded`).
#[derive(Debug, Clone, Serialize)]
struct BatchCell {
    n: usize,
    threads: usize,
    shards: usize,
    locked_ms: f64,
    sharded_ms: f64,
    /// locked_ms / sharded_ms at the same thread count.
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Logical CPUs available to this run (speedups need > 1).
    cores: usize,
    rows: Vec<Cell>,
    /// Locked-vs-sharded batch serving at the largest n.
    batch: Vec<BatchCell>,
}

fn edges_of(g: &Wpg) -> Vec<Edge> {
    g.edges().collect()
}

/// One (n, threads) measurement; `reference` holds the serial artifacts for
/// the identity check (None when this row *is* the serial row).
#[allow(clippy::type_complexity)]
fn measure(
    points: &[Point],
    params: &Params,
    threads: usize,
    reference: Option<&(Vec<Edge>, Vec<Vec<nela_geo::UserId>>, usize)>,
) -> (Cell, (Vec<Edge>, Vec<Vec<nela_geo::UserId>>, usize)) {
    let n = points.len();
    let t0 = Instant::now();
    let grid = GridIndex::build_threads(points, params.delta, threads);
    let grid_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
        .build_with_index_threads(points, &grid, threads);
    let wpg_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let comps = components_under_threads(&wpg, 3, &nothing_removed, threads);
    let components_ms = t2.elapsed().as_secs_f64() * 1e3;

    // Batched serving over a fixed host sample (scaled with n, capped so the
    // sweep stays tractable at 100k).
    let system = System::with_parts(params.clone(), points.to_vec(), grid, wpg.clone());
    let hosts = system.host_sequence((n / 50).clamp(100, 1_000), 7);
    let t3 = Instant::now();
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let outcomes = engine.request_many(&hosts, threads);
    let request_many_ms = t3.elapsed().as_secs_f64() * 1e3;
    let served = outcomes.iter().filter(|o| o.is_ok()).count();

    let artifacts = (edges_of(&wpg), comps, served);
    // `served` can differ across thread counts only through contention
    // retries; edge lists and components are hard guarantees.
    let identical = reference.map_or(true, |r| r.0 == artifacts.0 && r.1 == artifacts.1);
    let total_ms = grid_ms + wpg_ms + components_ms + request_many_ms;
    (
        Cell {
            n,
            threads,
            shards: if threads <= 1 {
                0
            } else {
                auto_shard_axis(threads).pow(2)
            },
            grid_ms,
            wpg_ms,
            components_ms,
            request_many_ms,
            total_ms,
            speedup: 1.0, // filled in by the caller from the serial row
            identical,
        },
        artifacts,
    )
}

/// Times the same 1,000-host batch through the locked baseline and the
/// sharded path at one thread count.
fn batch_bench(system: &System, threads: usize) -> BatchCell {
    let hosts = system.host_sequence(1_000, 7);
    let t0 = Instant::now();
    let mut locked = CloakingEngine::new(
        system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let served_locked = locked
        .request_many_locked(&hosts, threads)
        .iter()
        .filter(|o| o.is_ok())
        .count();
    let locked_ms = t0.elapsed().as_secs_f64() * 1e3;

    let axis = auto_shard_axis(threads);
    let t1 = Instant::now();
    let mut sharded = CloakingEngine::new(
        system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let served_sharded = sharded
        .request_many_sharded(&hosts, threads, axis)
        .iter()
        .filter(|o| o.is_ok())
        .count();
    let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(
        served_locked > 0 && served_sharded > 0,
        "batch served nothing"
    );
    assert!(
        locked.registry().reciprocity_violation().is_none()
            && sharded.registry().reciprocity_violation().is_none(),
        "batch corrupted a registry at {threads} threads"
    );
    BatchCell {
        n: system.points.len(),
        threads,
        shards: axis * axis,
        locked_ms,
        sharded_ms,
        speedup: locked_ms / sharded_ms,
    }
}

fn population(n: usize) -> (Vec<Point>, Params) {
    let params = Params::scaled(n);
    let points = DatasetSpec {
        n,
        seed: params.seed,
        distribution: params.distribution.clone(),
    }
    .generate();
    (points, params)
}

fn smoke() -> i32 {
    let (points, params) = population(5_000);
    eprintln!("[smoke] 5,000 users, serial vs 2 threads");
    let serial_grid = GridIndex::build(&points, params.delta);
    let serial_wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
        .build_with_index(&points, &serial_grid);
    let serial_comps = components_under(&serial_wpg, 3, &nothing_removed);

    let par_grid = GridIndex::build_threads(&points, params.delta, 2);
    let par_wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
        .build_with_index_threads(&points, &par_grid, 2);
    let par_comps = components_under_threads(&par_wpg, 3, &nothing_removed, 2);

    if edges_of(&serial_wpg) != edges_of(&par_wpg) {
        eprintln!("[smoke] FAIL: parallel WPG edge list diverged from serial");
        return 1;
    }
    if serial_comps != par_comps {
        eprintln!("[smoke] FAIL: parallel components diverged from serial");
        return 1;
    }

    // Batched serving: the single-thread batch must equal the request loop;
    // the 2-thread batch must keep the registry consistent.
    let system = System::with_parts(params.clone(), points, par_grid, par_wpg);
    let hosts = system.host_sequence(100, 7);
    let mut loop_engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let looped: Vec<_> = hosts.iter().map(|&h| loop_engine.request(h)).collect();
    let mut batch_engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let batched = batch_engine.request_many(&hosts, 1);
    for (a, b) in looped.iter().zip(&batched) {
        let same = match (a, b) {
            (Ok(x), Ok(y)) => x.region == y.region && x.reused == y.reused,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !same {
            eprintln!("[smoke] FAIL: single-thread request_many diverged from request loop");
            return 1;
        }
    }
    // The sharded machinery at one worker must also equal the loop, for
    // more than one shard layout.
    for axis in [1usize, 3] {
        let mut sharded_engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        );
        let sharded = sharded_engine.request_many_sharded(&hosts, 1, axis);
        for (a, b) in looped.iter().zip(&sharded) {
            let same = match (a, b) {
                (Ok(x), Ok(y)) => x.region == y.region && x.reused == y.reused,
                (Err(_), Err(_)) => true,
                _ => false,
            };
            if !same {
                eprintln!(
                    "[smoke] FAIL: 1-worker sharded batch (axis {axis}) diverged from request loop"
                );
                return 1;
            }
        }
    }
    let mut par_engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let outcomes = par_engine.request_many(&hosts, 2);
    if outcomes.iter().filter(|o| o.is_ok()).count() == 0 {
        eprintln!("[smoke] FAIL: 2-thread batch served nothing");
        return 1;
    }
    if par_engine.registry().reciprocity_violation().is_some() {
        eprintln!("[smoke] FAIL: 2-thread batch corrupted the registry");
        return 1;
    }
    eprintln!("[smoke] OK: parallel pipeline is bit-identical to serial");
    0
}

/// Runs the distributed clustering protocol over a lossy simulated radio so
/// the metrics snapshot also carries the `net.rpc.*` retransmission and
/// timeout counters alongside the pipeline stage histograms.
fn netsim_stage() {
    use nela::cluster::distributed::distributed_k_clustering_with;
    use nela::netsim::network::{Network, NetworkConfig};
    use nela::netsim::proto::SimFetch;

    let (points, params) = population(2_000);
    let grid = GridIndex::build(&points, params.delta);
    let wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
        .build_with_index(&points, &grid);
    let system = System::with_parts(params.clone(), points, grid, wpg);
    for (i, &host) in system.host_sequence(40, 7).iter().enumerate() {
        let mut net = Network::new(NetworkConfig {
            loss: 0.3,
            max_retries: 5,
            seed: i as u64,
            ..Default::default()
        })
        .expect("config is valid");
        let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
        let _ = distributed_k_clustering_with(&mut fetch, host, params.k, &|_| false);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    // NOTE: metrics are enabled only *after* the timed sweep below —
    // enabling here used to make every span in the hot loops record real
    // histogram samples during `measure()`, so the wall times written to
    // BENCH_parallel.json depended on whether `--metrics` was passed. The
    // sweep now always runs uninstrumented; `--metrics` replays an
    // instrumented (untimed) pipeline afterwards to populate the snapshot.
    let record_metrics = std::env::args().any(|a| a == "--metrics");
    let cfg = ExpConfig::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut rows = Vec::new();
    let mut batch = Vec::new();
    for n in [10_000usize, 50_000, 100_000] {
        let (points, params) = population(n);
        eprintln!("[parallel] n = {n}, sweeping {THREADS:?} threads");
        let mut reference = None;
        let mut serial_total = 0.0;
        for threads in THREADS {
            let (mut cell, artifacts) = measure(&points, &params, threads, reference.as_ref());
            if threads == 1 {
                serial_total = cell.total_ms;
                reference = Some(artifacts);
            }
            cell.speedup = serial_total / cell.total_ms;
            assert!(
                cell.identical,
                "parallel output diverged from serial at n = {n}, {threads} threads"
            );
            rows.push(cell);
        }
        // Locked-vs-sharded batch serving at the largest population: the
        // before/after for the sharded-registry change.
        if n == 100_000 {
            eprintln!("[parallel] n = {n}, locked vs sharded batch serving");
            let grid = GridIndex::build_threads(&points, params.delta, cores);
            let wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
                .build_with_index_threads(&points, &grid, cores);
            let system = System::with_parts(params.clone(), points.clone(), grid, wpg);
            for threads in THREADS {
                batch.push(batch_bench(&system, threads));
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                c.threads.to_string(),
                c.shards.to_string(),
                fmt(c.grid_ms),
                fmt(c.wpg_ms),
                fmt(c.components_ms),
                fmt(c.request_many_ms),
                fmt(c.total_ms),
                format!("{}x", fmt(c.speedup)),
                if c.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Parallel pipeline scaling ({cores} cores available)"),
        &[
            "n",
            "threads",
            "shards",
            "grid ms",
            "wpg ms",
            "comps ms",
            "batch ms",
            "total ms",
            "speedup",
            "identical",
        ],
        &table,
    );

    let batch_table: Vec<Vec<String>> = batch
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                c.threads.to_string(),
                c.shards.to_string(),
                fmt(c.locked_ms),
                fmt(c.sharded_ms),
                format!("{}x", fmt(c.speedup)),
            ]
        })
        .collect();
    print_table(
        "Batch serving: global mutex vs sharded registry (1,000 hosts)",
        &[
            "n",
            "threads",
            "shards",
            "locked ms",
            "sharded ms",
            "speedup",
        ],
        &batch_table,
    );

    let report = Report { cores, rows, batch };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel.json");
    std::fs::write(&root, &json).expect("write BENCH_parallel.json");
    eprintln!("[results] wrote {}", root.display());
    cfg.write_json("exp_parallel", &report);

    if record_metrics {
        nela_obs::enable();
        // Instrumented replay of one mid-size pipeline so the snapshot
        // carries the stage histograms the timed sweep no longer records.
        eprintln!("[parallel] instrumented pipeline replay for stage histograms");
        let (points, params) = population(10_000);
        let _ = measure(&points, &params, cores, None);
        eprintln!("[parallel] lossy-network clustering stage for RPC counters");
        netsim_stage();
        let obs_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json");
        std::fs::write(&obs_path, nela_obs::snapshot().to_json()).expect("write BENCH_obs.json");
        eprintln!("[results] wrote {}", obs_path.display());
    }
}
