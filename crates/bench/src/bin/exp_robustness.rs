//! Robustness sweeps beyond the paper's figures:
//!
//! - **RSS noise** — real WiFi RSS fluctuates (paper Fig. 1); rank
//!   inversions change the WPG. How do cluster quality and cost hold up
//!   under a log-distance model with growing shadowing noise?
//! - **Message loss** — the distributed protocol over the simulated radio
//!   with growing loss rates: success rate, retransmission overhead.
//! - **Topology families** — clustering quality on the abstract topologies
//!   of the small-world literature the paper cites (§IV).
//! - **Adversary & heterogeneity matrix** — the full scenario matrix of
//!   `nela::scenario`: {uniform, personalized} k × {honest, colluders,
//!   liars, crash} × {uniform, rush-hour} geography, every cell ending in
//!   a machine-checked [`nela::PrivacyVerdict`]. The matrix is written to
//!   `BENCH_robustness.json` at the repository root.
//!
//! `--smoke` runs a reduced matrix and exits non-zero unless every cell
//! accounts for all its requests and every honest (control) cell passes
//! its verdict — the CI guard for the adversary-model contracts.

use nela::cluster::distributed::{distributed_k_clustering, distributed_k_clustering_with};
use nela::netsim::network::{Network, NetworkConfig};
use nela::netsim::proto::SimFetch;
use nela::wpg::{topology, LogDistanceRss, WpgBuilder};
use nela::{scenario_matrix, Adversary, CellOutcome, MatrixConfig, Params, System};
use nela_bench::{fmt, print_table, ExpConfig};
use nela_geo::{Rect, UserId};
use serde::Serialize;

/// Prints the matrix as a table and returns whether the control cells and
/// request accounting hold (the smoke criteria).
fn report_matrix(cells: &[CellOutcome]) -> bool {
    let mut ok = true;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let v = &c.verdict;
            vec![
                c.spec.name.clone(),
                format!("{}/{}", v.served, v.requests),
                v.degraded.to_string(),
                if v.k_anonymity_held { "y" } else { "N" }.to_string(),
                if v.leak_floor_held { "y" } else { "N" }.to_string(),
                if v.truthful_coverage { "y" } else { "N" }.to_string(),
                if v.collusion_bounded_by_transcript {
                    "y"
                } else {
                    "N"
                }
                .to_string(),
                if v.recovery_sound { "y" } else { "N" }.to_string(),
                fmt(v.worst_leak_width),
                if c.passed { "PASS" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Robustness D — adversary & heterogeneity scenario matrix",
        &[
            "cell",
            "served",
            "degr",
            "k-anon",
            "floor",
            "cover",
            "collu",
            "recov",
            "worst leak",
            "verdict",
        ],
        &rows,
    );
    for c in cells {
        let v = &c.verdict;
        if v.served + v.degraded != v.requests {
            eprintln!("[matrix] FAIL: {} left requests unaccounted", c.spec.name);
            ok = false;
        }
        if c.spec.adversary == Adversary::Honest && !c.passed {
            eprintln!("[matrix] FAIL: control cell {} failed: {v:?}", c.spec.name);
            ok = false;
        }
    }
    ok
}

#[derive(Serialize)]
struct MatrixReport {
    config: MatrixConfig,
    cells: Vec<CellOutcome>,
}

fn smoke() -> i32 {
    let cfg = MatrixConfig::smoke();
    let cells = scenario_matrix(&cfg);
    if cells.len() != 16 {
        eprintln!("[smoke] FAIL: expected 16 cells, got {}", cells.len());
        return 1;
    }
    if !report_matrix(&cells) {
        return 1;
    }
    let passed = cells.iter().filter(|c| c.passed).count();
    eprintln!("[smoke] OK: 16 cells ran, {passed} passed, controls clean");
    0
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let cfg = ExpConfig::from_env();
    let params = Params {
        k: 10,
        ..Params::scaled(cfg.users.min(20_000))
    };

    // ---- Part A: RSS shadowing noise.
    #[derive(Serialize)]
    struct NoiseRow {
        shadowing_db: f64,
        avg_degree: f64,
        served: usize,
        empty_clusters: usize,
        mean_cost: f64,
        mean_area: f64,
    }
    let base = System::build(&params); // noise-free positions reused throughout
    let mut noise_rows = Vec::new();
    for shadowing in [0.0f64, 1.0, 2.0, 4.0, 8.0] {
        let rss = LogDistanceRss {
            shadowing_db: shadowing,
            seed: 11,
            ..Default::default()
        };
        let wpg = WpgBuilder::new(params.delta, params.max_peers, rss)
            .build_with_index(&base.points, &base.grid);
        let none = |_: UserId| false;
        let mut served = 0;
        let mut with_area = 0usize;
        let mut empty_clusters = 0usize;
        let mut cost = 0u64;
        let mut area = 0.0;
        for h in base.host_sequence(200, 5) {
            if let Ok(out) = distributed_k_clustering(&wpg, h, params.k, &none) {
                served += 1;
                cost += out.involved_users as u64;
                let pts: Vec<_> = out
                    .host_cluster
                    .members
                    .iter()
                    .map(|&m| base.points[m as usize])
                    .collect();
                // A memberless cluster cannot happen from a successful run,
                // but a sweep must not die on one degenerate row: skip it
                // and report the count instead of unwrapping.
                match Rect::bounding(&pts) {
                    Some(r) => {
                        area += r.area();
                        with_area += 1;
                    }
                    None => empty_clusters += 1,
                }
            }
        }
        noise_rows.push(NoiseRow {
            shadowing_db: shadowing,
            avg_degree: wpg.avg_degree(),
            served,
            empty_clusters,
            mean_cost: cost as f64 / served.max(1) as f64,
            mean_area: area / with_area.max(1) as f64,
        });
    }
    print_table(
        "Robustness A — RSS shadowing noise (log-distance model)",
        &[
            "σ (dB)",
            "avg degree",
            "served/200",
            "mean cost",
            "mean area",
        ],
        &noise_rows
            .iter()
            .map(|r| {
                vec![
                    fmt(r.shadowing_db),
                    fmt(r.avg_degree),
                    r.served.to_string(),
                    fmt(r.mean_cost),
                    fmt(r.mean_area),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("robustness_noise", &noise_rows);

    // ---- Part B: message loss.
    #[derive(Serialize)]
    struct LossRow {
        loss: f64,
        ok: usize,
        aborted: usize,
        transmissions_per_ok: f64,
    }
    let none = |_: UserId| false;
    let hosts: Vec<UserId> = base
        .host_sequence(400, 7)
        .into_iter()
        .filter(|&h| distributed_k_clustering(&base.wpg, h, params.k, &none).is_ok())
        .take(50)
        .collect();
    let mut loss_rows = Vec::new();
    for loss in [0.0f64, 0.05, 0.1, 0.2, 0.35] {
        let mut ok = 0;
        let mut aborted = 0;
        let mut transmissions = 0u64;
        for (i, &h) in hosts.iter().enumerate() {
            let mut net = Network::new(NetworkConfig {
                loss,
                max_retries: 5,
                seed: i as u64,
                ..Default::default()
            })
            .expect("config is valid");
            let mut fetch = SimFetch::new(&mut net, &base.wpg, h);
            match distributed_k_clustering_with(&mut fetch, h, params.k, &none) {
                Ok(_) => {
                    ok += 1;
                    transmissions += net.stats().transmissions;
                }
                Err(_) => aborted += 1,
            }
        }
        loss_rows.push(LossRow {
            loss,
            ok,
            aborted,
            transmissions_per_ok: transmissions as f64 / ok.max(1) as f64,
        });
    }
    print_table(
        "Robustness B — distributed clustering under message loss (5 retries)",
        &["loss", "completed", "aborted", "transmissions/success"],
        &loss_rows
            .iter()
            .map(|r| {
                vec![
                    fmt(r.loss),
                    r.ok.to_string(),
                    r.aborted.to_string(),
                    fmt(r.transmissions_per_ok),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("robustness_loss", &loss_rows);

    // ---- Part C: abstract topologies.
    #[derive(Serialize)]
    struct TopoRow {
        topology: String,
        served: usize,
        mean_cost: f64,
        mean_cluster: f64,
    }
    let n = 2_000;
    let topologies: Vec<(String, nela::wpg::Wpg)> = vec![
        (
            "ring lattice (d=6)".into(),
            topology::ring_lattice(n, 6, 10, 1),
        ),
        (
            "small world (β=0.1)".into(),
            topology::small_world(n, 6, 0.1, 10, 1),
        ),
        (
            "small world (β=0.5)".into(),
            topology::small_world(n, 6, 0.5, 10, 1),
        ),
        (
            "random regular (d=6)".into(),
            topology::random_regular(n, 6, 10, 1),
        ),
        ("grid 40×50".into(), topology::grid_graph(40, 50, 10, 1)),
    ];
    let mut topo_rows = Vec::new();
    for (name, g) in &topologies {
        let none = |_: UserId| false;
        let mut served = 0;
        let mut cost = 0u64;
        let mut cluster = 0usize;
        for h in (0..g.n() as UserId).step_by(97) {
            if let Ok(out) = distributed_k_clustering(g, h, params.k, &none) {
                served += 1;
                cost += out.involved_users as u64;
                cluster += out.host_cluster.len();
            }
        }
        topo_rows.push(TopoRow {
            topology: name.clone(),
            served,
            mean_cost: cost as f64 / served.max(1) as f64,
            mean_cluster: cluster as f64 / served.max(1) as f64,
        });
    }
    print_table(
        "Robustness C — distributed t-Conn across proximity topologies (k = 10)",
        &["topology", "served", "mean cost", "mean |cluster|"],
        &topo_rows
            .iter()
            .map(|r| {
                vec![
                    r.topology.clone(),
                    r.served.to_string(),
                    fmt(r.mean_cost),
                    fmt(r.mean_cluster),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("robustness_topology", &topo_rows);

    // ---- Part D: adversary & heterogeneity scenario matrix.
    let matrix_cfg = MatrixConfig {
        n_users: cfg.users.min(10_000),
        ..MatrixConfig::bench()
    };
    let cells = scenario_matrix(&matrix_cfg);
    report_matrix(&cells);
    let report = MatrixReport {
        config: matrix_cfg,
        cells,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize matrix report");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_robustness.json");
    std::fs::write(&root, &json).expect("write BENCH_robustness.json");
    eprintln!("[results] wrote {}", root.display());
    cfg.write_json("robustness_matrix", &report);
}
