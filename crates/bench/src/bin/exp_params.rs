//! Table I — simulation parameter settings.
//!
//! Prints the parameter table the evaluation runs under, both at the
//! paper's full scale and at the default scaled-down experiment size.

use nela::Params;
use nela_bench::{print_table, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    let paper = Params::table1();
    let scaled = cfg.params();
    let rows: Vec<Vec<String>> = vec![
        vec![
            "# of users".into(),
            paper.n_users.to_string(),
            scaled.n_users.to_string(),
        ],
        vec![
            "distance threshold δ".into(),
            format!("{:.1e}", paper.delta),
            format!("{:.3e}", scaled.delta),
        ],
        vec![
            "max # of connected peers M".into(),
            paper.max_peers.to_string(),
            scaled.max_peers.to_string(),
        ],
        vec![
            "k-anonymity k".into(),
            paper.k.to_string(),
            scaled.k.to_string(),
        ],
        vec![
            "bounding cost Cb".into(),
            format!("{}", paper.cb),
            format!("{}", scaled.cb),
        ],
        vec![
            "service request cost Cr".into(),
            format!("{}", paper.cr),
            format!("{}", scaled.cr),
        ],
        vec![
            "uniform distribution bound U".into(),
            "N/104770".into(),
            format!("N/{}", scaled.n_users),
        ],
        vec![
            "initial bound X".into(),
            "N/104770".into(),
            format!("N/{}", scaled.n_users),
        ],
        vec![
            "# of user requests S".into(),
            paper.requests.to_string(),
            scaled.requests.to_string(),
        ],
    ];
    print_table(
        "Table I — simulation parameter settings (paper / this run)",
        &["parameter", "paper", "this run"],
        &rows,
    );
    cfg.write_json("table1", &scaled);
}
