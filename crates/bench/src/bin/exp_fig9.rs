//! Fig. 9 — performance under various average WPG degrees.
//!
//! Sweeps the peer cap M ∈ {4, 8, 16, 32, 64} (which controls the average
//! vertex degree) and reports, for the distributed t-connectivity algorithm,
//! the kNN baseline and the centralized t-connectivity algorithm:
//!
//! - **Fig. 9(a)**: average communication cost (messages per cloaking
//!   request),
//! - **Fig. 9(b)**: average cloaked-region area (×10⁻⁴), computed with
//!   optimal bounding to isolate phase-1 quality (as the paper does).

use nela::cluster::knn::TieBreak;
use nela::metrics::run_workload;
use nela::WorkloadStats;
use nela::{BoundingAlgo, ClusteringAlgo, Params};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    m: usize,
    avg_degree: f64,
    tconn_cost: f64,
    knn_cost: f64,
    central_cost: f64,
    tconn_area: f64,
    knn_area: f64,
    central_area: f64,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let mut rows = Vec::new();
    for m in [4usize, 8, 16, 32, 64] {
        let params = Params {
            max_peers: m,
            ..cfg.params()
        };
        let system = cfg.build(&params);
        let hosts = system.host_sequence(params.requests, 1);
        let tconn = run_workload(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        let knn = run_workload(
            &system,
            ClusteringAlgo::Knn(TieBreak::Id),
            BoundingAlgo::Optimal,
            &hosts,
        );
        let central = run_workload(
            &system,
            ClusteringAlgo::TConnCentralized,
            BoundingAlgo::Optimal,
            &hosts,
        );
        let cost = |s: &WorkloadStats| s.avg_clustering_messages.expect("workload served");
        let area = |s: &WorkloadStats| s.avg_cloaked_area.expect("workload served");
        rows.push(Row {
            m,
            avg_degree: system.avg_degree(),
            tconn_cost: cost(&tconn),
            knn_cost: cost(&knn),
            central_cost: cost(&central),
            tconn_area: area(&tconn),
            knn_area: area(&knn),
            central_area: area(&central),
        });
    }

    print_table(
        "Fig. 9(a) — avg. communication cost vs. avg. degree",
        &["M", "avg degree", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    fmt(r.avg_degree),
                    fmt(r.tconn_cost),
                    fmt(r.knn_cost),
                    fmt(r.central_cost),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Fig. 9(b) — avg. cloaked region size vs. avg. degree",
        &["M", "avg degree", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    fmt(r.avg_degree),
                    fmt(r.tconn_area),
                    fmt(r.knn_area),
                    fmt(r.central_area),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("fig9", &rows);
}
