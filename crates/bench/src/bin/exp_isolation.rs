//! Cluster-isolation measurement (paper §IV, Property 4.1).
//!
//! For each algorithm: carve out sample hosts' clusters, re-run every other
//! sampled user's request, and count how many victims' clusters changed,
//! degraded, or vanished. The paper proves the t-connectivity algorithm
//! cluster-isolated (Theorem 4.4); measured, it is *non-degrading* with a
//! small amount of benign membership churn, while kNN degrades outright —
//! see DESIGN.md fidelity decision #3.

use nela::cluster::isolation::{isolation_report, knn_algo, t_conn_algo};
use nela::cluster::knn::TieBreak;
use nela::Params;
use nela_bench::{fmt, print_table, ExpConfig};
use nela_geo::UserId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algo: String,
    k: usize,
    checked: usize,
    changed_pct: f64,
    degraded_pct: f64,
    lost_pct: f64,
}

fn main() {
    let cfg = ExpConfig::from_env();
    // Isolation checking is O(hosts × victims × request); use a smaller
    // population than the workload experiments.
    let params = Params {
        k: 10,
        ..Params::scaled(cfg.users.min(5_000))
    };
    let system = cfg.build(&params);
    let hosts: Vec<UserId> = system
        .host_sequence(300, 3)
        .into_iter()
        .filter(|&h| {
            nela::cluster::distributed_k_clustering(&system.wpg, h, params.k, &|_| false).is_ok()
        })
        .take(6)
        .collect();

    let mut rows = Vec::new();
    for k in [5usize, 10] {
        for (name, report) in [
            (
                "t-Conn",
                isolation_report(&system.wpg, &hosts, 11, &t_conn_algo(k)),
            ),
            (
                "kNN",
                isolation_report(&system.wpg, &hosts, 11, &knn_algo(k, TieBreak::Id)),
            ),
        ] {
            let pct = |x: usize| 100.0 * x as f64 / report.checked.max(1) as f64;
            rows.push(Row {
                algo: name.to_string(),
                k,
                checked: report.checked,
                changed_pct: pct(report.changed),
                degraded_pct: pct(report.degraded),
                lost_pct: pct(report.lost),
            });
        }
    }

    print_table(
        "Cluster-isolation: victims affected by carving a host's cluster",
        &[
            "algorithm",
            "k",
            "victims checked",
            "changed %",
            "degraded %",
            "lost %",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.k.to_string(),
                    r.checked.to_string(),
                    fmt(r.changed_pct),
                    fmt(r.degraded_pct),
                    fmt(r.lost_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("isolation", &rows);
}
