//! Privacy evaluation: what an adversary intercepting service requests
//! learns under each clustering algorithm.
//!
//! Three attacks over a full workload:
//! - **candidate counting** — users inside the intercepted region (must be
//!   ≥ k; more is better),
//! - **center guess** — localization error of guessing the region center,
//!   normalized by the region's half-diagonal (1.0 = the attacker gains
//!   nothing over the region itself),
//! - **intersection attack** — intersect two successive regions of the same
//!   user; reciprocity (t-Conn) keeps ≥ k candidates, fresh-group kNN leaks.

use nela::attack::{anonymity_of, center_attack, intersection_attack};
use nela::cluster::knn::TieBreak;
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algo: String,
    served: usize,
    min_candidates: usize,
    mean_candidates: f64,
    mean_entropy_bits: f64,
    k_violations: usize,
    mean_center_error_ratio: f64,
    intersection_leaks: usize,
    intersection_trials: usize,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let params = Params {
        k: 10,
        ..cfg.params()
    };
    let system = cfg.build(&params);
    let hosts = system.host_sequence(params.requests, 1);

    let mut rows = Vec::new();
    for (name, algo) in [
        ("t-Conn + secure", ClusteringAlgo::TConnDistributed),
        ("kNN + secure", ClusteringAlgo::Knn(TieBreak::Id)),
        // The exposure baseline: its regions are tight, but obtaining them
        // required every user to hand exact coordinates to the anonymizer.
        ("hilbASR (exposes!)", ClusteringAlgo::HilbAsr),
    ] {
        let mut engine = CloakingEngine::new(&system, algo, BoundingAlgo::Secure);
        let mut served = 0usize;
        let mut min_candidates = usize::MAX;
        let mut sum_candidates = 0f64;
        let mut sum_entropy = 0f64;
        let mut k_violations = 0usize;
        let mut sum_err_ratio = 0f64;
        let mut leaks = 0usize;
        let mut trials = 0usize;
        for &h in &hosts {
            let Ok(first) = engine.request(h) else {
                continue;
            };
            served += 1;
            let anon = anonymity_of(&system, &first.region);
            min_candidates = min_candidates.min(anon.candidates);
            sum_candidates += anon.candidates as f64;
            sum_entropy += anon.entropy_bits;
            k_violations += usize::from(!anon.meets_k);
            let atk = center_attack(&system, &first);
            if atk.half_diagonal > 0.0 {
                sum_err_ratio += atk.guess_error / atk.half_diagonal;
            }
            // Longitudinal: the same user requests again.
            if served % 5 == 0 {
                if let Ok(second) = engine.request(h) {
                    trials += 1;
                    let survivors = intersection_attack(&system, &[first.region, second.region]);
                    if survivors.len() < params.k {
                        leaks += 1;
                    }
                }
            }
        }
        rows.push(Row {
            algo: name.to_string(),
            served,
            min_candidates,
            mean_candidates: sum_candidates / served.max(1) as f64,
            mean_entropy_bits: sum_entropy / served.max(1) as f64,
            k_violations,
            mean_center_error_ratio: sum_err_ratio / served.max(1) as f64,
            intersection_leaks: leaks,
            intersection_trials: trials,
        });
    }

    print_table(
        "Adversary evaluation over a full workload (k = 10)",
        &[
            "algorithm",
            "served",
            "min cand",
            "mean cand",
            "entropy bits",
            "k-violations",
            "center err/halfdiag",
            "intersection leaks",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.served.to_string(),
                    r.min_candidates.to_string(),
                    fmt(r.mean_candidates),
                    fmt(r.mean_entropy_bits),
                    r.k_violations.to_string(),
                    fmt(r.mean_center_error_ratio),
                    format!("{}/{}", r.intersection_leaks, r.intersection_trials),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("attack", &rows);
}
