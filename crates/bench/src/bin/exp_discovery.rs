//! End-to-end substrate experiment: neighbor discovery over a lossy, noisy
//! radio → discovered WPG → cloaking quality.
//!
//! The paper assumes RSS knowledge exists; this experiment quantifies what
//! the whole pipeline loses when that knowledge must be *acquired* by
//! beaconing. Sweeps beacon loss and RSS noise, reporting WPG edge recall
//! and the downstream cloaking metrics on the discovered graph versus the
//! ideal one.

use nela::metrics::run_workload;
use nela::netsim::discovery::{edge_recall, run_discovery, DiscoveryConfig};
use nela::{BoundingAlgo, ClusteringAlgo, Params, System};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    beacon_loss: f64,
    rss_noise: f64,
    rounds: u32,
    edge_recall: f64,
    served: usize,
    failed: usize,
    mean_cost: Option<f64>,
    mean_area: Option<f64>,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let params = Params {
        k: 10,
        ..Params::scaled(cfg.users.min(20_000))
    };
    let ideal_system = cfg.build(&params);
    let hosts = ideal_system.host_sequence(params.requests.min(400), 1);

    let sweeps: Vec<(f64, f64, u32)> = vec![
        (0.0, 0.0, 8),
        (0.2, 0.0, 8),
        (0.5, 0.0, 8),
        (0.5, 0.0, 2),
        (0.0, 0.25 * params.delta, 8),
        (0.0, 1.0 * params.delta, 8),
        (0.3, 0.5 * params.delta, 8),
    ];

    let mut rows = Vec::new();
    for (beacon_loss, rss_noise, rounds) in sweeps {
        let dcfg = DiscoveryConfig {
            delta: params.delta,
            max_peers: params.max_peers,
            rounds,
            beacon_loss,
            rss_noise,
            period: 1.0,
            seed: 5,
        };
        let (wpg, _) = run_discovery(&ideal_system.points, &ideal_system.grid, &dcfg)
            .expect("sweep configs are valid");
        let recall = edge_recall(&ideal_system.wpg, &wpg);
        // Run the standard workload over the discovered graph.
        let system = System {
            params: params.clone(),
            points: ideal_system.points.clone(),
            grid: ideal_system.grid.clone(),
            wpg,
        };
        let stats = run_workload(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        rows.push(Row {
            beacon_loss,
            rss_noise,
            rounds,
            edge_recall: recall,
            served: stats.served,
            failed: stats.failed,
            mean_cost: stats.avg_clustering_messages,
            mean_area: stats.avg_cloaked_area,
        });
    }

    print_table(
        "Discovery → cloaking: substrate degradation end to end (k = 10)",
        &[
            "loss",
            "noise",
            "rounds",
            "edge recall",
            "served",
            "failed",
            "mean cost",
            "mean area",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt(r.beacon_loss),
                    fmt(r.rss_noise),
                    r.rounds.to_string(),
                    fmt(r.edge_recall),
                    r.served.to_string(),
                    r.failed.to_string(),
                    r.mean_cost.map_or_else(|| "n/a".to_string(), fmt),
                    r.mean_area.map_or_else(|| "n/a".to_string(), fmt),
                ]
            })
            .collect::<Vec<_>>(),
    );
    cfg.write_json("discovery", &rows);
}
