//! Fig. 10 — overall communication cost under various POI data sizes.
//!
//! Combines the clustering cost with the service-request cost for ratios
//! ρ = (size of one POI's content) / (size of one clustering message)
//! from 0 to 20: total = clustering messages + ρ · E[#POIs in the cloaked
//! region]. The paper's observation: t-Conn overtakes kNN once a POI is
//! ≳ 10× a clustering message — which virtually always holds in practice.

use nela::cluster::knn::TieBreak;
use nela::metrics::run_workload;
use nela::{BoundingAlgo, ClusteringAlgo, WorkloadStats};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ratio: f64,
    tconn_total: f64,
    knn_total: f64,
    central_total: f64,
}

fn main() {
    let cfg = ExpConfig::from_env();
    let params = cfg.params();
    let system = cfg.build(&params);
    let hosts = system.host_sequence(params.requests, 1);

    let run = |algo| run_workload(&system, algo, BoundingAlgo::Optimal, &hosts);
    let tconn = run(ClusteringAlgo::TConnDistributed);
    let knn = run(ClusteringAlgo::Knn(TieBreak::Id));
    let central = run(ClusteringAlgo::TConnCentralized);

    // Expected POIs returned by a range query over the average region.
    let pois =
        |w: &WorkloadStats| w.avg_cloaked_area.expect("workload served") * params.n_users as f64;
    let cost = |w: &WorkloadStats| w.avg_clustering_messages.expect("workload served");

    let mut rows = Vec::new();
    for r10 in 0..=20u32 {
        let ratio = r10 as f64;
        rows.push(Row {
            ratio,
            tconn_total: cost(&tconn) + ratio * pois(&tconn),
            knn_total: cost(&knn) + ratio * pois(&knn),
            central_total: cost(&central) + ratio * pois(&central),
        });
    }

    print_table(
        "Fig. 10 — total comm. cost vs. POI-content / clustering-message size ratio",
        &["ratio", "t-Conn", "kNN", "centralized t-Conn"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt(r.ratio),
                    fmt(r.tconn_total),
                    fmt(r.knn_total),
                    fmt(r.central_total),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // Report the crossover, if any.
    if let Some(cross) = rows.iter().find(|r| r.tconn_total < r.knn_total) {
        println!(
            "\nt-Conn total cost drops below kNN at ratio {}",
            cross.ratio
        );
    } else {
        println!("\nno t-Conn/kNN crossover within ratio ≤ 20 at this workload");
    }
    cfg.write_json("fig10", &rows);
}
