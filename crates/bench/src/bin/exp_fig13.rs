//! Fig. 13 — bounding algorithms under various anonymity levels k.
//!
//! Phase 1 is fixed to the distributed t-connectivity algorithm; phase 2
//! sweeps the four bounding algorithms of §VI-D over k ∈ {5..50}:
//!
//! - **Fig. 13(a)**: average bounding communication cost,
//! - **Fig. 13(b)**: average service-request cost, as a ratio to optimal
//!   bounding (the paper plots this ratio),
//! - **Fig. 13(c)**: average total communication cost,
//! - **Fig. 13(d)**: average bounding CPU time (ms).

use nela::metrics::run_workload;
use nela::{BoundingAlgo, ClusteringAlgo, WorkloadStats};
use nela_bench::{fmt, print_table, ExpConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    bounding: [f64; 4],
    request_ratio: [f64; 4],
    total: [f64; 4],
    cpu_ms: [f64; 4],
}

const ALGOS: [(&str, BoundingAlgo); 4] = [
    ("Linear", BoundingAlgo::Linear),
    ("Exponential", BoundingAlgo::Exponential),
    ("Secure", BoundingAlgo::Secure),
    ("Optimal", BoundingAlgo::Optimal),
];

fn main() {
    let cfg = ExpConfig::from_env();
    let base = cfg.params();
    let system = cfg.build(&base);
    let hosts = system.host_sequence(base.requests, 1);

    let mut rows = Vec::new();
    for k in [5usize, 10, 20, 30, 40, 50] {
        let mut params = base.clone();
        params.k = k;
        let system_k = nela::System {
            params: params.clone(),
            points: system.points.clone(),
            grid: system.grid.clone(),
            wpg: system.wpg.clone(),
        };
        let stats: Vec<WorkloadStats> = ALGOS
            .iter()
            .map(|&(_, b)| run_workload(&system_k, ClusteringAlgo::TConnDistributed, b, &hosts))
            .collect();
        let bounding_msgs = |i: usize| stats[i].avg_bounding_messages.expect("workload served");
        let request_cost = |i: usize| stats[i].avg_request_cost.expect("workload served");
        let opt_request = request_cost(3).max(f64::MIN_POSITIVE);
        rows.push(Row {
            k,
            bounding: std::array::from_fn(bounding_msgs),
            request_ratio: std::array::from_fn(|i| request_cost(i) / opt_request),
            total: std::array::from_fn(|i| bounding_msgs(i) + request_cost(i)),
            cpu_ms: std::array::from_fn(|i| stats[i].avg_bounding_cpu_ms.expect("workload served")),
        });
    }

    let table = |title: &str, f: &dyn Fn(&Row) -> [f64; 4]| {
        print_table(
            title,
            &["k", "Linear", "Exponential", "Secure", "Optimal"],
            &rows
                .iter()
                .map(|r| {
                    let v = f(r);
                    vec![r.k.to_string(), fmt(v[0]), fmt(v[1]), fmt(v[2]), fmt(v[3])]
                })
                .collect::<Vec<_>>(),
        );
    };
    table("Fig. 13(a) — avg. bounding comm. cost vs. k", &|r| {
        r.bounding
    });
    table(
        "Fig. 13(b) — avg. request cost (ratio to optimal) vs. k",
        &|r| r.request_ratio,
    );
    table("Fig. 13(c) — avg. total comm. cost vs. k", &|r| r.total);
    table("Fig. 13(d) — avg. bounding CPU time (ms) vs. k", &|r| {
        r.cpu_ms
    });
    cfg.write_json("fig13", &rows);
}
