//! Incremental WPG maintenance vs from-scratch rebuild across move
//! fractions, n = 10,000 (the ISSUE's acceptance series: incremental must
//! win for move fractions ≤ 10%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nela_geo::{DatasetSpec, Point, SpatialDistribution};
use nela_wpg::{IncrementalWpg, InverseDistanceRss, WpgBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const N: usize = 10_000;

fn setup() -> (Vec<Point>, WpgBuilder<InverseDistanceRss>, f64) {
    let points = DatasetSpec {
        n: N,
        seed: 1,
        distribution: SpatialDistribution::california(),
    }
    .generate();
    let delta = 2e-3 * (104_770.0_f64 / N as f64).sqrt();
    (
        points,
        WpgBuilder::new(delta, 10, InverseDistanceRss),
        delta,
    )
}

/// Local drifts of ~half the radio range for a fraction of the population —
/// the mobility-model regime, where the dirty set stays small.
fn move_batch(points: &[Point], fraction: f64, delta: f64, seed: u64) -> Vec<(u32, Point)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let movers = ((points.len() as f64) * fraction).round() as usize;
    (0..movers)
        .map(|_| {
            let id = rng.gen_range(0..points.len() as u32);
            let p = points[id as usize];
            let step = delta * 0.5;
            (
                id,
                Point::new(
                    (p.x + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                    (p.y + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                ),
            )
        })
        .collect()
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let (points, builder, delta) = setup();
    let baseline = IncrementalWpg::new(builder.clone(), &points);

    let mut group = c.benchmark_group("wpg_update_10k");
    group.sample_size(10);
    for pct in [1usize, 5, 10, 25, 50] {
        let moves = move_batch(&points, pct as f64 / 100.0, delta, 7 + pct as u64);
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{pct}pct")),
            &moves,
            |b, moves| {
                b.iter(|| {
                    let mut inc = baseline.clone();
                    inc.apply_moves(moves);
                    black_box(inc.snapshot())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rebuild", format!("{pct}pct")),
            &moves,
            |b, moves| {
                b.iter(|| {
                    let mut moved = points.clone();
                    for &(id, p) in moves {
                        moved[id as usize] = p;
                    }
                    black_box(builder.build(&moved))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_rebuild);
criterion_main!(benches);
