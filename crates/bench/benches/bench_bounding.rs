//! Phase-2 CPU benchmarks (the paper's Fig. 13(d) angle): per-cluster
//! bounding time for the four algorithms, plus the increment optimizers in
//! isolation (closed form / numeric / exact DP — quantifying why the paper
//! prefers the approximation of Equation 5 on mobile CPUs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nela::bounding::baselines::{optimal_bound, ExponentialPolicy, LinearPolicy};
use nela::bounding::cost::AreaCost;
use nela::bounding::distribution::Uniform;
use nela::bounding::nbound::{
    exact_dp_increment, n_bounding_increment, n_bounding_uniform_area_closed_form, SecurePolicy,
};
use nela::bounding::protocol::progressive_upper_bound;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Synthetic cluster coordinates: k values near an anchor with a realistic
/// multi-radio-range spread.
fn cluster_values(k: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen::<f64>() * 0.01).collect()
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounding_run");
    for k in [10usize, 50] {
        let values = cluster_values(k, 7);
        let span = k as f64 / 20_000.0;
        let cr = 1000.0 * 20_000.0;
        group.bench_with_input(BenchmarkId::new("secure", k), &k, |b, _| {
            b.iter(|| {
                let mut p = SecurePolicy::new(Uniform::new(span), AreaCost { cr }, 1.0);
                black_box(progressive_upper_bound(&values, 0.0, 0.0, &mut p))
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", k), &k, |b, _| {
            b.iter(|| {
                let mut p = LinearPolicy::new(span / 4.0);
                black_box(progressive_upper_bound(&values, 0.0, 0.0, &mut p))
            })
        });
        group.bench_with_input(BenchmarkId::new("exponential", k), &k, |b, _| {
            b.iter(|| {
                let mut p = ExponentialPolicy::new(span);
                black_box(progressive_upper_bound(&values, 0.0, 0.0, &mut p))
            })
        });
        group.bench_with_input(BenchmarkId::new("optimal", k), &k, |b, _| {
            b.iter(|| black_box(optimal_bound(&values)))
        });
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let dist = Uniform::new(5e-4);
    let cost = AreaCost { cr: 2.0e7 };
    let mut group = c.benchmark_group("increment_optimizer");
    group.bench_function("closed_form_n10", |b| {
        b.iter(|| black_box(n_bounding_uniform_area_closed_form(10, 1.0, 2.0e7, 5e-4)))
    });
    group.bench_function("numeric_eq4_n10", |b| {
        b.iter(|| black_box(n_bounding_increment(10, &dist, &cost, 1.0)))
    });
    group.sample_size(10);
    group.bench_function("exact_dp_n10", |b| {
        b.iter(|| black_box(exact_dp_increment(10, &dist, &cost, 1.0)))
    });
    group.bench_function("exact_dp_n50", |b| {
        b.iter(|| black_box(exact_dp_increment(50, &dist, &cost, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_optimizers);
criterion_main!(benches);
