//! Phase-1 benchmarks: the centralized partition (level-based production
//! algorithm vs. the literal single-linkage reading — the chaining
//! ablation), the per-request distributed algorithm, and the kNN baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nela::cluster::centralized::{centralized_k_clustering, single_linkage_k_clustering};
use nela::cluster::distributed::distributed_k_clustering;
use nela::cluster::knn::{knn_cluster, TieBreak};
use nela::{Params, System};
use nela_geo::UserId;
use std::hint::black_box;

fn test_system() -> System {
    System::build(&Params {
        k: 10,
        ..Params::scaled(20_000)
    })
}

fn bench_centralized(c: &mut Criterion) {
    let system = test_system();
    let mut group = c.benchmark_group("centralized_partition_20k");
    group.sample_size(10);
    group.bench_function("level_based", |b| {
        b.iter(|| black_box(centralized_k_clustering(&system.wpg, 10)))
    });
    group.bench_function("single_linkage_literal", |b| {
        b.iter(|| black_box(single_linkage_k_clustering(&system.wpg, 10)))
    });
    group.finish();
}

fn servable_hosts(system: &System, want: usize) -> Vec<UserId> {
    let none = |_: UserId| false;
    system
        .host_sequence(2_000, 3)
        .into_iter()
        .filter(|&h| distributed_k_clustering(&system.wpg, h, system.params.k, &none).is_ok())
        .take(want)
        .collect()
}

fn bench_per_request(c: &mut Criterion) {
    let system = test_system();
    let hosts = servable_hosts(&system, 64);
    let none = |_: UserId| false;
    let mut group = c.benchmark_group("per_request");
    for k in [5usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("distributed_t_conn", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let h = hosts[i % hosts.len()];
                i += 1;
                black_box(distributed_k_clustering(&system.wpg, h, k, &none).ok())
            })
        });
        group.bench_with_input(BenchmarkId::new("knn", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let h = hosts[i % hosts.len()];
                i += 1;
                black_box(knn_cluster(&system.wpg, h, k, &none, TieBreak::Id).ok())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_centralized, bench_per_request);
criterion_main!(benches);
