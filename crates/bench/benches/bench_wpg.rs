//! Substrate benchmarks: dataset generation, grid indexing, WPG
//! construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nela_geo::{DatasetSpec, GridIndex, SpatialDistribution};
use nela_wpg::{InverseDistanceRss, WpgBuilder};
use std::hint::black_box;

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate");
    group.sample_size(20);
    for n in [5_000usize, 20_000] {
        group.bench_with_input(BenchmarkId::new("california", n), &n, |b, &n| {
            let spec = DatasetSpec {
                n,
                seed: 1,
                distribution: SpatialDistribution::california(),
            };
            b.iter(|| black_box(spec.generate()));
        });
    }
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let points = DatasetSpec {
        n: 20_000,
        seed: 1,
        distribution: SpatialDistribution::california(),
    }
    .generate();
    c.bench_function("grid_build_20k", |b| {
        b.iter(|| black_box(GridIndex::build(&points, 4.6e-3)))
    });
    let grid = GridIndex::build(&points, 4.6e-3);
    c.bench_function("grid_range_query", |b| {
        let mut buf = Vec::new();
        let mut q = 0u32;
        b.iter(|| {
            grid.neighbors_within(q % 20_000, 4.6e-3, &mut buf);
            q = q.wrapping_add(97);
            black_box(buf.len())
        })
    });
}

fn bench_wpg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("wpg_build");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let points = DatasetSpec {
            n,
            seed: 1,
            distribution: SpatialDistribution::california(),
        }
        .generate();
        let delta = 2e-3 * (104_770.0_f64 / n as f64).sqrt();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(WpgBuilder::new(delta, 10, InverseDistanceRss).build(&points)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataset, bench_grid, bench_wpg_build);
criterion_main!(benches);
