//! Parallel-pipeline benchmarks: the deterministic threaded build paths
//! (grid fill, WPG construction, connected components, batched serving)
//! against their serial baselines at 1/2/4/8 threads.
//!
//! Wall-clock gains require real cores; on a single-core host the series
//! instead quantifies the overhead of the chunked machinery (expected to be
//! small, since `threads = 1` short-circuits to the serial code).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use nela_geo::{DatasetSpec, GridIndex, SpatialDistribution};
use nela_wpg::connectivity::{components_under_threads, nothing_removed};
use nela_wpg::{InverseDistanceRss, WpgBuilder};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn dataset(n: usize) -> (Vec<nela_geo::Point>, f64) {
    let points = DatasetSpec {
        n,
        seed: 1,
        distribution: SpatialDistribution::california(),
    }
    .generate();
    let delta = 2e-3 * (104_770.0_f64 / n as f64).sqrt();
    (points, delta)
}

fn bench_grid_build(c: &mut Criterion) {
    let (points, delta) = dataset(20_000);
    let mut group = c.benchmark_group("parallel_grid_build_20k");
    group.sample_size(20);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(GridIndex::build_threads(&points, delta, t)))
        });
    }
    group.finish();
}

fn bench_wpg_build(c: &mut Criterion) {
    let (points, delta) = dataset(20_000);
    let grid = GridIndex::build(&points, delta);
    let mut group = c.benchmark_group("parallel_wpg_build_20k");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    WpgBuilder::new(delta, 10, InverseDistanceRss)
                        .build_with_index_threads(&points, &grid, t),
                )
            })
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let (points, delta) = dataset(20_000);
    let g = WpgBuilder::new(delta, 10, InverseDistanceRss).build(&points);
    let mut group = c.benchmark_group("parallel_components_20k");
    group.sample_size(20);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(components_under_threads(&g, 3, &nothing_removed, t)))
        });
    }
    group.finish();
}

fn bench_request_many(c: &mut Criterion) {
    let system = System::build(&Params::scaled(10_000));
    let hosts = system.host_sequence(100, 7);
    let mut group = c.benchmark_group("parallel_request_many_10k");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut engine = CloakingEngine::new(
                    &system,
                    ClusteringAlgo::TConnDistributed,
                    BoundingAlgo::Secure,
                );
                black_box(engine.request_many(&hosts, t))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_build,
    bench_wpg_build,
    bench_components,
    bench_request_many
);
criterion_main!(benches);
