//! Compact storage for weighted proximity graphs.

use crate::Weight;
use nela_geo::UserId;

/// An undirected weighted edge. `u < v` is maintained by [`Wpg::from_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub u: UserId,
    pub v: UserId,
    pub w: Weight,
}

/// Ceiling on vertex count for the parallel CSR fill: above this the
/// per-thread degree histograms (`threads × n` u32 counters) outweigh the
/// scatter win and [`Wpg::from_edges_threads`] falls back to the serial
/// path. Same shape as the grid fill's cell guard.
const PARALLEL_CSR_MAX_VERTICES: usize = 1 << 22;

impl Edge {
    /// Creates an edge, normalizing endpoint order so `u < v`.
    #[inline]
    pub fn new(a: UserId, b: UserId, w: Weight) -> Self {
        debug_assert_ne!(a, b, "self loops are not allowed in a WPG");
        if a < b {
            Edge { u: a, v: b, w }
        } else {
            Edge { u: b, v: a, w }
        }
    }
}

/// A weighted proximity graph in CSR (compressed sparse row) form.
///
/// Vertices are dense `0..n` user ids. Each undirected edge is stored twice
/// (once per endpoint) so neighbor iteration is a contiguous slice scan; the
/// graphs built in the evaluation have ~10⁵ vertices and ≤ M·n/2 edges, so
/// this stays well within cache-friendly sizes.
#[derive(Debug, Clone)]
pub struct Wpg {
    offsets: Vec<u32>,
    nbr_ids: Vec<UserId>,
    nbr_weights: Vec<Weight>,
    n_edges: usize,
}

impl Wpg {
    /// Builds a WPG over `n` vertices from an undirected edge list.
    ///
    /// Duplicate edges are rejected in debug builds; callers (the builder and
    /// the topology generators) construct deduplicated lists.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut deg = vec![0u32; n + 1];
        for e in edges {
            debug_assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge out of range"
            );
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let total = deg[n] as usize;
        let mut nbr_ids = vec![0 as UserId; total];
        let mut nbr_weights = vec![0 as Weight; total];
        let mut cursor = deg.clone();
        for e in edges {
            let cu = &mut cursor[e.u as usize];
            nbr_ids[*cu as usize] = e.v;
            nbr_weights[*cu as usize] = e.w;
            *cu += 1;
            let cv = &mut cursor[e.v as usize];
            nbr_ids[*cv as usize] = e.u;
            nbr_weights[*cv as usize] = e.w;
            *cv += 1;
        }
        let g = Wpg {
            offsets: deg,
            nbr_ids,
            nbr_weights,
            n_edges: edges.len(),
        };
        debug_assert!(g.check_no_duplicates(), "duplicate edges in WPG input");
        g
    }

    /// Rebuilds this graph in place over `n` vertices from an undirected
    /// edge list, reusing the existing CSR buffers — allocation-free once
    /// they reach steady size. Produces exactly the CSR of
    /// [`Wpg::from_edges`] (same counting sort, same per-vertex neighbor
    /// order), without a cursor scratch: the scatter advances `offsets[v]`
    /// through `v`'s slice, which leaves `offsets[v]` holding `v+1`'s start,
    /// so one right-shift restores the offset array afterwards.
    pub fn refill_from_edges(&mut self, n: usize, edges: &[Edge]) {
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for e in edges {
            debug_assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge out of range"
            );
            self.offsets[e.u as usize + 1] += 1;
            self.offsets[e.v as usize + 1] += 1;
        }
        for i in 1..=n {
            self.offsets[i] += self.offsets[i - 1];
        }
        let total = self.offsets[n] as usize;
        self.nbr_ids.clear();
        self.nbr_ids.resize(total, 0);
        self.nbr_weights.clear();
        self.nbr_weights.resize(total, 0);
        for e in edges {
            let cu = &mut self.offsets[e.u as usize];
            self.nbr_ids[*cu as usize] = e.v;
            self.nbr_weights[*cu as usize] = e.w;
            *cu += 1;
            let cv = &mut self.offsets[e.v as usize];
            self.nbr_ids[*cv as usize] = e.u;
            self.nbr_weights[*cv as usize] = e.w;
            *cv += 1;
        }
        // Each offsets[v] now holds v's old end = v+1's start; shift right.
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        self.offsets[0] = 0;
        self.n_edges = edges.len();
        debug_assert!(self.check_no_duplicates(), "duplicate edges in WPG input");
    }

    /// Builds the same CSR as [`Wpg::from_edges`] with the degree count and
    /// the neighbor scatter split across `threads` scoped worker threads —
    /// the counting-sort scheme of `GridIndex::build_threads`: per-chunk
    /// degree histograms, an exclusive prefix over (vertex, chunk) turning
    /// the histograms into disjoint write cursors, and a parallel scatter
    /// through `nela_par::ScatterWriter`. Chunk `t`'s entries for a vertex
    /// land after every earlier chunk's, in chunk-local edge order — exactly
    /// the serial emission order — so the result is **bit-identical** to
    /// [`Wpg::from_edges`] for any thread count. `threads <= 1` runs the
    /// serial path on the caller's thread.
    pub fn from_edges_threads(n: usize, edges: &[Edge], threads: usize) -> Self {
        let m = edges.len();
        let threads = nela_par::effective_threads(threads, m);
        if threads <= 1 || n > PARALLEL_CSR_MAX_VERTICES {
            return Self::from_edges(n, edges);
        }
        // Pass 1 (parallel): per-chunk degree histograms; every edge counts
        // once at each endpoint.
        let ranges = nela_par::chunk_ranges(m, threads);
        let mut chunk_deg: Vec<Vec<u32>> = nela_par::map_chunks(threads, m, |range| {
            let mut deg = vec![0u32; n];
            for e in &edges[range] {
                debug_assert!(
                    (e.u as usize) < n && (e.v as usize) < n,
                    "edge out of range"
                );
                deg[e.u as usize] += 1;
                deg[e.v as usize] += 1;
            }
            deg
        });
        // Exclusive prefix over (vertex, chunk): chunk_deg[t][v] becomes the
        // first write cursor of chunk t inside v's neighbor slice.
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            let mut acc = 0u32;
            for deg in chunk_deg.iter_mut() {
                let here = deg[v];
                deg[v] = acc;
                acc += here;
            }
            offsets[v + 1] = acc;
        }
        for v in 1..=n {
            offsets[v] += offsets[v - 1];
        }
        let total = offsets[n] as usize;
        let mut nbr_ids = vec![0 as UserId; total];
        let mut nbr_weights = vec![0 as Weight; total];
        // Pass 2 (parallel): scatter both directed copies of every edge into
        // the disjoint cursor ranges.
        {
            let ids = nela_par::ScatterWriter::new(&mut nbr_ids);
            let weights = nela_par::ScatterWriter::new(&mut nbr_weights);
            let offsets_ref = &offsets;
            std::thread::scope(|scope| {
                for (range, mut cursors) in ranges.into_iter().zip(chunk_deg) {
                    let ids = &ids;
                    let weights = &weights;
                    scope.spawn(move || {
                        for e in &edges[range] {
                            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                                let a = a as usize;
                                let at = (offsets_ref[a] + cursors[a]) as usize;
                                cursors[a] += 1;
                                // SAFETY: cursor ranges are disjoint per
                                // (vertex, chunk) by the prefix-sum
                                // construction, so every index is written
                                // exactly once.
                                unsafe {
                                    ids.write(at, b);
                                    weights.write(at, e.w);
                                }
                            }
                        }
                    });
                }
            });
        }
        let g = Wpg {
            offsets,
            nbr_ids,
            nbr_weights,
            n_edges: m,
        };
        debug_assert!(g.check_no_duplicates(), "duplicate edges in WPG input");
        g
    }

    fn check_no_duplicates(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for u in 0..self.n() as UserId {
            seen.clear();
            for (v, _) in self.neighbors(u) {
                if v == u || !seen.insert(v) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.n_edges
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: UserId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Average vertex degree — the x-axis of the paper's Fig. 9.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Iterates `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn neighbors(&self, u: UserId) -> impl Iterator<Item = (UserId, Weight)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.nbr_ids[lo..hi]
            .iter()
            .copied()
            .zip(self.nbr_weights[lo..hi].iter().copied())
    }

    /// Weight of edge `(u, v)`, or `None` if absent.
    pub fn edge_weight(&self, u: UserId, v: UserId) -> Option<Weight> {
        self.neighbors(u).find(|&(x, _)| x == v).map(|(_, w)| w)
    }

    /// Iterates every undirected edge exactly once (as `u < v`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n() as UserId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| Edge { u, v, w })
        })
    }

    /// Maximum edge weight (MEW) over the whole graph; `None` when edgeless.
    pub fn max_weight(&self) -> Option<Weight> {
        self.nbr_weights.iter().copied().max()
    }

    /// Sorted, deduplicated list of the distinct edge weights. The
    /// t-connectivity sweep only needs to consider these values.
    pub fn distinct_weights(&self) -> Vec<Weight> {
        let mut w: Vec<Weight> = self.nbr_weights.clone();
        w.sort_unstable();
        w.dedup();
        w
    }

    /// True when every vertex in `members` can reach every other through
    /// edges whose *both* endpoints are in `members` (ignoring weights).
    pub fn is_connected_subset(&self, members: &[UserId]) -> bool {
        if members.is_empty() {
            return true;
        }
        let member_set: std::collections::HashSet<UserId> = members.iter().copied().collect();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![members[0]];
        visited.insert(members[0]);
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if member_set.contains(&v) && visited.insert(v) {
                    stack.push(v);
                }
            }
        }
        visited.len() == members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Wpg {
        // 0-1 (w1), 1-2 (w2), 2-3 (w3), 3-0 (w4), 0-2 (w5)
        Wpg::from_edges(
            4,
            &[
                Edge::new(0, 1, 1),
                Edge::new(1, 2, 2),
                Edge::new(2, 3, 3),
                Edge::new(3, 0, 4),
                Edge::new(0, 2, 5),
            ],
        )
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        assert!((g.avg_degree() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_and_weights() {
        let g = diamond();
        let mut n0: Vec<_> = g.neighbors(0).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![(1, 1), (2, 5), (3, 4)]);
    }

    #[test]
    fn edge_weight_lookup_both_directions() {
        let g = diamond();
        assert_eq!(g.edge_weight(0, 2), Some(5));
        assert_eq!(g.edge_weight(2, 0), Some(5));
        assert_eq!(g.edge_weight(1, 3), None);
    }

    #[test]
    fn edges_iterated_once_each() {
        let g = diamond();
        let mut es: Vec<_> = g.edges().map(|e| (e.u, e.v, e.w)).collect();
        es.sort_unstable();
        assert_eq!(
            es,
            vec![(0, 1, 1), (0, 2, 5), (0, 3, 4), (1, 2, 2), (2, 3, 3)]
        );
    }

    #[test]
    fn max_and_distinct_weights() {
        let g = diamond();
        assert_eq!(g.max_weight(), Some(5));
        assert_eq!(g.distinct_weights(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_graph() {
        let g = Wpg::from_edges(3, &[]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_weight(), None);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn from_edges_threads_is_bit_identical_to_serial() {
        // A messy edge set: skewed degrees, duplicated endpoints across many
        // chunks, weights out of order.
        let n = 50usize;
        let mut edges = Vec::new();
        for i in 0..n as UserId {
            for j in 1..=3u32 {
                let v = (i + j * 7) % n as UserId;
                if v != i && i < v {
                    edges.push(Edge::new(i, v, (i + j) % 9 + 1));
                }
            }
        }
        let serial = Wpg::from_edges(n, &edges);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = Wpg::from_edges_threads(n, &edges, threads);
            assert_eq!(par.offsets, serial.offsets, "threads={threads}");
            assert_eq!(par.nbr_ids, serial.nbr_ids, "threads={threads}");
            assert_eq!(par.nbr_weights, serial.nbr_weights, "threads={threads}");
            assert_eq!(par.m(), serial.m());
        }
        // Empty edge lists must not spawn or misbuild.
        let empty = Wpg::from_edges_threads(4, &[], 8);
        assert_eq!(empty.n(), 4);
        assert_eq!(empty.m(), 0);
    }

    #[test]
    fn refill_is_bit_identical_to_from_edges() {
        let n = 40usize;
        let mut edges = Vec::new();
        for i in 0..n as UserId {
            for j in 1..=2u32 {
                let v = (i + j * 11) % n as UserId;
                if i < v {
                    edges.push(Edge::new(i, v, (i + j) % 6 + 1));
                }
            }
        }
        let fresh = Wpg::from_edges(n, &edges);
        // Refill a graph that previously held something else entirely.
        let mut reused = Wpg::from_edges(7, &[Edge::new(0, 3, 2), Edge::new(1, 2, 1)]);
        reused.refill_from_edges(n, &edges);
        assert_eq!(reused.offsets, fresh.offsets);
        assert_eq!(reused.nbr_ids, fresh.nbr_ids);
        assert_eq!(reused.nbr_weights, fresh.nbr_weights);
        assert_eq!(reused.m(), fresh.m());
        // Refilling with an empty edge list over fewer vertices also works.
        reused.refill_from_edges(3, &[]);
        assert_eq!(reused.n(), 3);
        assert_eq!(reused.m(), 0);
    }

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(5, 2, 7);
        assert_eq!((e.u, e.v), (2, 5));
    }

    #[test]
    fn connected_subset() {
        let g = diamond();
        assert!(g.is_connected_subset(&[0, 1, 2]));
        assert!(g.is_connected_subset(&[0, 1, 2, 3]));
        // 1 and 3 are not adjacent: the subset {1,3} is disconnected.
        assert!(!g.is_connected_subset(&[1, 3]));
        assert!(g.is_connected_subset(&[]));
        assert!(g.is_connected_subset(&[2]));
    }
}
