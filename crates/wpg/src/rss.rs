//! Received-signal-strength models.
//!
//! The clustering algorithms never consume coordinates — only each device's
//! *ranking* of its peers by RSS. Any RSS model that is strictly decreasing
//! in distance therefore yields the exact proximity semantics the paper
//! assumes (§VI: "a simple RSS model that is reversely correlated to the
//! distance"). The noisy log-distance model additionally exercises rank
//! inversions caused by shadowing, which real WiFi measurements exhibit
//! (paper Fig. 1).

use nela_geo::{Point, UserId};

/// A model mapping a transmitter/receiver pair to a signal strength.
/// Larger return values mean *stronger* signal (closer peer).
///
/// `Sync` is a supertrait so WPG builds can score users from multiple
/// threads ([`crate::builder::WpgBuilder::build_threads`]); models are
/// immutable parameter bundles, so this costs implementors nothing.
pub trait RssModel: Sync {
    /// Signal strength measured at `receiver` for a beacon from `sender`.
    ///
    /// The ids are provided so noisy models can derive deterministic per-pair
    /// fading; pure-distance models ignore them.
    fn rss(&self, receiver_id: UserId, receiver: Point, sender_id: UserId, sender: Point) -> f64;

    /// [`RssModel::rss`] with the squared receiver→sender distance already
    /// in hand. The grid's δ-range scan computes `receiver.dist_sq(&sender)`
    /// as a byproduct, so the WPG rank pass calls this to spare
    /// distance-driven models the recomputation.
    ///
    /// Overrides **must** return a value bit-identical to `rss` for
    /// `dist_sq == receiver.dist_sq(&sender)` — the serial/threaded
    /// equivalence contract of the builders depends on it. The default
    /// ignores the hint and delegates.
    #[inline]
    fn rss_from_dist_sq(
        &self,
        receiver_id: UserId,
        receiver: Point,
        sender_id: UserId,
        sender: Point,
        dist_sq: f64,
    ) -> f64 {
        let _ = dist_sq;
        self.rss(receiver_id, receiver, sender_id, sender)
    }
}

/// The paper's evaluation model: strength strictly decreasing in distance,
/// no noise. Implemented as `-distance` — any strictly decreasing transform
/// produces identical rankings, so the simplest one is used.
#[derive(Debug, Clone, Copy, Default)]
pub struct InverseDistanceRss;

impl RssModel for InverseDistanceRss {
    #[inline]
    fn rss(&self, _rid: UserId, receiver: Point, _sid: UserId, sender: Point) -> f64 {
        -receiver.dist(&sender)
    }

    #[inline]
    fn rss_from_dist_sq(
        &self,
        _rid: UserId,
        _receiver: Point,
        _sid: UserId,
        _sender: Point,
        dist_sq: f64,
    ) -> f64 {
        // `Point::dist` is defined as `dist_sq().sqrt()`, so this is the
        // same IEEE operation sequence as `rss` — bit-identical.
        -dist_sq.sqrt()
    }
}

/// Log-distance path-loss with deterministic per-pair shadowing noise:
///
/// `rss(d) = -10·n·log10(d/d0) + X(pair)`,  `X ~ N(0, σ²)` derived from a
/// hash of the (unordered) pair so both directions see the same fade and the
/// model stays reproducible without storing per-pair state.
#[derive(Debug, Clone, Copy)]
pub struct LogDistanceRss {
    /// Path-loss exponent (2 = free space, 3–4 = indoor/urban).
    pub path_loss_exp: f64,
    /// Shadowing standard deviation in dB.
    pub shadowing_db: f64,
    /// Reference distance `d0`.
    pub reference_dist: f64,
    /// Seed folded into the per-pair fade.
    pub seed: u64,
}

impl Default for LogDistanceRss {
    fn default() -> Self {
        LogDistanceRss {
            path_loss_exp: 3.0,
            shadowing_db: 2.0,
            reference_dist: 1e-4,
            seed: 0,
        }
    }
}

impl LogDistanceRss {
    /// Deterministic standard-normal-ish variate for an unordered id pair,
    /// via a SplitMix64 hash mapped through a 12-uniform-sum approximation.
    fn pair_fade(&self, a: UserId, b: UserId) -> f64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut z = self
            .seed
            .wrapping_add((lo as u64) << 32 | hi as u64)
            .wrapping_mul(0x9E3779B97F4A7C15);
        let mut sum = 0.0;
        // Irwin–Hall with n=12: sum of 12 U(0,1) minus 6 ≈ N(0,1).
        for _ in 0..12 {
            z ^= z >> 30;
            z = z.wrapping_mul(0xBF58476D1CE4E5B9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            sum += (z >> 11) as f64 / (1u64 << 53) as f64;
            z = z.wrapping_add(0x9E3779B97F4A7C15);
        }
        sum - 6.0
    }
}

impl RssModel for LogDistanceRss {
    fn rss(&self, rid: UserId, receiver: Point, sid: UserId, sender: Point) -> f64 {
        let d = receiver.dist(&sender).max(self.reference_dist);
        let path_loss = 10.0 * self.path_loss_exp * (d / self.reference_dist).log10();
        -path_loss + self.shadowing_db * self.pair_fade(rid, sid)
    }

    fn rss_from_dist_sq(
        &self,
        rid: UserId,
        _receiver: Point,
        sid: UserId,
        _sender: Point,
        dist_sq: f64,
    ) -> f64 {
        // Same operation sequence as `rss` with `receiver.dist(&sender)`
        // replaced by its definition `dist_sq.sqrt()` — bit-identical.
        let d = dist_sq.sqrt().max(self.reference_dist);
        let path_loss = 10.0 * self.path_loss_exp * (d / self.reference_dist).log10();
        -path_loss + self.shadowing_db * self.pair_fade(rid, sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_distance_orders_by_distance() {
        let m = InverseDistanceRss;
        let me = Point::new(0.5, 0.5);
        let near = Point::new(0.5, 0.51);
        let far = Point::new(0.5, 0.6);
        assert!(m.rss(0, me, 1, near) > m.rss(0, me, 2, far));
    }

    #[test]
    fn inverse_distance_is_symmetric() {
        let m = InverseDistanceRss;
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.4, 0.9);
        assert_eq!(m.rss(0, a, 1, b), m.rss(1, b, 0, a));
    }

    #[test]
    fn log_distance_fade_is_pair_symmetric() {
        let m = LogDistanceRss::default();
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.4, 0.9);
        // Same unordered pair → same fade → same RSS both directions
        // (distance part is symmetric too).
        assert_eq!(m.rss(3, a, 9, b), m.rss(9, b, 3, a));
    }

    #[test]
    fn log_distance_monotone_without_noise() {
        let m = LogDistanceRss {
            shadowing_db: 0.0,
            ..Default::default()
        };
        let me = Point::new(0.5, 0.5);
        let near = Point::new(0.5, 0.502);
        let far = Point::new(0.5, 0.53);
        assert!(m.rss(0, me, 1, near) > m.rss(0, me, 2, far));
    }

    #[test]
    fn log_distance_noise_depends_on_pair_and_seed() {
        let m1 = LogDistanceRss::default();
        let m2 = LogDistanceRss {
            seed: 99,
            ..Default::default()
        };
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.4, 0.9);
        assert_ne!(m1.rss(0, a, 1, b), m2.rss(0, a, 1, b));
        assert_ne!(m1.pair_fade(0, 1), m1.pair_fade(0, 2));
    }

    #[test]
    fn dist_sq_fast_path_is_bit_identical() {
        // The rank pass feeds the grid's precomputed squared distance into
        // `rss_from_dist_sq`; both built-in models must reproduce `rss`
        // exactly or the serial/threaded equivalence contract breaks.
        let pairs = [
            (Point::new(0.1, 0.2), Point::new(0.4, 0.9)),
            (Point::new(0.5, 0.5), Point::new(0.5, 0.5)), // coincident
            (Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            (Point::new(0.25, 0.75), Point::new(0.2500001, 0.75)),
        ];
        let log = LogDistanceRss::default();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let d_sq = a.dist_sq(&b);
            assert_eq!(
                InverseDistanceRss.rss(0, a, 1, b).to_bits(),
                InverseDistanceRss
                    .rss_from_dist_sq(0, a, 1, b, d_sq)
                    .to_bits(),
                "inverse-distance pair {i}"
            );
            assert_eq!(
                log.rss(0, a, 1, b).to_bits(),
                log.rss_from_dist_sq(0, a, 1, b, d_sq).to_bits(),
                "log-distance pair {i}"
            );
        }
    }

    #[test]
    fn fade_is_roughly_standard_normal() {
        let m = LogDistanceRss::default();
        let n = 10_000u32;
        let mut mean = 0.0;
        let mut var = 0.0;
        for i in 0..n {
            let f = m.pair_fade(i, i + 1);
            mean += f;
            var += f * f;
        }
        mean /= n as f64;
        var = var / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
