//! Construction of a WPG from user positions.
//!
//! Mirrors the paper's §VI setup: each user can hear peers within the radio
//! range δ, keeps at most the `M` strongest of them, and the weight of edge
//! `(a, b)` is `min(rank of a in b's RSS-sorted peer list, rank of b in a's
//! list)` — the minimum makes the weight symmetric and "agreed by both"
//! (§IV). An edge exists only when each endpoint appears in the other's
//! retained top-M list, which is what "each user can connect to at most M
//! peers" implies for point-to-point links.

use crate::graph::{Edge, Wpg};
use crate::rss::RssModel;
use nela_geo::{GridIndex, Point, UserId};

/// Flat CSR-style per-user rank lists: user `u`'s retained peers are
/// `peers[offsets[u]..offsets[u+1]]`, strongest first, and a peer's 1-based
/// RSS rank is its position in that slice plus one. Storing ranks implicitly
/// replaces the previous `Vec<Vec<(UserId, u32)>>` (one heap allocation per
/// user and 8 bytes per entry of redundant rank) with two flat arrays the
/// edge pass scans sequentially.
#[derive(Debug, Clone)]
pub(crate) struct RankLists {
    offsets: Vec<u32>,
    peers: Vec<UserId>,
}

impl RankLists {
    /// `u`'s retained peers, strongest first.
    #[inline]
    pub(crate) fn peers_of(&self, u: UserId) -> &[UserId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.peers[lo..hi]
    }

    /// 1-based rank of `x` in `u`'s list, or `None` when not retained.
    /// Linear scan over at most M entries — the lists are tiny.
    #[inline]
    pub(crate) fn rank_of(&self, u: UserId, x: UserId) -> Option<u32> {
        self.peers_of(u)
            .iter()
            .position(|&p| p == x)
            .map(|i| i as u32 + 1)
    }
}

/// Builder of weighted proximity graphs. See module docs for semantics.
#[derive(Debug, Clone)]
pub struct WpgBuilder<R: RssModel> {
    /// Radio range δ: peers farther than this are never heard.
    pub delta: f64,
    /// Peer cap M: each device retains only its M strongest peers.
    pub max_peers: usize,
    /// The RSS measurement model.
    pub rss: R,
}

impl<R: RssModel> WpgBuilder<R> {
    /// Creates a builder with the given radio range, peer cap, and RSS model.
    pub fn new(delta: f64, max_peers: usize, rss: R) -> Self {
        assert!(delta > 0.0, "radio range must be positive");
        assert!(max_peers > 0, "peer cap must be positive");
        WpgBuilder {
            delta,
            max_peers,
            rss,
        }
    }

    /// Builds the WPG over `points`. `O(n · m log m)` where `m` is the mean
    /// in-range peer count.
    pub fn build(&self, points: &[Point]) -> Wpg {
        let index = GridIndex::build(points, self.delta);
        self.build_with_index(points, &index)
    }

    /// Builds the WPG reusing an existing grid index over the same `points`.
    pub fn build_with_index(&self, points: &[Point], index: &GridIndex) -> Wpg {
        self.build_with_index_threads(points, index, 1)
    }

    /// Builds the WPG over `points` splitting the grid build, the per-user
    /// rank lists, and the mutual-edge pass across `threads` scoped worker
    /// threads. Bit-identical to the serial [`WpgBuilder::build`] for any
    /// thread count (see [`WpgBuilder::build_with_index_threads`]).
    pub fn build_threads(&self, points: &[Point], threads: usize) -> Wpg {
        let index = GridIndex::build_threads(points, self.delta, threads);
        self.build_with_index_threads(points, &index, threads)
    }

    /// Builds the WPG reusing an existing grid index, with the per-user rank
    /// lists and the mutual-edge pass split across `threads` scoped worker
    /// threads.
    ///
    /// Every per-user computation is independent and the deterministic
    /// tie-breaks (RSS descending, then id ascending) fix each rank list
    /// uniquely, so chunked execution reassembled in index order yields a
    /// graph **bit-identical** to the serial build for any thread count.
    /// `threads = 1` runs the exact serial loops on the caller's thread.
    pub fn build_with_index_threads(
        &self,
        points: &[Point],
        index: &GridIndex,
        threads: usize,
    ) -> Wpg {
        assert_eq!(points.len(), index.len(), "index does not match points");
        let _build_span = nela_obs::span(nela_obs::stage::WPG_BUILD);
        let n = points.len();
        // Per-user top-M peer lists, chunked over users. Each chunk appends
        // into one flat arena (`peers` + per-user lengths) instead of
        // allocating a Vec per user; the δ-query and score scratch buffers
        // are likewise reused across every user of the chunk, so a chunk's
        // allocation count is O(1) after the buffers reach steady size.
        let rank_span = nela_obs::span(nela_obs::stage::WPG_RANK);
        let chunk_lists: Vec<(Vec<UserId>, Vec<u32>)> = nela_par::map_chunks(threads, n, |range| {
            let mut buf: Vec<(UserId, f64)> = Vec::new();
            let mut scored: Vec<(f64, UserId)> = Vec::new();
            let mut peers: Vec<UserId> = Vec::new();
            let mut lens: Vec<u32> = Vec::with_capacity(range.len());
            for u in range {
                let u = u as UserId;
                index.neighbors_within(u, self.delta, &mut buf);
                scored.clear();
                scored.extend(buf.iter().map(|&(v, d_sq)| {
                    // The grid already computed the squared distance;
                    // distance-driven models skip recomputing it.
                    (
                        self.rss.rss_from_dist_sq(
                            u,
                            points[u as usize],
                            v,
                            points[v as usize],
                            d_sq,
                        ),
                        v,
                    )
                }));
                // Strongest first; tie-break on id so the build is
                // deterministic.
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                scored.truncate(self.max_peers);
                peers.extend(scored.iter().map(|&(_, v)| v));
                lens.push(scored.len() as u32);
            }
            (peers, lens)
        });
        // Stitch the chunk arenas into one CSR in chunk (= user) order.
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let total: usize = chunk_lists.iter().map(|(p, _)| p.len()).sum();
        let mut peers: Vec<UserId> = Vec::with_capacity(total);
        let mut acc = 0u32;
        for (chunk_peers, lens) in chunk_lists {
            for len in lens {
                acc += len;
                offsets.push(acc);
            }
            peers.extend(chunk_peers);
        }
        let rank_of = RankLists { offsets, peers };
        drop(rank_span);
        // Mutual edges with min-rank weights: each chunk emits the edges
        // whose lower endpoint falls in its range; concatenating in chunk
        // order reproduces the serial emission order exactly. Ranks are the
        // (position + 1) of a peer in the flat list, so iterating a slice in
        // order recovers exactly the ranks the old (id, rank) pairs stored.
        let edge_span = nela_obs::span(nela_obs::stage::WPG_EDGES);
        let rank_of_ref = &rank_of;
        let edge_chunks: Vec<Vec<Edge>> = nela_par::map_chunks(threads, n, move |range| {
            let mut edges = Vec::new();
            for u in range {
                let u = u as UserId;
                for (i, &v) in rank_of_ref.peers_of(u).iter().enumerate() {
                    if v <= u {
                        continue; // handle each unordered pair once, from the lower id
                    }
                    let rank_v_at_u = i as u32 + 1;
                    if let Some(rank_u_at_v) = rank_of_ref.rank_of(v, u) {
                        edges.push(Edge::new(u, v, rank_v_at_u.min(rank_u_at_v)));
                    }
                }
            }
            edges
        });
        let mut edges = Vec::new();
        for chunk in edge_chunks {
            edges.extend(chunk);
        }
        drop(edge_span);
        // CSR assembly was the build's last serial stage; the counting-sort
        // fill is bit-identical to the serial `from_edges`.
        let _csr_span = nela_obs::span(nela_obs::stage::WPG_CSR);
        Wpg::from_edges_threads(n, &edges, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rss::InverseDistanceRss;

    fn line_points() -> Vec<Point> {
        // Users on a line at x = 0.1, 0.2, ..., 0.5.
        (1..=5).map(|i| Point::new(i as f64 * 0.1, 0.5)).collect()
    }

    #[test]
    fn ranks_are_mutual_minimum() {
        let pts = line_points();
        // δ large enough to hear everyone, M = 2.
        let g = WpgBuilder::new(1.0, 2, InverseDistanceRss).build(&pts);
        // User 0 (x=0.1) hears 1 (rank 1) and 2 (rank 2).
        // User 2 (x=0.3) hears 1 and 3 (ranks 1,2 by tie-break on id).
        // Edge (0,1): rank of 1 at 0 is 1; rank of 0 at 1 is 1 (distance tie
        // between 0 and 2 at distance 0.1 broken toward lower id). Weight 1.
        assert_eq!(g.edge_weight(0, 1), Some(1));
        // Edge (0,2) requires mutual membership: 2 keeps {1,3}, not 0 → absent.
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn degree_bounded_by_m() {
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                let a = i as f64 / 40.0 * std::f64::consts::TAU;
                Point::new(0.5 + 0.01 * a.cos(), 0.5 + 0.01 * a.sin())
            })
            .collect();
        let m = 5;
        let g = WpgBuilder::new(1.0, m, InverseDistanceRss).build(&pts);
        for u in 0..g.n() as UserId {
            assert!(g.degree(u) <= m, "degree of {u} exceeds M");
        }
    }

    #[test]
    fn delta_limits_edges() {
        let pts = line_points();
        // δ = 0.15 only reaches immediate line neighbors (0.1 apart).
        let g = WpgBuilder::new(0.15, 10, InverseDistanceRss).build(&pts);
        assert_eq!(g.m(), 4); // a path graph
        assert_eq!(g.edge_weight(0, 2), None);
        assert!(g.edge_weight(1, 2).is_some());
    }

    #[test]
    fn weights_bounded_by_m() {
        let pts = nela_geo::DatasetSpec::small_uniform(300, 9).generate();
        let m = 6;
        let g = WpgBuilder::new(0.1, m, InverseDistanceRss).build(&pts);
        assert!(g.m() > 0);
        for e in g.edges() {
            assert!(e.w >= 1 && e.w <= m as u32);
        }
    }

    #[test]
    fn deterministic_for_same_input() {
        let pts = nela_geo::DatasetSpec::small_uniform(200, 4).generate();
        let b = WpgBuilder::new(0.08, 8, InverseDistanceRss);
        let g1 = b.build(&pts);
        let g2 = b.build(&pts);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn isolated_users_have_no_edges() {
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.9),
            Point::new(0.1, 0.9),
        ];
        let g = WpgBuilder::new(0.01, 4, InverseDistanceRss).build(&pts);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        let pts = nela_geo::DatasetSpec::small_uniform(600, 21).generate();
        let b = WpgBuilder::new(0.08, 6, InverseDistanceRss);
        let serial = b.build(&pts);
        let serial_edges: Vec<_> = serial.edges().collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let par = b.build_threads(&pts, threads);
            let par_edges: Vec<_> = par.edges().collect();
            assert_eq!(par_edges, serial_edges, "threads={threads}");
        }
    }

    #[test]
    fn larger_m_never_decreases_degree() {
        let pts = nela_geo::DatasetSpec::small_uniform(500, 12).generate();
        let g4 = WpgBuilder::new(0.1, 4, InverseDistanceRss).build(&pts);
        let g16 = WpgBuilder::new(0.1, 16, InverseDistanceRss).build(&pts);
        assert!(g16.avg_degree() >= g4.avg_degree());
    }
}
