//! Weighted Proximity Graph (WPG) substrate.
//!
//! The paper performs location cloaking on *proximity* information instead of
//! coordinates: each mobile device ranks its radio peers by received signal
//! strength (RSS), and the rank — not any coordinate — becomes the edge
//! weight of an undirected weighted graph, the WPG (§III–IV of the paper).
//!
//! This crate provides:
//!
//! - [`rss`] — RSS measurement models (the paper's distance-monotone model
//!   plus a noisy log-distance model used for robustness testing),
//! - [`graph`] — a compact CSR representation of the WPG ([`Wpg`]),
//! - [`builder`] — construction of a WPG from user positions under a radio
//!   range δ and a peer cap M, with the paper's mutual-rank edge weights,
//! - [`incremental`] — incremental maintenance of the WPG under mobility:
//!   only users in the δ-neighborhood of a move are re-scored, with an
//!   exact-equivalence guarantee against a from-scratch build,
//! - [`connectivity`] — t-connectivity primitives (Definition 4.1) and a
//!   union-find used by the clustering algorithms,
//! - [`topology`] — synthetic graph topologies (ring lattice, small world,
//!   random regular) for evaluating the clustering algorithms under the
//!   "various proximity topologies" of the paper's abstract.

pub mod builder;
pub mod connectivity;
pub mod graph;
pub mod incremental;
pub mod rss;
pub mod topology;

pub use builder::WpgBuilder;
pub use connectivity::DisjointSets;
pub use graph::{Edge, Wpg};
pub use incremental::{IncrementalWpg, UpdateStats};
pub use rss::{InverseDistanceRss, LogDistanceRss, RssModel};

/// Edge weights are small positive integers: RSS ranks (1..=M) in built
/// graphs, arbitrary positive values in synthetic topologies.
pub type Weight = u32;
