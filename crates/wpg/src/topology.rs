//! Synthetic proximity-graph topologies.
//!
//! The paper motivates replacing cluster diameter with the maximum edge
//! weight by noting that wireless topologies "tend to be clustered and small
//! world graphs which consist of regular graphs plus a few random edges"
//! (§IV, citing Helmy). These generators let the clustering algorithms be
//! evaluated directly on such abstract topologies, independent of any
//! geometric embedding:
//!
//! - [`ring_lattice`] — the k-regular ring, the substrate of small worlds,
//! - [`small_world`] — Watts–Strogatz rewiring of the ring lattice,
//! - [`random_regular`] — pairing-model random d-regular graphs,
//! - [`grid_graph`] — a 4-neighbor mesh.
//!
//! Weights are drawn uniformly from `1..=w_max` (think: RSS ranks), seeded.

use crate::graph::{Edge, Wpg};
use crate::Weight;
use nela_geo::UserId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

fn random_weight(rng: &mut ChaCha8Rng, w_max: Weight) -> Weight {
    rng.gen_range(1..=w_max.max(1))
}

/// Ring lattice: `n` vertices, each joined to its `k/2` nearest neighbors on
/// each side (`k` must be even and `< n`).
pub fn ring_lattice(n: usize, k: usize, w_max: Weight, seed: u64) -> Wpg {
    assert!(k % 2 == 0 && k < n, "k must be even and < n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            edges.push(Edge::new(
                u as UserId,
                v as UserId,
                random_weight(&mut rng, w_max),
            ));
        }
    }
    Wpg::from_edges(n, &edges)
}

/// Watts–Strogatz small world: ring lattice with each edge's far endpoint
/// rewired with probability `beta` (avoiding self loops and duplicates).
pub fn small_world(n: usize, k: usize, beta: f64, w_max: Weight, seed: u64) -> Wpg {
    assert!(k % 2 == 0 && k < n, "k must be even and < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut present: HashSet<(UserId, UserId)> = HashSet::new();
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k / 2);
    let key = |a: UserId, b: UserId| if a < b { (a, b) } else { (b, a) };
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            present.insert(key(u as UserId, v as UserId));
        }
    }
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let (mut a, mut b) = (u as UserId, v as UserId);
            if rng.gen::<f64>() < beta {
                // try a few times to find a fresh endpoint
                for _ in 0..16 {
                    let w = rng.gen_range(0..n) as UserId;
                    if w != a && !present.contains(&key(a, w)) {
                        present.remove(&key(a, b));
                        present.insert(key(a, w));
                        b = w;
                        break;
                    }
                }
            }
            let _ = &mut a;
            edges.push(Edge::new(a, b, random_weight(&mut rng, w_max)));
        }
    }
    // Deduplicate (rewiring may have collided despite the retry loop).
    let mut seen = HashSet::new();
    edges.retain(|e| seen.insert((e.u, e.v)));
    Wpg::from_edges(n, &edges)
}

/// Random d-regular-ish graph via the configuration model with rejection of
/// self loops and duplicate edges; a few vertices may fall short of `d` when
/// the final matching is infeasible, matching standard practice.
pub fn random_regular(n: usize, d: usize, w_max: Weight, seed: u64) -> Wpg {
    assert!(n * d % 2 == 0, "n·d must be even");
    assert!(d < n, "degree must be < n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'attempt: for _ in 0..64 {
        let mut stubs: Vec<UserId> = (0..n as UserId)
            .flat_map(|u| std::iter::repeat(u).take(d))
            .collect();
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut seen = HashSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'attempt;
            }
            let k = if a < b { (a, b) } else { (b, a) };
            if !seen.insert(k) {
                continue 'attempt;
            }
            edges.push(Edge::new(a, b, random_weight(&mut rng, w_max)));
        }
        return Wpg::from_edges(n, &edges);
    }
    // Deterministic fallback: the ring lattice is d-regular for even d.
    ring_lattice(n, d & !1, w_max, seed)
}

/// `rows × cols` mesh with 4-neighborhood.
pub fn grid_graph(rows: usize, cols: usize, w_max: Weight, seed: u64) -> Wpg {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let id = |r: usize, c: usize| (r * cols + c) as UserId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(
                    id(r, c),
                    id(r, c + 1),
                    random_weight(&mut rng, w_max),
                ));
            }
            if r + 1 < rows {
                edges.push(Edge::new(
                    id(r, c),
                    id(r + 1, c),
                    random_weight(&mut rng, w_max),
                ));
            }
        }
    }
    Wpg::from_edges(rows * cols, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{components_under, nothing_removed};

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(20, 4, 5, 1);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn ring_lattice_is_connected() {
        let g = ring_lattice(50, 2, 3, 2);
        let comps = components_under(&g, 3, &nothing_removed);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn small_world_preserves_edge_count_and_stays_near_regular() {
        let g = small_world(100, 6, 0.1, 10, 3);
        assert_eq!(g.n(), 100);
        // Rewiring can only drop edges on rare dedup collisions.
        assert!(g.m() >= 290 && g.m() <= 300, "m = {}", g.m());
        let avg = g.avg_degree();
        assert!((avg - 6.0).abs() < 0.3, "avg degree {avg}");
    }

    #[test]
    fn small_world_zero_beta_equals_lattice_structure() {
        let g = small_world(30, 4, 0.0, 1, 7);
        for u in 0..30 {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(40, 4, 8, 5);
        assert_eq!(g.n(), 40);
        // Configuration model with rejection: exact regularity on success.
        for u in 0..40 {
            assert_eq!(g.degree(u), 4, "vertex {u}");
        }
    }

    #[test]
    fn grid_graph_shape() {
        let g = grid_graph(3, 4, 2, 11);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical edges
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn weights_within_range() {
        for g in [
            ring_lattice(20, 4, 7, 1),
            small_world(20, 4, 0.3, 7, 1),
            random_regular(20, 4, 7, 1),
            grid_graph(4, 5, 7, 1),
        ] {
            for e in g.edges() {
                assert!(e.w >= 1 && e.w <= 7);
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a: Vec<_> = small_world(50, 4, 0.2, 9, 42).edges().collect();
        let b: Vec<_> = small_world(50, 4, 0.2, 9, 42).edges().collect();
        assert_eq!(a, b);
    }
}
