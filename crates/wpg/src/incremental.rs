//! Incremental WPG maintenance under user mobility.
//!
//! [`crate::WpgBuilder`] recomputes every user's δ-range query, RSS scores,
//! and top-M rank list on each call — O(n · m log m) per snapshot. When only
//! a fraction of the population moves between snapshots, almost all of that
//! work is redundant: a user's rank list can only change when some *mover*
//! was within radio range of it before the move or is within range after.
//!
//! [`IncrementalWpg`] exploits that locality. It owns a
//! [`nela_geo::ShardedDynamicGrid`] — region-sharded with per-shard dirty
//! queues — plus flat per-user rank arenas, and on
//! [`IncrementalWpg::apply_moves`]:
//!
//! 1. stages every move in the grid and commits the batch in one pass (only
//!    shards containing movers rebuild their cell structure),
//! 2. computes the **dirty set** from the grid's source-cell queues: the 3×3
//!    cell dilation of every cell a mover left or entered. Marking costs
//!    O(movers + dirty cells), not a δ-probe per mover,
//! 3. re-runs the δ-query + RSS-sort + truncate-to-M pipeline for dirty
//!    users only — optionally chunked over `threads` workers, bit-identical
//!    to the serial order — and records which users' rank lists *actually*
//!    changed (clean users survive the tick with their epoch's lists).
//!
//! **Exactness.** Cell side ≥ δ, so any user within δ of a mover's old or
//! new position lives in the 3×3 dilation of the mover's old or new cell:
//! the dirty set is a conservative superset of every user whose in-range
//! peer set could have changed. A user outside it retains the same peers at
//! unchanged positions, and the sort key `(rss desc, id asc)` is a total
//! order, so its rank list is bit-identical to a from-scratch build; a dirty
//! user is recomputed by the builder's exact pipeline. The rescore of a user
//! whose neighborhood did not change is idempotent, so over-approximation
//! never changes the result. [`IncrementalWpg::snapshot`] therefore
//! reconstructs a graph equal (vertices, edges, weights) to
//! `WpgBuilder::build(current positions)`; the property tests in
//! `tests/incremental_equivalence.rs` check this on random move batches
//! across shard and thread counts.

use crate::builder::WpgBuilder;
use crate::graph::{Edge, Wpg};
use crate::rss::RssModel;
use nela_geo::{GridError, Point, ShardedDynamicGrid, UserId};

/// Counters describing one [`IncrementalWpg::apply_moves`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Unique users moved (duplicate ids in the batch count once; the last
    /// position per id wins).
    pub moved: usize,
    /// Users whose rank list was recomputed (dirty-region superset).
    pub dirty: usize,
    /// Users whose rank list actually changed — the exact set of users whose
    /// incident edges may differ from the previous tick.
    pub changed: usize,
}

/// A WPG kept up to date under a stream of position updates.
#[derive(Debug, Clone)]
pub struct IncrementalWpg<R: RssModel> {
    builder: WpgBuilder<R>,
    grid: ShardedDynamicGrid,
    /// Worker threads for the dirty-set rescore and threaded snapshots.
    threads: usize,
    /// Flat rank arena: user `u`'s retained peers, strongest first, are
    /// `rank_peers[u·M .. u·M + rank_len[u]]`; a peer's 1-based rank is its
    /// position in that row plus one (`M = builder.max_peers`).
    rank_peers: Vec<UserId>,
    rank_len: Vec<u32>,
    /// Scratch buffers reused across updates.
    buf: Vec<(UserId, f64)>,
    scored: Vec<(f64, UserId)>,
    dirty_ids: Vec<UserId>,
    changed_ids: Vec<UserId>,
    edges_scratch: Vec<Edge>,
    /// Epoch-stamped per-user marks for unique-mover counting.
    seen_mark: Vec<u32>,
    seen_epoch: u32,
}

impl<R: RssModel> IncrementalWpg<R> {
    /// Builds the initial state from scratch over `points` with the default
    /// shard layout, rescoring serially.
    pub fn new(builder: WpgBuilder<R>, points: &[Point]) -> Self {
        Self::with_topology(builder, points, nela_geo::sharded::DEFAULT_SHARDS, 1)
    }

    /// Builds the initial state with an explicit region-shard count and
    /// rescore thread count. Both only affect performance: the maintained
    /// graph is bit-identical for every `(shards, threads)` combination.
    pub fn with_topology(
        builder: WpgBuilder<R>,
        points: &[Point],
        shards: usize,
        threads: usize,
    ) -> Self {
        let grid = ShardedDynamicGrid::build_with_shards(points, builder.delta, shards);
        let n = points.len();
        let m = builder.max_peers;
        let mut this = IncrementalWpg {
            builder,
            grid,
            threads: threads.max(1),
            rank_peers: vec![0; n * m],
            rank_len: vec![0; n],
            buf: Vec::new(),
            scored: Vec::new(),
            dirty_ids: Vec::new(),
            changed_ids: Vec::new(),
            edges_scratch: Vec::new(),
            seen_mark: vec![0; n],
            seen_epoch: 0,
        };
        let all: Vec<UserId> = (0..n as UserId).collect();
        this.rescore_batch(&all);
        this.changed_ids.clear();
        this
    }

    /// Number of users.
    #[inline]
    pub fn len(&self) -> usize {
        self.rank_len.len()
    }

    /// True when the population is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rank_len.is_empty()
    }

    /// Current positions, indexed by id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        self.grid.points()
    }

    /// The underlying sharded grid (for δ-queries against current state).
    #[inline]
    pub fn grid(&self) -> &ShardedDynamicGrid {
        &self.grid
    }

    /// The radio range δ this graph is maintained under.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.builder.delta
    }

    /// Sets the rescore/snapshot worker-thread count (1 = serial; results
    /// are bit-identical for any value).
    #[inline]
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// `u`'s current retained peers, strongest first; a peer's 1-based RSS
    /// rank is its position in the slice plus one.
    #[inline]
    pub fn peers_of(&self, u: UserId) -> &[UserId] {
        let lo = u as usize * self.builder.max_peers;
        &self.rank_peers[lo..lo + self.rank_len[u as usize] as usize]
    }

    /// Users whose rank list changed in the last [`IncrementalWpg::apply_moves`]
    /// batch — exactly the users whose incident WPG edges may differ from
    /// the previous tick (an edge weight is the min of its endpoints' ranks,
    /// so an edge can only change when an endpoint's list changed).
    #[inline]
    pub fn changed_users(&self) -> &[UserId] {
        &self.changed_ids
    }

    /// Recomputes the rank rows of every user in `dirty` (serially or
    /// chunked over `self.threads` — bit-identical either way since each
    /// user's pipeline reads only the committed grid), appending the users
    /// whose rows actually changed to `self.changed_ids`.
    fn rescore_batch(&mut self, dirty: &[UserId]) {
        if self.threads <= 1 || dirty.len() < 2 {
            for &u in dirty {
                self.rescore_serial(u);
            }
            return;
        }
        // Parallel: chunks compute fresh rank rows into per-chunk arenas
        // against the shared immutable grid; the write-back below runs on
        // the caller thread in chunk (= dirty) order.
        let grid = &self.grid;
        let builder = &self.builder;
        let chunk_rows: Vec<(Vec<UserId>, Vec<u32>)> =
            nela_par::map_chunks(self.threads, dirty.len(), move |range| {
                let mut buf: Vec<(UserId, f64)> = Vec::new();
                let mut scored: Vec<(f64, UserId)> = Vec::new();
                let mut peers: Vec<UserId> = Vec::new();
                let mut lens: Vec<u32> = Vec::with_capacity(range.len());
                let points = grid.points();
                for i in range {
                    let u = dirty[i];
                    grid.neighbors_within(u, builder.delta, &mut buf);
                    let pu = points[u as usize];
                    scored.clear();
                    scored.extend(buf.iter().map(|&(v, d_sq)| {
                        (
                            builder
                                .rss
                                .rss_from_dist_sq(u, pu, v, points[v as usize], d_sq),
                            v,
                        )
                    }));
                    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                    scored.truncate(builder.max_peers);
                    peers.extend(scored.iter().map(|&(_, v)| v));
                    lens.push(scored.len() as u32);
                }
                (peers, lens)
            });
        let mut i = 0;
        for (peers, lens) in chunk_rows {
            let mut lo = 0usize;
            for len in lens {
                let u = dirty[i];
                i += 1;
                self.store_row(u, &peers[lo..lo + len as usize]);
                lo += len as usize;
            }
        }
    }

    /// Serial rescore of `u`: the exact `WpgBuilder::build_with_index`
    /// pipeline (δ-query with grid-computed squared distances → RSS fast
    /// path → `(rss desc, id asc)` sort → truncate to M).
    fn rescore_serial(&mut self, u: UserId) {
        self.grid
            .neighbors_within(u, self.builder.delta, &mut self.buf);
        let points = self.grid.points();
        let pu = points[u as usize];
        self.scored.clear();
        // The grid query yields each peer's squared distance from `u`'s
        // current position with the same operand order as `rss` would use,
        // so the d_sq fast path stays bit-identical to the full-build
        // pipeline.
        self.scored.extend(self.buf.iter().map(|&(v, d_sq)| {
            (
                self.builder
                    .rss
                    .rss_from_dist_sq(u, pu, v, points[v as usize], d_sq),
                v,
            )
        }));
        self.scored
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        self.scored.truncate(self.builder.max_peers);
        let lo = u as usize * self.builder.max_peers;
        let old_len = self.rank_len[u as usize] as usize;
        let unchanged = old_len == self.scored.len()
            && self
                .scored
                .iter()
                .zip(&self.rank_peers[lo..lo + old_len])
                .all(|(&(_, v), &p)| v == p);
        if unchanged {
            return;
        }
        for (i, &(_, v)) in self.scored.iter().enumerate() {
            self.rank_peers[lo + i] = v;
        }
        self.rank_len[u as usize] = self.scored.len() as u32;
        self.changed_ids.push(u);
    }

    /// Writes `peers` (strongest first) as `u`'s rank row if it differs from
    /// the current one, maintaining the changed list.
    fn store_row(&mut self, u: UserId, peers: &[UserId]) {
        let m = self.builder.max_peers;
        let lo = u as usize * m;
        let old_len = self.rank_len[u as usize] as usize;
        if old_len == peers.len() && &self.rank_peers[lo..lo + old_len] == peers {
            return;
        }
        self.rank_peers[lo..lo + peers.len()].copy_from_slice(peers);
        self.rank_len[u as usize] = peers.len() as u32;
        self.changed_ids.push(u);
    }

    /// Applies a batch of position updates and restores WPG exactness.
    ///
    /// When the same id appears multiple times in `moves`, positions are
    /// applied in order and the last one wins (and the id counts once in
    /// `moved`). Returns the batch counters.
    ///
    /// # Panics
    /// Panics if a move names an id outside the population; use
    /// [`IncrementalWpg::try_apply_moves`] for untrusted batches.
    pub fn apply_moves(&mut self, moves: &[(UserId, Point)]) -> UpdateStats {
        self.try_apply_moves(moves)
            .expect("apply_moves: id outside population")
    }

    /// [`IncrementalWpg::apply_moves`] that rejects out-of-range ids with a
    /// typed error. Moves preceding the offending entry are already staged
    /// and are committed (with their neighborhoods rescored) before
    /// returning the error, so the graph stays exact for the applied prefix.
    pub fn try_apply_moves(&mut self, moves: &[(UserId, Point)]) -> Result<UpdateStats, GridError> {
        // Phase 1: stage every move. Staging updates positions immediately
        // and marks old/new cells as this epoch's source cells; the δ-range
        // structure is committed once below, so the rescores all run against
        // final positions and a mover probed near another mover's old spot
        // cannot be missed.
        let stage_span = nela_obs::span(nela_obs::stage::INC_STAGE);
        self.grid.begin_tick();
        self.seen_epoch = self.seen_epoch.wrapping_add(1);
        if self.seen_epoch == 0 {
            self.seen_mark.iter_mut().for_each(|m| *m = 0);
            self.seen_epoch = 1;
        }
        let mut moved = 0usize;
        let mut first_error: Option<GridError> = None;
        for &(id, pos) in moves {
            match self.grid.try_stage_move(id, pos) {
                Ok(_) => {
                    if self.seen_mark[id as usize] != self.seen_epoch {
                        self.seen_mark[id as usize] = self.seen_epoch;
                        moved += 1;
                    }
                }
                Err(e) => {
                    first_error = Some(e);
                    break;
                }
            }
        }
        drop(stage_span);
        // Phase 2: commit — only shards containing movers rebuild.
        let commit_span = nela_obs::span(nela_obs::stage::INC_COMMIT);
        self.grid.commit_moves();
        drop(commit_span);

        // Phase 3: rescore the dirty-region users against the committed grid.
        let collect_span = nela_obs::span(nela_obs::stage::INC_COLLECT);
        let mut dirty = std::mem::take(&mut self.dirty_ids);
        self.grid.collect_dirty_users(&mut dirty);
        drop(collect_span);
        let rescore_span = nela_obs::span(nela_obs::stage::INC_RESCORE);
        self.changed_ids.clear();
        self.rescore_batch(&dirty);
        drop(rescore_span);
        let stats = UpdateStats {
            moved,
            dirty: dirty.len(),
            changed: self.changed_ids.len(),
        };
        self.dirty_ids = dirty;
        match first_error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Emits the mutual min-rank edges whose lower endpoint lies in
    /// `users` — the exact emission order of `WpgBuilder`'s edge pass (u
    /// ascending, peers in rank order). The reverse rank is a linear probe of
    /// the peer's ≤ M-entry rank row, the same scan the builder's `rank_of`
    /// uses — cheaper than maintaining an id-sorted mirror in every rescore.
    fn emit_edges(&self, users: std::ops::Range<usize>, edges: &mut Vec<Edge>) {
        let m = self.builder.max_peers;
        for u in users {
            let u = u as UserId;
            let lo = u as usize * m;
            let len = self.rank_len[u as usize] as usize;
            for (i, &v) in self.rank_peers[lo..lo + len].iter().enumerate() {
                if v <= u {
                    continue; // handle each unordered pair once, from the lower id
                }
                let rank_v_at_u = i as u32 + 1;
                let vlo = v as usize * m;
                let vlen = self.rank_len[v as usize] as usize;
                if let Some(at) = self.rank_peers[vlo..vlo + vlen]
                    .iter()
                    .position(|&p| p == u)
                {
                    let rank_u_at_v = at as u32 + 1;
                    edges.push(Edge::new(u, v, rank_v_at_u.min(rank_u_at_v)));
                }
            }
        }
    }

    /// Materializes the current graph. Runs only the mutual min-rank edge
    /// pass (O(n · M log M)); the expensive δ-query/sort work is already
    /// folded into the maintained rank lists.
    pub fn snapshot(&self) -> Wpg {
        self.snapshot_threads(1)
    }

    /// [`IncrementalWpg::snapshot`] with the edge emission and CSR fill
    /// chunked over `threads` workers — bit-identical to the serial snapshot
    /// for any thread count (chunk concatenation reproduces the serial
    /// emission order; `Wpg::from_edges_threads` is pinned bit-identical).
    pub fn snapshot_threads(&self, threads: usize) -> Wpg {
        let n = self.rank_len.len();
        if threads <= 1 {
            let mut edges = Vec::new();
            self.emit_edges(0..n, &mut edges);
            return Wpg::from_edges(n, &edges);
        }
        let chunks: Vec<Vec<Edge>> = nela_par::map_chunks(threads, n, |range| {
            let mut edges = Vec::new();
            self.emit_edges(range, &mut edges);
            edges
        });
        let mut edges = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            edges.extend(chunk);
        }
        Wpg::from_edges_threads(n, &edges, threads)
    }

    /// Rebuilds `wpg` in place from the current rank lists, reusing both the
    /// edge scratch owned by `self` and `wpg`'s CSR buffers — the alloc-free
    /// steady-state snapshot for per-tick serving. The result is
    /// bit-identical to [`IncrementalWpg::snapshot`].
    pub fn snapshot_into(&mut self, wpg: &mut Wpg) {
        let n = self.rank_len.len();
        let mut edges = std::mem::take(&mut self.edges_scratch);
        edges.clear();
        let emit_span = nela_obs::span(nela_obs::stage::INC_EMIT);
        self.emit_edges(0..n, &mut edges);
        drop(emit_span);
        let refill_span = nela_obs::span(nela_obs::stage::INC_REFILL);
        wpg.refill_from_edges(n, &edges);
        drop(refill_span);
        self.edges_scratch = edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rss::{InverseDistanceRss, LogDistanceRss};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
    }

    fn assert_graphs_equal(a: &Wpg, b: &Wpg) {
        assert_eq!(a.n(), b.n());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn fresh_state_matches_builder() {
        let pts = random_points(300, 11);
        let builder = WpgBuilder::new(0.08, 6, InverseDistanceRss);
        let inc = IncrementalWpg::new(builder.clone(), &pts);
        assert_graphs_equal(&inc.snapshot(), &builder.build(&pts));
    }

    #[test]
    fn single_move_matches_rebuild() {
        let pts = random_points(200, 3);
        let builder = WpgBuilder::new(0.1, 5, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let stats = inc.apply_moves(&[(17, Point::new(0.5, 0.5))]);
        assert!(stats.dirty >= 1);
        assert_eq!(stats.moved, 1);
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn batched_moves_match_rebuild_across_ticks() {
        let pts = random_points(400, 8);
        let builder = WpgBuilder::new(0.07, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _tick in 0..10 {
            let moves: Vec<(UserId, Point)> = (0..40)
                .map(|_| (rng.gen_range(0..400u32), Point::new(rng.gen(), rng.gen())))
                .collect();
            inc.apply_moves(&moves);
            assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
        }
    }

    #[test]
    fn works_with_noisy_rss_model() {
        // Exactness must not depend on the RSS model being distance-monotone.
        let pts = random_points(250, 5);
        let builder = WpgBuilder::new(0.09, 5, LogDistanceRss::default());
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let moves: Vec<(UserId, Point)> = (0..25)
            .map(|_| (rng.gen_range(0..250u32), Point::new(rng.gen(), rng.gen())))
            .collect();
        inc.apply_moves(&moves);
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn duplicate_ids_in_batch_last_position_wins() {
        let pts = random_points(100, 9);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        inc.apply_moves(&[
            (3, Point::new(0.2, 0.2)),
            (3, Point::new(0.9, 0.9)),
            (3, Point::new(0.4, 0.6)),
        ]);
        assert_eq!(inc.points()[3], Point::new(0.4, 0.6));
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn moved_counts_unique_ids_not_batch_entries() {
        // Regression: `moved` must be the deduplicated mover count the field
        // doc promises, not `moves.len()`.
        let pts = random_points(120, 13);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let stats = inc.apply_moves(&[
            (3, Point::new(0.2, 0.2)),
            (7, Point::new(0.8, 0.1)),
            (3, Point::new(0.9, 0.9)),
            (7, Point::new(0.3, 0.3)),
            (3, Point::new(0.4, 0.6)),
        ]);
        assert_eq!(stats.moved, 2, "5 batch entries over 2 unique ids");
        // And the dedup state resets between batches.
        let stats = inc.apply_moves(&[(3, Point::new(0.1, 0.1))]);
        assert_eq!(stats.moved, 1);
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pts = random_points(120, 2);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let before: Vec<_> = inc.snapshot().edges().collect();
        let stats = inc.apply_moves(&[]);
        assert_eq!(
            stats,
            UpdateStats {
                moved: 0,
                dirty: 0,
                changed: 0
            }
        );
        let after: Vec<_> = inc.snapshot().edges().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn out_of_range_move_is_rejected_typed() {
        let pts = random_points(50, 4);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let err = inc
            .try_apply_moves(&[(2, Point::new(0.5, 0.5)), (50, Point::new(0.1, 0.1))])
            .unwrap_err();
        assert_eq!(
            err,
            GridError::UnknownId {
                id: 50,
                population: 50
            }
        );
        // The valid prefix was applied and the graph is still exact.
        assert_eq!(inc.points()[2], Point::new(0.5, 0.5));
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn dirty_set_is_local_for_small_moves() {
        // A single short move in a sparse corner must not dirty the whole
        // population.
        let pts = random_points(1000, 14);
        let builder = WpgBuilder::new(0.03, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder, &pts);
        let from = inc.points()[0];
        let nudged = Point::new(
            (from.x + 0.001).clamp(0.0, 1.0),
            (from.y + 0.001).clamp(0.0, 1.0),
        );
        let stats = inc.apply_moves(&[(0, nudged)]);
        assert!(
            stats.dirty < 100,
            "a 0.001 nudge dirtied {} of 1000 users",
            stats.dirty
        );
        assert!(stats.changed <= stats.dirty);
    }

    #[test]
    fn changed_users_is_exact_for_far_teleport() {
        // Teleporting an isolated corner user far away changes its own list
        // (and any users gaining/losing it as a peer) but no one else's.
        let mut pts = random_points(300, 17);
        pts[0] = Point::new(0.001, 0.001);
        let builder = WpgBuilder::new(0.05, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let before: Vec<Vec<UserId>> = (0..300).map(|u| inc.peers_of(u).to_vec()).collect();
        let stats = inc.apply_moves(&[(0, Point::new(0.5, 0.5))]);
        let changed: std::collections::HashSet<UserId> =
            inc.changed_users().iter().copied().collect();
        assert_eq!(changed.len(), stats.changed);
        for u in 0..300u32 {
            let now = inc.peers_of(u);
            if changed.contains(&u) {
                assert_ne!(now, &before[u as usize][..], "user {u} marked but equal");
            } else {
                assert_eq!(now, &before[u as usize][..], "user {u} changed unmarked");
            }
        }
    }

    #[test]
    fn threaded_rescore_and_snapshot_are_bit_identical() {
        let pts = random_points(500, 23);
        let builder = WpgBuilder::new(0.06, 6, InverseDistanceRss);
        let mut serial = IncrementalWpg::with_topology(builder.clone(), &pts, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let ticks: Vec<Vec<(UserId, Point)>> = (0..5)
            .map(|_| {
                (0..120)
                    .map(|_| (rng.gen_range(0..500u32), Point::new(rng.gen(), rng.gen())))
                    .collect()
            })
            .collect();
        for threads in [2usize, 4] {
            let mut par = IncrementalWpg::with_topology(builder.clone(), &pts, 4, threads);
            for moves in &ticks {
                let a = serial.apply_moves(moves);
                let b = par.apply_moves(moves);
                assert_eq!(a, b, "threads={threads}");
                assert_eq!(serial.rank_peers, par.rank_peers, "threads={threads}");
                assert_eq!(serial.rank_len, par.rank_len, "threads={threads}");
                assert_graphs_equal(&par.snapshot_threads(threads), &serial.snapshot());
            }
            // Rewind the serial instance for the next thread count.
            serial = IncrementalWpg::with_topology(builder.clone(), &pts, 4, 1);
        }
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_matches() {
        let pts = random_points(250, 29);
        let builder = WpgBuilder::new(0.07, 5, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut wpg = inc.snapshot();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for _ in 0..5 {
            let moves: Vec<(UserId, Point)> = (0..60)
                .map(|_| (rng.gen_range(0..250u32), Point::new(rng.gen(), rng.gen())))
                .collect();
            inc.apply_moves(&moves);
            inc.snapshot_into(&mut wpg);
            assert_graphs_equal(&wpg, &inc.snapshot());
            assert_graphs_equal(&wpg, &builder.build(inc.points()));
        }
    }
}
