//! Incremental WPG maintenance under user mobility.
//!
//! [`crate::WpgBuilder`] recomputes every user's δ-range query, RSS scores,
//! and top-M rank list on each call — O(n · m log m) per snapshot. When only
//! a fraction of the population moves between snapshots, almost all of that
//! work is redundant: a user's rank list can only change when some *mover*
//! was within radio range of it before the move or is within range after.
//!
//! [`IncrementalWpg`] exploits that locality. It owns a
//! [`nela_geo::DynamicGrid`] plus the per-user rank lists, and on
//! [`IncrementalWpg::apply_moves`]:
//!
//! 1. relocates the movers in the grid (O(1) amortized each),
//! 2. computes the **dirty set** — the movers plus every user strictly
//!    within δ of a mover's old or new position,
//! 3. re-runs the δ-query + RSS-sort + truncate-to-M pipeline for dirty
//!    users only.
//!
//! **Exactness.** A user `u` outside the dirty set has the same in-range
//! peer set before and after the batch (no mover entered or left its δ-ball),
//! and every retained peer `v` is a non-mover whose position — and hence
//! RSS score at `u` — is unchanged. The sort key `(rss desc, id asc)` is a
//! total order, so `u`'s rank list is bit-identical to what a from-scratch
//! build would produce. [`IncrementalWpg::snapshot`] therefore reconstructs
//! a graph equal (vertices, edges, weights) to
//! `WpgBuilder::build(current positions)`; the property test
//! `tests/incremental_equivalence.rs` checks this on random move batches.

use crate::builder::WpgBuilder;
use crate::graph::{Edge, Wpg};
use crate::rss::RssModel;
use nela_geo::{DynamicGrid, Point, UserId};

/// Counters describing one [`IncrementalWpg::apply_moves`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Moves applied (after deduplication the last position per id wins).
    pub moved: usize,
    /// Users whose rank list was recomputed (movers + δ-neighborhoods).
    pub dirty: usize,
}

/// A WPG kept up to date under a stream of position updates.
#[derive(Debug, Clone)]
pub struct IncrementalWpg<R: RssModel> {
    builder: WpgBuilder<R>,
    grid: DynamicGrid,
    /// Per-user top-M peer list with 1-based RSS ranks — the same state
    /// `WpgBuilder::build_with_index` derives internally.
    rank_of: Vec<Vec<(UserId, u32)>>,
    /// Scratch buffers reused across updates.
    buf: Vec<(UserId, f64)>,
    scored: Vec<(f64, UserId)>,
    dirty_mark: Vec<bool>,
    dirty_ids: Vec<UserId>,
}

impl<R: RssModel> IncrementalWpg<R> {
    /// Builds the initial state from scratch over `points`.
    pub fn new(builder: WpgBuilder<R>, points: &[Point]) -> Self {
        let grid = DynamicGrid::build(points, builder.delta);
        let n = points.len();
        let mut this = IncrementalWpg {
            builder,
            grid,
            rank_of: vec![Vec::new(); n],
            buf: Vec::new(),
            scored: Vec::new(),
            dirty_mark: vec![false; n],
            dirty_ids: Vec::new(),
        };
        for u in 0..n as UserId {
            this.rescore(u);
        }
        this
    }

    /// Number of users.
    #[inline]
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// True when the population is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Current positions, indexed by id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        self.grid.points()
    }

    /// The underlying mutable grid (for δ-queries against current state).
    #[inline]
    pub fn grid(&self) -> &DynamicGrid {
        &self.grid
    }

    /// The radio range δ this graph is maintained under.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.builder.delta
    }

    /// `u`'s current top-M peer list as `(peer, 1-based rank)`.
    #[inline]
    pub fn peers_of(&self, u: UserId) -> &[(UserId, u32)] {
        &self.rank_of[u as usize]
    }

    /// Recomputes `u`'s top-M rank list from the current grid. Identical
    /// pipeline to `WpgBuilder::build_with_index`.
    fn rescore(&mut self, u: UserId) {
        self.grid
            .neighbors_within(u, self.builder.delta, &mut self.buf);
        let points = self.grid.points();
        let pu = points[u as usize];
        self.scored.clear();
        // The grid query yields each peer's squared distance from `u`'s
        // current position with the same operand order as `rss` would use,
        // so the d_sq fast path stays bit-identical to the full-build
        // pipeline.
        self.scored.extend(self.buf.iter().map(|&(v, d_sq)| {
            (
                self.builder
                    .rss
                    .rss_from_dist_sq(u, pu, v, points[v as usize], d_sq),
                v,
            )
        }));
        self.scored
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        self.scored.truncate(self.builder.max_peers);
        self.rank_of[u as usize].clear();
        self.rank_of[u as usize].extend(
            self.scored
                .iter()
                .enumerate()
                .map(|(i, &(_, v))| (v, i as u32 + 1)),
        );
    }

    #[inline]
    fn mark_dirty(&mut self, u: UserId) {
        if !self.dirty_mark[u as usize] {
            self.dirty_mark[u as usize] = true;
            self.dirty_ids.push(u);
        }
    }

    /// Applies a batch of position updates and restores WPG exactness.
    ///
    /// When the same id appears multiple times in `moves`, positions are
    /// applied in order and the last one wins. Returns the batch counters.
    pub fn apply_moves(&mut self, moves: &[(UserId, Point)]) -> UpdateStats {
        // Phase 1: relocate everyone, remembering each mover's old position.
        // (Relocating first means the δ-queries below all run against final
        // positions, so a mover probed near another mover's old spot cannot
        // be missed.)
        let mut old_positions: Vec<(UserId, Point)> = Vec::with_capacity(moves.len());
        for &(id, pos) in moves {
            let old = self.grid.relocate(id, pos);
            old_positions.push((id, old));
        }

        // Phase 2: dirty set = movers ∪ { users within δ of a mover's old or
        // new position }. Queries probe positions (not ids) so the mover's
        // vacated location can still be searched.
        let delta = self.builder.delta;
        let mut probe: Vec<(UserId, f64)> = Vec::new();
        for &(id, old) in &old_positions {
            self.mark_dirty(id);
            self.grid.neighbors_of_point(old, id, delta, &mut probe);
            for &(v, _) in &probe {
                self.mark_dirty(v);
            }
            let new_pos = self.grid.position(id);
            self.grid.neighbors_of_point(new_pos, id, delta, &mut probe);
            for &(v, _) in &probe {
                self.mark_dirty(v);
            }
        }

        // Phase 3: re-score dirty users only.
        let dirty = std::mem::take(&mut self.dirty_ids);
        for &u in &dirty {
            self.rescore(u);
        }
        for &u in &dirty {
            self.dirty_mark[u as usize] = false;
        }
        let stats = UpdateStats {
            moved: moves.len(),
            dirty: dirty.len(),
        };
        self.dirty_ids = dirty;
        self.dirty_ids.clear();
        stats
    }

    /// Materializes the current graph. Runs only the mutual min-rank edge
    /// pass (O(n · M)); the expensive δ-query/sort work is already folded
    /// into the maintained rank lists.
    pub fn snapshot(&self) -> Wpg {
        let n = self.rank_of.len();
        let mut edges = Vec::new();
        for u in 0..n as UserId {
            for &(v, rank_v_at_u) in &self.rank_of[u as usize] {
                if v <= u {
                    continue;
                }
                if let Some(&(_, rank_u_at_v)) =
                    self.rank_of[v as usize].iter().find(|&&(x, _)| x == u)
                {
                    edges.push(Edge::new(u, v, rank_v_at_u.min(rank_u_at_v)));
                }
            }
        }
        Wpg::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rss::{InverseDistanceRss, LogDistanceRss};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
    }

    fn assert_graphs_equal(a: &Wpg, b: &Wpg) {
        assert_eq!(a.n(), b.n());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn fresh_state_matches_builder() {
        let pts = random_points(300, 11);
        let builder = WpgBuilder::new(0.08, 6, InverseDistanceRss);
        let inc = IncrementalWpg::new(builder.clone(), &pts);
        assert_graphs_equal(&inc.snapshot(), &builder.build(&pts));
    }

    #[test]
    fn single_move_matches_rebuild() {
        let pts = random_points(200, 3);
        let builder = WpgBuilder::new(0.1, 5, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let stats = inc.apply_moves(&[(17, Point::new(0.5, 0.5))]);
        assert!(stats.dirty >= 1);
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn batched_moves_match_rebuild_across_ticks() {
        let pts = random_points(400, 8);
        let builder = WpgBuilder::new(0.07, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _tick in 0..10 {
            let moves: Vec<(UserId, Point)> = (0..40)
                .map(|_| (rng.gen_range(0..400u32), Point::new(rng.gen(), rng.gen())))
                .collect();
            inc.apply_moves(&moves);
            assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
        }
    }

    #[test]
    fn works_with_noisy_rss_model() {
        // Exactness must not depend on the RSS model being distance-monotone.
        let pts = random_points(250, 5);
        let builder = WpgBuilder::new(0.09, 5, LogDistanceRss::default());
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let moves: Vec<(UserId, Point)> = (0..25)
            .map(|_| (rng.gen_range(0..250u32), Point::new(rng.gen(), rng.gen())))
            .collect();
        inc.apply_moves(&moves);
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn duplicate_ids_in_batch_last_position_wins() {
        let pts = random_points(100, 9);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        inc.apply_moves(&[
            (3, Point::new(0.2, 0.2)),
            (3, Point::new(0.9, 0.9)),
            (3, Point::new(0.4, 0.6)),
        ]);
        assert_eq!(inc.points()[3], Point::new(0.4, 0.6));
        assert_graphs_equal(&inc.snapshot(), &builder.build(inc.points()));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pts = random_points(120, 2);
        let builder = WpgBuilder::new(0.1, 4, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let before: Vec<_> = inc.snapshot().edges().collect();
        let stats = inc.apply_moves(&[]);
        assert_eq!(stats, UpdateStats { moved: 0, dirty: 0 });
        let after: Vec<_> = inc.snapshot().edges().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dirty_set_is_local_for_small_moves() {
        // A single short move in a sparse corner must not dirty the whole
        // population.
        let pts = random_points(1000, 14);
        let builder = WpgBuilder::new(0.03, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder, &pts);
        let from = inc.points()[0];
        let nudged = Point::new(
            (from.x + 0.001).clamp(0.0, 1.0),
            (from.y + 0.001).clamp(0.0, 1.0),
        );
        let stats = inc.apply_moves(&[(0, nudged)]);
        assert!(
            stats.dirty < 100,
            "a 0.001 nudge dirtied {} of 1000 users",
            stats.dirty
        );
    }
}
