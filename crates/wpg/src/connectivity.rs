//! t-connectivity primitives (paper Definition 4.1) and union-find.
//!
//! Two vertices are *t-connected* when a path joins them whose every edge
//! weight is ≤ t. t-connectedness is an equivalence relation (paper Theorem
//! 4.3); its classes are the connected components of the subgraph keeping
//! only edges of weight ≤ t. The clustering algorithms repeatedly ask:
//!
//! - "what is the t-connectivity cluster of u?"              → [`t_cluster_of`]
//! - "does u have a t-connectivity cluster of size ≥ k?"     → [`has_t_cluster_of_size`]
//! - "partition everything by t-connectivity"                → [`components_under`]
//!
//! All functions take a `removed` predicate so they can operate on the
//! "remaining WPG" after earlier clusters were carved out — the situation the
//! cluster-isolation property (Property 4.1) reasons about — without ever
//! materializing subgraphs.

use crate::graph::Wpg;
use crate::Weight;
use nela_geo::UserId;

/// Classic union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` when already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// True when `a` and `b` share a set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The t-connectivity cluster (equivalence class) of `u`: all vertices
/// reachable from `u` through edges of weight ≤ `t`, skipping vertices for
/// which `removed` returns true. Returns vertices in BFS order starting at
/// `u`; returns just `[u]` when `u` itself is removed-free but isolated.
pub fn t_cluster_of(
    g: &Wpg,
    u: UserId,
    t: Weight,
    removed: &dyn Fn(UserId) -> bool,
) -> Vec<UserId> {
    let (cluster, _) = t_cluster_bounded(g, u, t, removed, usize::MAX);
    cluster
}

/// BFS as in [`t_cluster_of`] but stops expanding once `limit` vertices are
/// collected. Returns the collected vertices and whether the limit was hit
/// (i.e. the true cluster is at least `limit` large).
pub fn t_cluster_bounded(
    g: &Wpg,
    u: UserId,
    t: Weight,
    removed: &dyn Fn(UserId) -> bool,
    limit: usize,
) -> (Vec<UserId>, bool) {
    debug_assert!(!removed(u), "seed vertex must be present");
    let mut visited = std::collections::HashSet::new();
    visited.insert(u);
    let mut queue = std::collections::VecDeque::from([u]);
    let mut cluster = vec![u];
    if cluster.len() >= limit {
        return (cluster, true);
    }
    while let Some(x) = queue.pop_front() {
        for (y, w) in g.neighbors(x) {
            if w <= t && !removed(y) && visited.insert(y) {
                cluster.push(y);
                if cluster.len() >= limit {
                    return (cluster, true);
                }
                queue.push_back(y);
            }
        }
    }
    (cluster, false)
}

/// True when `u`'s t-connectivity cluster (under `removed`) reaches size ≥ k.
/// This is the "valid t-connectivity cluster" test in the border-vertex check
/// of the distributed algorithm (paper Theorem 4.4); bounded BFS makes it
/// O(k·deg) instead of exploring the whole class.
pub fn has_t_cluster_of_size(
    g: &Wpg,
    u: UserId,
    t: Weight,
    k: usize,
    removed: &dyn Fn(UserId) -> bool,
) -> bool {
    t_cluster_bounded(g, u, t, removed, k).1
}

/// True when `a` and `b` are t-connected (under `removed`).
pub fn are_t_connected(
    g: &Wpg,
    a: UserId,
    b: UserId,
    t: Weight,
    removed: &dyn Fn(UserId) -> bool,
) -> bool {
    if a == b {
        return true; // reflexivity holds trivially (empty path)
    }
    let mut visited = std::collections::HashSet::new();
    visited.insert(a);
    let mut stack = vec![a];
    while let Some(x) = stack.pop() {
        for (y, w) in g.neighbors(x) {
            if w <= t && !removed(y) && visited.insert(y) {
                if y == b {
                    return true;
                }
                stack.push(y);
            }
        }
    }
    false
}

/// Partitions all non-removed vertices into t-connectivity classes.
/// Classes are returned with members sorted, ordered by smallest member.
pub fn components_under(g: &Wpg, t: Weight, removed: &dyn Fn(UserId) -> bool) -> Vec<Vec<UserId>> {
    let mut ds = DisjointSets::new(g.n());
    for e in g.edges() {
        if e.w <= t && !removed(e.u) && !removed(e.v) {
            ds.union(e.u, e.v);
        }
    }
    group_by_root(g, &mut ds, removed)
}

/// [`components_under`] with the adjacency scan (the dominant cost on dense
/// graphs) split across `threads` scoped worker threads: each chunk of
/// vertices collects its qualifying edges, which are then unioned serially.
/// The class partition is canonicalized by sorting, so the result equals the
/// serial [`components_under`] exactly for any thread count.
pub fn components_under_threads<F>(
    g: &Wpg,
    t: Weight,
    removed: &F,
    threads: usize,
) -> Vec<Vec<UserId>>
where
    F: Fn(UserId) -> bool + Sync,
{
    let n = g.n();
    let pair_chunks: Vec<Vec<(u32, u32)>> = nela_par::map_chunks(threads, n, |range| {
        let mut out = Vec::new();
        for u in range {
            let u = u as UserId;
            if removed(u) {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                if v > u && w <= t && !removed(v) {
                    out.push((u, v));
                }
            }
        }
        out
    });
    let mut ds = DisjointSets::new(n);
    for chunk in pair_chunks {
        for (a, b) in chunk {
            ds.union(a, b);
        }
    }
    group_by_root(g, &mut ds, removed)
}

/// Groups non-removed vertices by union-find root into the canonical class
/// order (members sorted, classes ordered by smallest member).
///
/// Vertices are visited in ascending id order and roots are mapped to class
/// slots through a dense `u32` table (no hashing), so members arrive in each
/// class already sorted and classes appear in order of smallest member — the
/// canonical form falls out of the scan with no sort passes.
fn group_by_root(
    g: &Wpg,
    ds: &mut DisjointSets,
    removed: &(dyn Fn(UserId) -> bool + '_),
) -> Vec<Vec<UserId>> {
    const NO_SLOT: u32 = u32::MAX;
    let mut slot_of_root = vec![NO_SLOT; g.n()];
    let mut comps: Vec<Vec<UserId>> = Vec::new();
    for u in 0..g.n() as UserId {
        if removed(u) {
            continue;
        }
        let root = ds.find(u) as usize;
        let slot = if slot_of_root[root] == NO_SLOT {
            slot_of_root[root] = comps.len() as u32;
            comps.push(Vec::new());
            comps.len() - 1
        } else {
            slot_of_root[root] as usize
        };
        comps[slot].push(u);
    }
    comps
}

/// No vertex removed; convenience for whole-graph queries.
pub fn nothing_removed(_: UserId) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, Wpg};

    /// Paper Fig. 6(a): the 10-vertex example used for centralized
    /// 2-clustering. Vertices 0..=4 form the left pentagon-ish cluster,
    /// 5..=9 the right one; weights as printed.
    pub(crate) fn fig6_graph() -> Wpg {
        Wpg::from_edges(
            10,
            &[
                // left component (weights 6,7,5,3 inside; 8 bridges right)
                Edge::new(0, 1, 6),
                Edge::new(1, 2, 7),
                Edge::new(2, 3, 5),
                Edge::new(3, 4, 3),
                Edge::new(4, 0, 7),
                // bridge
                Edge::new(2, 5, 8),
                // right component (weights 6,4,3,6,6)
                Edge::new(5, 6, 6),
                Edge::new(6, 7, 4),
                Edge::new(7, 8, 3),
                Edge::new(8, 9, 6),
                Edge::new(9, 5, 6),
            ],
        )
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut ds = DisjointSets::new(5);
        assert!(ds.union(0, 1));
        assert!(ds.union(1, 2));
        assert!(!ds.union(0, 2));
        assert_eq!(ds.size_of(2), 3);
        assert_eq!(ds.size_of(3), 1);
        assert!(ds.same(0, 2));
        assert!(!ds.same(0, 4));
    }

    #[test]
    fn t_cluster_respects_threshold() {
        let g = fig6_graph();
        // At t=7 the bridge (w=8) is cut: cluster of 0 is the left half.
        let mut c = t_cluster_of(&g, 0, 7, &nothing_removed);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2, 3, 4]);
        // At t=8 everything is one class.
        assert_eq!(t_cluster_of(&g, 0, 8, &nothing_removed).len(), 10);
        // At t=3 only the single light edge (3,4) joins anything to 0's side.
        let mut c3 = t_cluster_of(&g, 3, 3, &nothing_removed);
        c3.sort_unstable();
        assert_eq!(c3, vec![3, 4]);
    }

    #[test]
    fn removed_vertices_block_paths() {
        let g = fig6_graph();
        // Removing vertex 2 disconnects 0's side from the bridge at any t.
        let removed = |u: UserId| u == 2;
        let mut c = t_cluster_of(&g, 0, 8, &removed);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 3, 4]);
    }

    #[test]
    fn bounded_bfs_stops_early() {
        let g = fig6_graph();
        let (c, hit) = t_cluster_bounded(&g, 0, 8, &nothing_removed, 3);
        assert_eq!(c.len(), 3);
        assert!(hit);
        let (c, hit) = t_cluster_bounded(&g, 0, 8, &nothing_removed, 100);
        assert_eq!(c.len(), 10);
        assert!(!hit);
    }

    #[test]
    fn has_t_cluster_of_size_matches_full_bfs() {
        let g = fig6_graph();
        for u in 0..10 {
            for t in [2, 3, 5, 6, 7, 8] {
                for k in [1usize, 2, 4, 6, 11] {
                    let full = t_cluster_of(&g, u, t, &nothing_removed).len() >= k;
                    assert_eq!(
                        has_t_cluster_of_size(&g, u, t, k, &nothing_removed),
                        full,
                        "u={u} t={t} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn are_t_connected_is_equivalence() {
        let g = fig6_graph();
        let none = nothing_removed;
        for t in [3, 5, 6, 7, 8] {
            // reflexive
            for u in 0..10 {
                assert!(are_t_connected(&g, u, u, t, &none));
            }
            // symmetric + transitive (spot check over all triples)
            for a in 0..10 {
                for b in 0..10 {
                    let ab = are_t_connected(&g, a, b, t, &none);
                    assert_eq!(ab, are_t_connected(&g, b, a, t, &none));
                    for c in 0..10 {
                        if ab && are_t_connected(&g, b, c, t, &none) {
                            assert!(are_t_connected(&g, a, c, t, &none));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn components_partition_vertices() {
        let g = fig6_graph();
        let comps = components_under(&g, 7, &nothing_removed);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(comps[1], vec![5, 6, 7, 8, 9]);
        // At t=8 a single class.
        assert_eq!(components_under(&g, 8, &nothing_removed).len(), 1);
        // Under removal, removed vertices vanish from the partition.
        let comps = components_under(&g, 8, &|u| u < 5);
        let all: Vec<UserId> = comps.concat();
        assert_eq!(all, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn threaded_components_match_serial() {
        let pts = nela_geo::DatasetSpec::small_uniform(400, 33).generate();
        let g = crate::builder::WpgBuilder::new(0.1, 6, crate::rss::InverseDistanceRss).build(&pts);
        for t in [1u32, 2, 4, 6] {
            for (removed, tag) in [
                (
                    &(|_: UserId| false) as &(dyn Fn(UserId) -> bool + Sync),
                    "none",
                ),
                (&(|u: UserId| u % 7 == 0) as _, "mod7"),
            ] {
                let serial = components_under(&g, t, &|u| removed(u));
                for threads in [1usize, 2, 4, 8] {
                    let par = components_under_threads(&g, t, &removed, threads);
                    assert_eq!(par, serial, "t={t} threads={threads} removed={tag}");
                }
            }
        }
    }

    #[test]
    fn isolated_vertex_is_singleton_class() {
        let g = Wpg::from_edges(3, &[Edge::new(0, 1, 1)]);
        let comps = components_under(&g, 5, &nothing_removed);
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
        assert_eq!(t_cluster_of(&g, 2, 5, &nothing_removed), vec![2]);
    }
}
