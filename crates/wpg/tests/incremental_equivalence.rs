//! Property test: incremental WPG maintenance is *exactly* equivalent to a
//! from-scratch rebuild — same vertices, same edges, same weights — after
//! any seeded batch of moves. This is the correctness contract the
//! `nela-mobility` continuous pipeline relies on.

use nela_geo::Point;
use nela_wpg::{IncrementalWpg, InverseDistanceRss, WpgBuilder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

fn edges_of(g: &nela_wpg::Wpg) -> Vec<nela_wpg::Edge> {
    g.edges().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After an arbitrary seeded batch of moves (arbitrary size, arbitrary
    /// targets, duplicates allowed via modulo), the maintained graph equals
    /// the rebuilt one.
    #[test]
    fn incremental_equals_rebuild(
        seed in 0u64..1_000_000,
        n in 50usize..300,
        batches in 1usize..5,
        moves_per_batch in 1usize..60,
        delta in 0.03f64..0.12,
        m in 3usize..9,
    ) {
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(delta, m, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1FF);
        for _ in 0..batches {
            let moves: Vec<(u32, Point)> = (0..moves_per_batch)
                .map(|_| {
                    (
                        rng.gen_range(0..n as u32),
                        Point::new(rng.gen(), rng.gen()),
                    )
                })
                .collect();
            inc.apply_moves(&moves);
            let rebuilt = builder.build(inc.points());
            let snap = inc.snapshot();
            prop_assert_eq!(snap.n(), rebuilt.n());
            prop_assert_eq!(edges_of(&snap), edges_of(&rebuilt));
        }
    }

    /// Small local drifts (the common mobility-model case) also stay exact,
    /// exercising the dirty-set path where old and new δ-balls overlap.
    #[test]
    fn local_drift_equals_rebuild(
        seed in 0u64..1_000_000,
        n in 100usize..400,
        step in 0.0005f64..0.02,
    ) {
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(0.05, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(3) ^ 0xBEEF);
        let moves: Vec<(u32, Point)> = (0..n / 10)
            .map(|_| {
                let id = rng.gen_range(0..n as u32);
                let p = inc.points()[id as usize];
                let q = Point::new(
                    (p.x + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                    (p.y + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                );
                (id, q)
            })
            .collect();
        inc.apply_moves(&moves);
        let rebuilt = builder.build(inc.points());
        prop_assert_eq!(edges_of(&inc.snapshot()), edges_of(&rebuilt));
    }
}
