//! Property test: incremental WPG maintenance is *exactly* equivalent to a
//! from-scratch rebuild — same vertices, same edges, same weights — after
//! any seeded batch of moves. This is the correctness contract the
//! `nela-mobility` continuous pipeline relies on.

use nela_geo::Point;
use nela_wpg::{IncrementalWpg, InverseDistanceRss, WpgBuilder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

fn edges_of(g: &nela_wpg::Wpg) -> Vec<nela_wpg::Edge> {
    g.edges().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After an arbitrary seeded batch of moves (arbitrary size, arbitrary
    /// targets, duplicates allowed via modulo), the maintained graph equals
    /// the rebuilt one.
    #[test]
    fn incremental_equals_rebuild(
        seed in 0u64..1_000_000,
        n in 50usize..300,
        batches in 1usize..5,
        moves_per_batch in 1usize..60,
        delta in 0.03f64..0.12,
        m in 3usize..9,
    ) {
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(delta, m, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1FF);
        for _ in 0..batches {
            let moves: Vec<(u32, Point)> = (0..moves_per_batch)
                .map(|_| {
                    (
                        rng.gen_range(0..n as u32),
                        Point::new(rng.gen(), rng.gen()),
                    )
                })
                .collect();
            inc.apply_moves(&moves);
            let rebuilt = builder.build(inc.points());
            let snap = inc.snapshot();
            prop_assert_eq!(snap.n(), rebuilt.n());
            prop_assert_eq!(edges_of(&snap), edges_of(&rebuilt));
        }
    }

    /// High-churn ticks — 50% and 100% of the population moving every tick,
    /// the regime the sharded dirty-region path must win in — stay exactly
    /// equivalent to a rebuild across region-shard counts and thread counts,
    /// with every variant bit-identical to the serial single-shard snapshot.
    #[test]
    fn high_move_fraction_equals_rebuild_across_shards_and_threads(
        seed in 0u64..1_000_000,
        n in 60usize..250,
        full_move in 0usize..2,
        delta in 0.03f64..0.1,
        m in 3usize..8,
    ) {
        let fraction_pct = if full_move == 1 { 100 } else { 50 };
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(delta, m, InverseDistanceRss);
        let movers = (n * fraction_pct / 100).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5AD5);
        let ticks: Vec<Vec<(u32, Point)>> = (0..3)
            .map(|_| {
                (0..movers)
                    .map(|_| {
                        (
                            rng.gen_range(0..n as u32),
                            Point::new(rng.gen(), rng.gen()),
                        )
                    })
                    .collect()
            })
            .collect();
        // Serial single-shard reference plus sharded/threaded variants.
        let mut reference = IncrementalWpg::with_topology(builder.clone(), &pts, 1, 1);
        let mut variants: Vec<IncrementalWpg<InverseDistanceRss>> =
            [(4usize, 1usize), (16, 2), (64, 4)]
                .iter()
                .map(|&(shards, threads)| {
                    IncrementalWpg::with_topology(builder.clone(), &pts, shards, threads)
                })
                .collect();
        for moves in &ticks {
            let ref_stats = reference.apply_moves(moves);
            let rebuilt = builder.build(reference.points());
            let ref_edges = edges_of(&reference.snapshot());
            prop_assert_eq!(&ref_edges, &edges_of(&rebuilt));
            for (vi, inc) in variants.iter_mut().enumerate() {
                let stats = inc.apply_moves(moves);
                // Mover accounting is topology-independent.
                prop_assert_eq!(stats.moved, ref_stats.moved, "variant {}", vi);
                prop_assert_eq!(inc.points(), reference.points(), "variant {}", vi);
                // Serial, threaded, and in-place snapshots all bit-match the
                // single-shard serial reference.
                prop_assert_eq!(edges_of(&inc.snapshot()), ref_edges.clone(), "variant {}", vi);
                prop_assert_eq!(
                    edges_of(&inc.snapshot_threads(4)),
                    ref_edges.clone(),
                    "variant {}",
                    vi
                );
                let mut reused = inc.snapshot();
                inc.snapshot_into(&mut reused);
                prop_assert_eq!(edges_of(&reused), ref_edges.clone(), "variant {}", vi);
            }
        }
    }

    /// Duplicate-heavy batches (every id appears several times, last position
    /// wins) stay exact and count each mover once, across shard layouts.
    #[test]
    fn duplicate_heavy_batches_stay_exact(
        seed in 0u64..1_000_000,
        n in 40usize..150,
        unique_movers in 2usize..20,
        repeats in 2usize..6,
        shard_sel in 0usize..3,
    ) {
        let shards = [1usize, 8, 32][shard_sel];
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(0.06, 5, InverseDistanceRss);
        let mut inc = IncrementalWpg::with_topology(builder.clone(), &pts, shards, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD0D0);
        let ids: Vec<u32> = (0..unique_movers)
            .map(|_| rng.gen_range(0..n as u32))
            .collect();
        let mut moves: Vec<(u32, Point)> = Vec::new();
        for _ in 0..repeats {
            for &id in &ids {
                moves.push((id, Point::new(rng.gen(), rng.gen())));
            }
        }
        let stats = inc.apply_moves(&moves);
        let mut distinct = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(stats.moved, distinct.len());
        // Final position is the last one staged per id.
        for &id in &distinct {
            let last = moves.iter().rev().find(|&&(i, _)| i == id).unwrap().1;
            prop_assert_eq!(inc.points()[id as usize], last);
        }
        let rebuilt = builder.build(inc.points());
        prop_assert_eq!(edges_of(&inc.snapshot()), edges_of(&rebuilt));
    }

    /// Small local drifts (the common mobility-model case) also stay exact,
    /// exercising the dirty-set path where old and new δ-balls overlap.
    #[test]
    fn local_drift_equals_rebuild(
        seed in 0u64..1_000_000,
        n in 100usize..400,
        step in 0.0005f64..0.02,
    ) {
        let pts = random_points(n, seed);
        let builder = WpgBuilder::new(0.05, 6, InverseDistanceRss);
        let mut inc = IncrementalWpg::new(builder.clone(), &pts);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(3) ^ 0xBEEF);
        let moves: Vec<(u32, Point)> = (0..n / 10)
            .map(|_| {
                let id = rng.gen_range(0..n as u32);
                let p = inc.points()[id as usize];
                let q = Point::new(
                    (p.x + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                    (p.y + rng.gen_range(-step..step)).clamp(0.0, 1.0),
                );
                (id, q)
            })
            .collect();
        inc.apply_moves(&moves);
        let rebuilt = builder.build(inc.points());
        prop_assert_eq!(edges_of(&inc.snapshot()), edges_of(&rebuilt));
    }
}
