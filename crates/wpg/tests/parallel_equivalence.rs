//! Property tests pinning the parallel build paths to the serial ones.
//!
//! The contract of every `*_threads` entry point is *bit-identical output*:
//! for any population and any thread count, the grid buckets, WPG edge list,
//! and connected components must equal the single-threaded result exactly —
//! parallelism is an implementation detail, never an observable one.

use nela_geo::{GridIndex, Point, UserId};
use nela_wpg::connectivity::{components_under, components_under_threads, nothing_removed};
use nela_wpg::{Edge, InverseDistanceRss, Wpg, WpgBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..200)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

/// A deduplicated undirected edge list over `n` vertices.
fn arb_edges(n: usize) -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((0..n as UserId, 0..n as UserId, 1u32..12), 0..400).prop_map(|raw| {
        let mut seen = HashSet::new();
        raw.into_iter()
            .filter(|&(a, b, _)| a != b)
            .map(|(a, b, w)| Edge::new(a, b, w))
            .filter(|e| seen.insert((e.u, e.v)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_build_matches_serial(
        points in arb_points(),
        m in 1usize..8,
        delta in 0.05f64..0.4,
    ) {
        let serial = WpgBuilder::new(delta, m, InverseDistanceRss).build(&points);
        for threads in [1usize, 2, 4, 8] {
            let par = WpgBuilder::new(delta, m, InverseDistanceRss)
                .build_threads(&points, threads);
            prop_assert_eq!(
                serial.edges().collect::<Vec<_>>(),
                par.edges().collect::<Vec<_>>(),
                "edge list diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn counting_sort_csr_matches_serial(
        edges in arb_edges(60),
    ) {
        // The counting-sort CSR assembly must reproduce the serial
        // `from_edges` layout exactly: same neighbor order per vertex, for
        // any thread count (including more threads than edges).
        let n = 60usize;
        let serial = Wpg::from_edges(n, &edges);
        for threads in [1usize, 2, 3, 4, 8, 64] {
            let par = Wpg::from_edges_threads(n, &edges, threads);
            prop_assert_eq!(par.m(), serial.m());
            for u in 0..n as UserId {
                prop_assert_eq!(
                    par.neighbors(u).collect::<Vec<_>>(),
                    serial.neighbors(u).collect::<Vec<_>>(),
                    "neighbor slice of {} diverged at {} threads", u, threads
                );
            }
        }
    }

    #[test]
    fn parallel_grid_matches_serial(
        points in arb_points(),
        delta in 0.02f64..0.4,
    ) {
        let serial = GridIndex::build(&points, delta);
        let mut sbuf = Vec::new();
        let mut pbuf = Vec::new();
        for threads in [2usize, 3, 8] {
            let par = GridIndex::build_threads(&points, delta, threads);
            // The public probe surface must agree exactly for every user.
            for u in 0..points.len() as UserId {
                serial.neighbors_within(u, delta, &mut sbuf);
                par.neighbors_within(u, delta, &mut pbuf);
                prop_assert_eq!(&sbuf, &pbuf, "neighbors diverged at {} threads", threads);
            }
        }
    }

    #[test]
    fn parallel_components_match_serial(
        points in arb_points(),
        t in 1u32..6,
    ) {
        let g = WpgBuilder::new(0.2, 5, InverseDistanceRss).build(&points);
        let serial = components_under(&g, t, &nothing_removed);
        let removed = |u: UserId| u % 5 == 0;
        let serial_removed = components_under(&g, t, &removed);
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &serial,
                &components_under_threads(&g, t, &nothing_removed, threads),
                "components diverged at {} threads", threads
            );
            prop_assert_eq!(
                &serial_removed,
                &components_under_threads(&g, t, &removed, threads),
                "components with removals diverged at {} threads", threads
            );
        }
    }
}
