//! Differential tests pinning the SoA/arena fast paths to scalar references.
//!
//! The cache-conscious refactor (blocked distance kernel in the grid, flat
//! rank arena in the builder, `rss_from_dist_sq` fast path) must be
//! *observably invisible*: every output is pinned bit-identical to a naive
//! scalar reference at fixed population sizes — including the degenerate
//! shapes (all-coincident points, a single grid cell) where blocked loops
//! and tie-breaks are most likely to drift.

use nela_geo::{GridIndex, Point, UserId};
use nela_wpg::{Edge, InverseDistanceRss, LogDistanceRss, WpgBuilder};
use proptest::prelude::*;

/// Deterministic quasi-random points via SplitMix64 — the tests need pinned
/// populations, not a rand dependency.
fn splitmix_points(n: usize, mut seed: u64) -> Vec<Point> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) >> 11
    };
    (0..n)
        .map(|_| {
            let x = next() as f64 / (1u64 << 53) as f64;
            let y = next() as f64 / (1u64 << 53) as f64;
            Point::new(x, y)
        })
        .collect()
}

/// O(n) scalar reference for one δ-range query: same operand order as the
/// grid kernel (`query.dist_sq(&candidate)`), sorted by id for comparison.
fn brute_neighbors(points: &[Point], q: UserId, radius: f64) -> Vec<(UserId, u64)> {
    let r_sq = radius * radius;
    let qp = points[q as usize];
    (0..points.len() as UserId)
        .filter(|&v| v != q)
        .map(|v| (v, qp.dist_sq(&points[v as usize])))
        .filter(|&(_, d_sq)| d_sq <= r_sq)
        .map(|(v, d_sq)| (v, d_sq.to_bits()))
        .collect()
}

fn sorted_by_id(raw: &[(UserId, f64)]) -> Vec<(UserId, u64)> {
    let mut v: Vec<(UserId, u64)> = raw.iter().map(|&(u, d)| (u, d.to_bits())).collect();
    v.sort_by_key(|&(u, _)| u);
    v
}

/// Grid queries through the blocked SoA kernel equal the scalar reference
/// bit-for-bit at n ∈ {1, 2, 1000, 10000}, and the serial and threaded
/// grids agree entry-for-entry (same cell-grouped emission order).
#[test]
fn grid_matches_scalar_reference_at_pinned_sizes() {
    for &(n, delta, stride) in &[
        (1usize, 0.9f64, 1usize),
        (2, 0.9, 1),
        (1_000, 0.05, 1),
        (10_000, 0.05, 97), // sampled queries keep the O(n²) reference cheap
    ] {
        let points = splitmix_points(n, 0x5EED ^ n as u64);
        let serial = GridIndex::build(&points, delta);
        let par = GridIndex::build_threads(&points, delta, 4);
        let mut sbuf = Vec::new();
        let mut pbuf = Vec::new();
        for q in (0..n as UserId).step_by(stride) {
            serial.neighbors_within(q, delta, &mut sbuf);
            par.neighbors_within(q, delta, &mut pbuf);
            assert_eq!(sbuf, pbuf, "serial/threaded grid diverged at n={n} q={q}");
            assert_eq!(
                sorted_by_id(&sbuf),
                brute_neighbors(&points, q, delta),
                "grid diverged from scalar reference at n={n} q={q}"
            );
        }
    }
}

/// Full WPG builds are bit-identical across thread counts at the pinned
/// sizes, for both the pure-distance model and the noisy log-distance model
/// (which exercises the `rss_from_dist_sq` override).
#[test]
fn wpg_build_bit_identical_across_threads_at_pinned_sizes() {
    for &(n, delta) in &[(1usize, 0.9f64), (2, 0.9), (1_000, 0.05), (10_000, 0.05)] {
        let points = splitmix_points(n, 0xF00D ^ n as u64);
        let serial = WpgBuilder::new(delta, 6, InverseDistanceRss)
            .build(&points)
            .edges()
            .collect::<Vec<_>>();
        for threads in [2usize, 8] {
            let par = WpgBuilder::new(delta, 6, InverseDistanceRss)
                .build_threads(&points, threads)
                .edges()
                .collect::<Vec<_>>();
            assert_eq!(serial, par, "edge list diverged at n={n} threads={threads}");
        }
        if n == 1_000 {
            let noisy_serial = WpgBuilder::new(delta, 6, LogDistanceRss::default())
                .build(&points)
                .edges()
                .collect::<Vec<_>>();
            let noisy_par = WpgBuilder::new(delta, 6, LogDistanceRss::default())
                .build_threads(&points, 4)
                .edges()
                .collect::<Vec<_>>();
            assert_eq!(
                noisy_serial, noisy_par,
                "log-distance edges diverged at n={n}"
            );
        }
    }
}

/// All-coincident points: every pairwise distance is exactly 0, so every
/// comparison in the rank sort is an equal-score tie — the output is defined
/// purely by the id tie-break. The blocked kernel must also report the full
/// bucket (d_sq = 0 ≤ r²) without dropping or duplicating entries.
#[test]
fn degenerate_all_coincident_points() {
    let n = 100usize;
    let points = vec![Point::new(0.5, 0.5); n];
    let grid = GridIndex::build(&points, 0.1);
    let mut buf = Vec::new();
    grid.neighbors_within(7, 0.1, &mut buf);
    let got = sorted_by_id(&buf);
    let want: Vec<(UserId, u64)> = (0..n as UserId)
        .filter(|&v| v != 7)
        .map(|v| (v, 0.0f64.to_bits()))
        .collect();
    assert_eq!(
        got, want,
        "coincident bucket scan lost or duplicated entries"
    );

    // With m ≥ n−1 every tie-ordered peer survives: the WPG is the complete
    // graph, and edge (u,v) carries the id-rank of the later endpoint.
    let g = WpgBuilder::new(0.1, n, InverseDistanceRss).build(&points);
    assert_eq!(g.m(), n * (n - 1) / 2, "coincident WPG must be complete");
    for threads in [2usize, 8] {
        let par = WpgBuilder::new(0.1, n, InverseDistanceRss).build_threads(&points, threads);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            par.edges().collect::<Vec<_>>(),
            "coincident build diverged at {threads} threads"
        );
    }
    // Peers of 0 in tie-break order are 1,2,…; peers of 1 are 0,2,…:
    // rank(1 at 0) = 1 and rank(0 at 1) = 1, so edge (0,1) has weight 1.
    let e01 = g
        .edges()
        .find(|e| e.u == 0 && e.v == 1)
        .expect("edge (0,1)");
    assert_eq!(e01.w, 1, "tie-break rank of the (0,1) pair");
}

/// A δ larger than the domain puts the whole population in one grid cell —
/// the blocked kernel must walk a single long bucket (several KERNEL_BLOCK
/// chunks plus a ragged tail) and still match the scalar reference.
#[test]
fn degenerate_single_cell() {
    let n = 150usize; // > 2 × KERNEL_BLOCK so the tail path is exercised
    let points = splitmix_points(n, 0xCE11);
    let delta = 1.5;
    let grid = GridIndex::build(&points, delta);
    let mut buf = Vec::new();
    for q in 0..n as UserId {
        grid.neighbors_within(q, delta, &mut buf);
        assert_eq!(
            sorted_by_id(&buf),
            brute_neighbors(&points, q, delta),
            "single-cell scan diverged at q={q}"
        );
    }
}

/// Satellite regression for the comparator contract: peers with exactly
/// equal RSS scores must rank by ascending id, deterministically, on both
/// the serial and threaded paths. Five users in a cross — the four arms are
/// equidistant from the center, and each arm ties with its two diagonal
/// neighbors — so every ranking in the instance contains a tie.
#[test]
fn equal_score_ties_rank_by_ascending_id() {
    let points = vec![
        Point::new(0.5, 0.5), // 0: center
        Point::new(0.6, 0.5), // 1: east
        Point::new(0.4, 0.5), // 2: west
        Point::new(0.5, 0.6), // 3: north
        Point::new(0.5, 0.4), // 4: south
    ];
    // Hand-computed min-rank weights under the id tie-break. E.g. user 0
    // sees all four arms at distance 0.1 → ranks 1,2,3,4 by id; user 1
    // sees 3 and 4 tie at √0.02 → 3 gets rank 2, 4 gets rank 3.
    let want = vec![
        Edge::new(0, 1, 1),
        Edge::new(0, 2, 1),
        Edge::new(0, 3, 1),
        Edge::new(0, 4, 1),
        Edge::new(1, 2, 4),
        Edge::new(1, 3, 2),
        Edge::new(1, 4, 2),
        Edge::new(2, 3, 2),
        Edge::new(2, 4, 3),
        Edge::new(3, 4, 4),
    ];
    for threads in [1usize, 2, 4] {
        let g = WpgBuilder::new(0.5, 4, InverseDistanceRss).build_threads(&points, threads);
        let mut got = g.edges().collect::<Vec<_>>();
        got.sort_by_key(|e| (e.u, e.v));
        assert_eq!(got, want, "tie-break ranks diverged at {threads} threads");
    }
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena reuse never leaks state between consecutive builds or queries:
    /// a builder that has already built one population produces the same
    /// graph for a second population as a fresh builder, and a grid query
    /// buffer carried from a larger query does not contaminate a smaller
    /// one.
    #[test]
    fn arena_reuse_across_builds_never_leaks(
        a in arb_points(150),
        b in arb_points(150),
        delta in 0.05f64..0.4,
    ) {
        let builder = WpgBuilder::new(delta, 5, InverseDistanceRss);
        let _warmup = builder.build(&a);
        let reused = builder.build(&b);
        let fresh = WpgBuilder::new(delta, 5, InverseDistanceRss).build(&b);
        prop_assert_eq!(
            reused.edges().collect::<Vec<_>>(),
            fresh.edges().collect::<Vec<_>>(),
            "builder scratch leaked across consecutive builds"
        );

        let grid_a = GridIndex::build(&a, delta);
        let grid_b = GridIndex::build(&b, delta);
        let mut carried = Vec::new();
        // Warm the buffer on every user of `a`, then replay `b`'s queries
        // through the same buffer and through a fresh one.
        for q in 0..a.len() as UserId {
            grid_a.neighbors_within(q, delta, &mut carried);
        }
        let mut fresh_buf = Vec::new();
        for q in 0..b.len() as UserId {
            grid_b.neighbors_within(q, delta, &mut carried);
            grid_b.neighbors_within(q, delta, &mut fresh_buf);
            prop_assert_eq!(&carried, &fresh_buf, "query buffer leaked prior results");
        }
    }
}
