//! Property-based tests for WPG construction and connectivity.

use nela_geo::{DatasetSpec, GridIndex, Point, UserId};
use nela_wpg::connectivity::{components_under, nothing_removed, t_cluster_of};
use nela_wpg::{InverseDistanceRss, WpgBuilder};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..120)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_respects_degree_and_weight_bounds(
        points in arb_points(),
        m in 1usize..8,
        delta in 0.05f64..0.5,
    ) {
        let g = WpgBuilder::new(delta, m, InverseDistanceRss).build(&points);
        for u in 0..g.n() as UserId {
            prop_assert!(g.degree(u) <= m);
        }
        for e in g.edges() {
            prop_assert!(e.w >= 1 && e.w <= m as u32);
            // Edges never exceed the radio range (δ itself is in range).
            let d = points[e.u as usize].dist(&points[e.v as usize]);
            prop_assert!(d <= delta, "edge of length {d} with δ = {delta}");
        }
    }

    #[test]
    fn components_partition_all_vertices(
        points in arb_points(),
        t in 1u32..6,
    ) {
        let g = WpgBuilder::new(0.2, 5, InverseDistanceRss).build(&points);
        let comps = components_under(&g, t, &nothing_removed);
        let mut all: Vec<UserId> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..g.n() as UserId).collect::<Vec<_>>());
        // Classes are consistent with per-vertex BFS.
        for comp in comps.iter().take(5) {
            let mut cls = t_cluster_of(&g, comp[0], t, &nothing_removed);
            cls.sort_unstable();
            prop_assert_eq!(&cls, comp);
        }
    }

    #[test]
    fn grid_neighbor_symmetry(points in arb_points(), radius in 0.02f64..0.3) {
        let grid = GridIndex::build(&points, radius.min(0.2));
        let mut buf = Vec::new();
        for u in 0..points.len().min(20) as UserId {
            grid.neighbors_within(u, radius, &mut buf);
            let forward: Vec<UserId> = buf.iter().map(|&(v, _)| v).collect();
            for v in forward {
                grid.neighbors_within(v, radius, &mut buf);
                prop_assert!(
                    buf.iter().any(|&(w, _)| w == u),
                    "neighbor relation must be symmetric ({u} ↔ {v})"
                );
            }
        }
    }

    #[test]
    fn dataset_determinism_and_range(n in 10usize..300, seed in 0u64..1000) {
        let spec = DatasetSpec::small_uniform(n, seed);
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(Point::in_unit_square));
    }
}
