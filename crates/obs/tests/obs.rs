//! Integration tests for nela-obs: bucket boundaries, quantile properties,
//! snapshot round-trips, and the disabled-recorder guarantees.

use nela_obs::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, CounterSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot, Registry, N_BUCKETS,
};
use proptest::prelude::*;

#[test]
fn exact_powers_of_two_open_new_buckets() {
    // 2^k is the smallest value of its bucket: one below lands a bucket
    // earlier for every finite bucket.
    for k in 0..N_BUCKETS - 2 {
        let v = 1u64 << k;
        assert_eq!(bucket_index(v), k + 1, "2^{k} opens bucket {}", k + 1);
        if v > 1 {
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1 stays in bucket {k}");
        }
        assert_eq!(bucket_lower_bound(k + 1), v);
    }
}

#[test]
fn overflow_bucket_catches_everything_above_the_last_finite_bound() {
    let last_finite = N_BUCKETS - 2;
    let edge = bucket_upper_bound(last_finite).expect("finite bucket");
    assert_eq!(bucket_index(edge), last_finite);
    assert_eq!(bucket_index(edge + 1), N_BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(N_BUCKETS - 1), None);

    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(edge + 1);
    assert_eq!(h.buckets()[N_BUCKETS - 1], 2);
    // The overflow bucket still reports a finite quantile: the observed max.
    assert_eq!(h.quantile(1.0), u64::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn quantile_never_understates_and_respects_max(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let estimate = h.quantile(q);
        let max = *values.iter().max().unwrap();
        prop_assert!(estimate <= max);
        // The estimate is a bucket upper bound: at least the true quantile.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert!(estimate >= sorted[rank - 1]);
    }

    #[test]
    fn snapshot_json_round_trip(
        values in proptest::collection::vec(0u64..u64::MAX, 0..50),
        ctr in 0u64..u64::MAX,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = MetricsSnapshot {
            enabled: true,
            histograms: vec![HistogramSnapshot::of("stage.rt", &h)],
            counters: vec![CounterSnapshot { name: "ctr.rt".to_string(), value: ctr }],
        };
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse back");
        prop_assert_eq!(back, snap);
    }
}

/// All assertions about the process-global recorder live in this single
/// test: enable/disable flips shared state, and parallel test threads would
/// otherwise race on it.
#[test]
fn global_recorder_lifecycle() {
    // Disabled (the default): nothing records, nothing allocates.
    assert!(!nela_obs::enabled());
    nela_obs::add("ctr", 1);
    nela_obs::observe("hist", 1);
    {
        let span = nela_obs::span("hist");
        assert!(!span.is_recording());
    }
    assert!(
        !nela_obs::initialized(),
        "disabled recording must not allocate the global registry"
    );
    let empty = nela_obs::snapshot();
    assert!(!empty.enabled);
    assert!(empty.histograms.is_empty() && empty.counters.is_empty());

    // Enabled: the same calls land in the global registry.
    nela_obs::enable();
    assert!(nela_obs::enabled() && nela_obs::initialized());
    nela_obs::add("ctr", 2);
    nela_obs::observe("hist", 7);
    {
        let span = nela_obs::span("hist");
        assert!(span.is_recording());
    }
    let live = nela_obs::snapshot();
    assert!(live.enabled);
    assert_eq!(live.counter("ctr"), Some(2));
    let h = live.histogram("hist").expect("histogram exists");
    assert_eq!(h.count, 2, "observe + span drop");

    // Disable again: recording stops, existing data stays until reset.
    nela_obs::disable();
    nela_obs::add("ctr", 100);
    assert_eq!(nela_obs::snapshot().counter("ctr"), Some(2));
    nela_obs::reset();
    let cleared = nela_obs::snapshot();
    assert_eq!(cleared.counter("ctr"), Some(0));
    assert_eq!(cleared.histogram("hist").unwrap().count, 0);
}

#[test]
fn explicit_registry_is_independent_of_the_global() {
    let r = Registry::new();
    r.observe("local", 3);
    r.add("local.ctr", 9);
    let s = r.snapshot();
    assert_eq!(s.counter("local.ctr"), Some(9));
    assert_eq!(s.histogram("local").unwrap().count, 1);
    // Nothing leaked into (or from) the process-global registry.
    assert_eq!(nela_obs::snapshot().counter("local.ctr"), None);
}
