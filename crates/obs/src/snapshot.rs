//! Serializable freeze of a [`Registry`](crate::Registry).

use crate::hist::{quantile_from_buckets, Histogram, N_BUCKETS};
use serde::{Deserialize, Serialize};

/// One histogram, frozen. All `*_ns` fields are nanoseconds by the
/// pipeline's recording convention; quantiles are bucket-resolution upper
/// bounds clamped to `max_ns` (they may overstate, never understate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Freezes `h` under `name`.
    pub fn of(name: &str, h: &Histogram) -> Self {
        let buckets = h.buckets();
        let max = h.max();
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum(),
            p50_ns: quantile_from_buckets(&buckets, 0.50, max),
            p95_ns: quantile_from_buckets(&buckets, 0.95, max),
            p99_ns: quantile_from_buckets(&buckets, 0.99, max),
            max_ns: max,
            buckets: buckets.to_vec(),
        }
    }

    /// Mean of the recorded values, `None` when the histogram is empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Re-derives a quantile from the frozen buckets (e.g. for renders that
    /// want more than the precomputed p50/p95/p99).
    pub fn quantile(&self, q: f64) -> u64 {
        let mut buckets = [0u64; N_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = *src;
        }
        quantile_from_buckets(&buckets, q, self.max_ns)
    }
}

/// One counter, frozen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Everything the recorder saw, sorted by name, ready for JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether the recorder was live when the snapshot was taken.
    pub enabled: bool,
    pub histograms: Vec<HistogramSnapshot>,
    pub counters: Vec<CounterSnapshot>,
}

impl MetricsSnapshot {
    /// The histogram named `name`, if any values were recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The counter named `name` (`None` when it was never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        // Invariant, not a fallible operation: the snapshot is a tree of
        // strings and integers (no maps with non-string keys, no NaN floats,
        // no recursion), which `serde_json` can always encode — a `Result`
        // here would force every caller to invent an unreachable error path.
        serde_json::to_string_pretty(self).expect("snapshot is always serializable")
    }

    /// Parses a snapshot previously written with [`MetricsSnapshot::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde::DeError> {
        serde_json::from_str(s)
    }

    /// Renders a fixed-width text table (the `nela stats` view). Durations
    /// are scaled to the most readable unit per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics snapshot (recorder {})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));
        if self.histograms.is_empty() && self.counters.is_empty() {
            out.push_str("  (empty — nothing was recorded)\n");
            return out;
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n  {:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                "stage", "count", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p95_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n  {:<28} {:>9}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("  {:<28} {:>9}\n", c.name, c.value));
            }
        }
        out
    }
}

/// Human-readable nanosecond rendering: `420ns`, `3.2us`, `1.5ms`, `2.1s`.
pub fn fmt_ns(ns: u64) -> String {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    const S: u64 = 1_000_000_000;
    if ns < US {
        format!("{ns}ns")
    } else if ns < MS {
        format!("{:.1}us", ns as f64 / US as f64)
    } else if ns < S {
        format!("{:.1}ms", ns as f64 / MS as f64)
    } else {
        format!("{:.2}s", ns as f64 / S as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        MetricsSnapshot {
            enabled: true,
            histograms: vec![HistogramSnapshot::of("stage.x", &h)],
            counters: vec![CounterSnapshot {
                name: "ctr.y".to_string(),
                value: 42,
            }],
        }
    }

    #[test]
    fn accessors_find_by_name() {
        let s = sample();
        assert_eq!(s.histogram("stage.x").unwrap().count, 4);
        assert!(s.histogram("stage.z").is_none());
        assert_eq!(s.counter("ctr.y"), Some(42));
        assert_eq!(s.counter("ctr.z"), None);
    }

    #[test]
    fn mean_is_none_when_empty() {
        let empty = HistogramSnapshot::of("e", &Histogram::new());
        assert_eq!(empty.mean_ns(), None);
        let s = sample();
        let mean = s.histogram("stage.x").unwrap().mean_ns().unwrap();
        assert!((mean - 25_175.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_instrument() {
        let text = sample().render();
        assert!(text.contains("stage.x"));
        assert!(text.contains("ctr.y"));
        assert!(text.contains("42"));
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(420), "420ns");
        assert_eq!(fmt_ns(3_200), "3.2us");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.10s");
    }
}
