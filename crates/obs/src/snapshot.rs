//! Serializable freeze of a [`Registry`](crate::Registry).

use crate::hist::{quantile_from_buckets, Histogram, N_BUCKETS};
use serde::{Deserialize, Serialize};

/// One histogram, frozen. All `*_ns` fields are nanoseconds by the
/// pipeline's recording convention; quantiles are bucket-resolution upper
/// bounds clamped to `max_ns` (they may overstate, never understate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Freezes `h` under `name`.
    pub fn of(name: &str, h: &Histogram) -> Self {
        let buckets = h.buckets();
        let max = h.max();
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum(),
            p50_ns: quantile_from_buckets(&buckets, 0.50, max),
            p95_ns: quantile_from_buckets(&buckets, 0.95, max),
            p99_ns: quantile_from_buckets(&buckets, 0.99, max),
            max_ns: max,
            buckets: buckets.to_vec(),
        }
    }

    /// Mean of the recorded values, `None` when the histogram is empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Re-derives a quantile from the frozen buckets (e.g. for renders that
    /// want more than the precomputed p50/p95/p99).
    pub fn quantile(&self, q: f64) -> u64 {
        let mut buckets = [0u64; N_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = *src;
        }
        quantile_from_buckets(&buckets, q, self.max_ns)
    }
}

/// One counter, frozen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Everything the recorder saw, sorted by name, ready for JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether the recorder was live when the snapshot was taken.
    pub enabled: bool,
    pub histograms: Vec<HistogramSnapshot>,
    pub counters: Vec<CounterSnapshot>,
}

impl MetricsSnapshot {
    /// The histogram named `name`, if any values were recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The counter named `name` (`None` when it was never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        // Invariant, not a fallible operation: the snapshot is a tree of
        // strings and integers (no maps with non-string keys, no NaN floats,
        // no recursion), which `serde_json` can always encode — a `Result`
        // here would force every caller to invent an unreachable error path.
        serde_json::to_string_pretty(self).expect("snapshot is always serializable")
    }

    /// Parses a snapshot previously written with [`MetricsSnapshot::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde::DeError> {
        serde_json::from_str(s)
    }

    /// The difference `self - baseline`: what was recorded *after* the
    /// baseline was taken. Counts, sums, and buckets subtract (saturating,
    /// so a reset between snapshots degrades to "everything since reset"
    /// instead of underflowing); quantiles are recomputed from the delta
    /// buckets, so they describe only the window's values. Instruments with
    /// nothing recorded in the window are dropped; instruments absent from
    /// the baseline carry over whole. `max_ns` is inherited from `self` — a
    /// bucket histogram cannot recover the window max exactly, so it may
    /// overstate (never understate), matching the quantile convention.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let base = baseline.histograms.iter().find(|b| b.name == h.name);
                let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                let mut buckets = [0u64; N_BUCKETS];
                for (i, dst) in buckets.iter_mut().enumerate() {
                    let cur = h.buckets.get(i).copied().unwrap_or(0);
                    let old = base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0);
                    *dst = cur.saturating_sub(old);
                }
                Some(HistogramSnapshot {
                    name: h.name.clone(),
                    count,
                    sum_ns: h.sum_ns.saturating_sub(base.map_or(0, |b| b.sum_ns)),
                    p50_ns: quantile_from_buckets(&buckets, 0.50, h.max_ns),
                    p95_ns: quantile_from_buckets(&buckets, 0.95, h.max_ns),
                    p99_ns: quantile_from_buckets(&buckets, 0.99, h.max_ns),
                    max_ns: h.max_ns,
                    buckets: buckets.to_vec(),
                })
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let old = baseline.counter(&c.name).unwrap_or(0);
                let value = c.value.saturating_sub(old);
                (value > 0).then(|| CounterSnapshot {
                    name: c.name.clone(),
                    value,
                })
            })
            .collect();
        MetricsSnapshot {
            enabled: self.enabled,
            histograms,
            counters,
        }
    }

    /// Renders a fixed-width text table (the `nela stats` view). Durations
    /// are scaled to the most readable unit per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics snapshot (recorder {})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));
        if self.histograms.is_empty() && self.counters.is_empty() {
            out.push_str("  (empty — nothing was recorded)\n");
            return out;
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n  {:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                "stage", "count", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<28} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p95_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n  {:<28} {:>9}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("  {:<28} {:>9}\n", c.name, c.value));
            }
        }
        out
    }
}

/// A rolling window over the global recorder: each [`MetricsWindow::rotate`]
/// returns only what was recorded since the previous rotation (or since
/// construction), as a normal [`MetricsSnapshot`]. This is how long-running
/// drivers (e.g. the mobility loop) report per-interval latency
/// distributions without resetting the global registry — cumulative totals
/// stay intact for the end-of-run snapshot.
#[derive(Debug, Clone)]
pub struct MetricsWindow {
    baseline: MetricsSnapshot,
}

impl MetricsWindow {
    /// Opens a window starting at the recorder's current state.
    pub fn start() -> Self {
        MetricsWindow {
            baseline: crate::snapshot(),
        }
    }

    /// Opens a window starting at an explicit baseline (e.g. a snapshot
    /// taken around a phase boundary).
    pub fn from_baseline(baseline: MetricsSnapshot) -> Self {
        MetricsWindow { baseline }
    }

    /// What was recorded since the last rotation; advances the window.
    pub fn rotate(&mut self) -> MetricsSnapshot {
        let now = crate::snapshot();
        let delta = now.delta_since(&self.baseline);
        self.baseline = now;
        delta
    }

    /// What was recorded since the last rotation, without advancing.
    pub fn peek(&self) -> MetricsSnapshot {
        crate::snapshot().delta_since(&self.baseline)
    }
}

/// Human-readable nanosecond rendering: `420ns`, `3.2us`, `1.5ms`, `2.1s`.
pub fn fmt_ns(ns: u64) -> String {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    const S: u64 = 1_000_000_000;
    if ns < US {
        format!("{ns}ns")
    } else if ns < MS {
        format!("{:.1}us", ns as f64 / US as f64)
    } else if ns < S {
        format!("{:.1}ms", ns as f64 / MS as f64)
    } else {
        format!("{:.2}s", ns as f64 / S as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        MetricsSnapshot {
            enabled: true,
            histograms: vec![HistogramSnapshot::of("stage.x", &h)],
            counters: vec![CounterSnapshot {
                name: "ctr.y".to_string(),
                value: 42,
            }],
        }
    }

    #[test]
    fn accessors_find_by_name() {
        let s = sample();
        assert_eq!(s.histogram("stage.x").unwrap().count, 4);
        assert!(s.histogram("stage.z").is_none());
        assert_eq!(s.counter("ctr.y"), Some(42));
        assert_eq!(s.counter("ctr.z"), None);
    }

    #[test]
    fn mean_is_none_when_empty() {
        let empty = HistogramSnapshot::of("e", &Histogram::new());
        assert_eq!(empty.mean_ns(), None);
        let s = sample();
        let mean = s.histogram("stage.x").unwrap().mean_ns().unwrap();
        assert!((mean - 25_175.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_instrument() {
        let text = sample().render();
        assert!(text.contains("stage.x"));
        assert!(text.contains("ctr.y"));
        assert!(text.contains("42"));
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let h = Histogram::new();
        for v in [100u64, 200] {
            h.record(v);
        }
        let before = MetricsSnapshot {
            enabled: true,
            histograms: vec![HistogramSnapshot::of("stage.x", &h)],
            counters: vec![CounterSnapshot {
                name: "ctr.y".to_string(),
                value: 10,
            }],
        };
        // Window records two more values into stage.x, a fresh stage.z, and
        // bumps the counter.
        for v in [1_000_000u64, 2_000_000] {
            h.record(v);
        }
        let z = Histogram::new();
        z.record(500);
        let after = MetricsSnapshot {
            enabled: true,
            histograms: vec![
                HistogramSnapshot::of("stage.x", &h),
                HistogramSnapshot::of("stage.z", &z),
            ],
            counters: vec![CounterSnapshot {
                name: "ctr.y".to_string(),
                value: 17,
            }],
        };
        let delta = after.delta_since(&before);
        let x = delta.histogram("stage.x").unwrap();
        assert_eq!(x.count, 2);
        assert_eq!(x.sum_ns, 3_000_000);
        // Quantiles describe only the window's two millisecond-scale values,
        // not the baseline's sub-microsecond ones.
        assert!(x.p50_ns >= 1_000_000, "p50 {} reflects baseline", x.p50_ns);
        let z = delta.histogram("stage.z").unwrap();
        assert_eq!(z.count, 1, "baseline-absent histogram carries over");
        assert_eq!(delta.counter("ctr.y"), Some(7));
        // An idle instrument vanishes from the delta.
        let idle = after.delta_since(&after);
        assert!(idle.histograms.is_empty());
        assert!(idle.counters.is_empty());
    }

    #[test]
    fn delta_since_survives_a_reset_between_snapshots() {
        let before = sample();
        // A reset shrinks counts; the delta saturates to the post-reset view
        // instead of underflowing.
        let h = Histogram::new();
        h.record(300);
        let after = MetricsSnapshot {
            enabled: true,
            histograms: vec![HistogramSnapshot::of("stage.x", &h)],
            counters: vec![],
        };
        let delta = after.delta_since(&before);
        assert!(delta.histogram("stage.x").is_none(), "1 - 4 saturates to 0");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(420), "420ns");
        assert_eq!(fmt_ns(3_200), "3.2us");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.10s");
    }
}
