//! Name → instrument map backing the global recorder.

use crate::hist::Histogram;
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A registry of named histograms and counters. Instruments are created on
/// first use and live for the registry's lifetime; recording into an
/// existing instrument takes one read-lock plus one hash lookup. Handles
/// ([`Registry::histogram`], [`Registry::counter`]) are `Arc`s, so hot
/// loops can look a name up once and record lock-free afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
}

/// Lock discipline: the maps are only ever locked one at a time, and a
/// poisoned lock (a panicking recorder thread) must not take the whole
/// telemetry layer down — recover the guard and keep serving.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        let mut map = write(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        let mut map = write(&self.counters);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of counter `name` (0 when it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        read(&self.counters)
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Zeroes every instrument, keeping the handles alive (outstanding
    /// `Arc`s keep recording into the same cells).
    pub fn reset(&self) {
        for h in read(&self.histograms).values() {
            h.reset();
        }
        for c in read(&self.counters).values() {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Freezes the registry into a serializable snapshot, instruments
    /// sorted by name so output is deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut histograms: Vec<HistogramSnapshot> = read(&self.histograms)
            .iter()
            .map(|(name, h)| HistogramSnapshot::of(name, h))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut counters: Vec<CounterSnapshot> = read(&self.counters)
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            enabled: true,
            histograms,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_created_on_first_use_and_shared() {
        let r = Registry::new();
        r.observe("a", 10);
        r.observe("a", 20);
        r.add("c", 3);
        r.add("c", 4);
        assert_eq!(r.histogram("a").count(), 2);
        assert_eq!(r.counter_value("c"), 7);
        assert_eq!(r.counter_value("never"), 0);
        // The handle records into the same cell as the name.
        let h = r.histogram("a");
        h.record(30);
        assert_eq!(r.histogram("a").count(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.observe("z.stage", 5);
        r.observe("a.stage", 5);
        r.add("m.counter", 1);
        let s = r.snapshot();
        let names: Vec<&str> = s.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["a.stage", "z.stage"]);
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.counters[0].value, 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let r = Registry::new();
        let h = r.histogram("x");
        let c = r.counter("y");
        h.record(1);
        c.fetch_add(5, Ordering::Relaxed);
        r.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(r.counter_value("y"), 0);
        h.record(2);
        assert_eq!(r.histogram("x").count(), 1);
    }

    #[test]
    fn concurrent_mixed_recording_is_sound() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        r.observe("hist", i);
                        r.add("ctr", 1);
                    }
                });
            }
        });
        assert_eq!(r.histogram("hist").count(), 4_000);
        assert_eq!(r.counter_value("ctr"), 4_000);
    }
}
