//! Observability substrate for the NELA pipeline: latency histograms,
//! monotonic counters, and scoped span timers behind a recorder that is a
//! no-op until explicitly enabled.
//!
//! The serving pipeline's hot paths (grid fill, WPG assembly, per-request
//! clustering/bounding, registry claims, netsim RPCs) cannot afford an
//! always-on metrics layer, and the workload averages in
//! `nela::metrics::WorkloadStats` cannot explain *distributions* — why p99
//! differs from p50, where a batch spends its time, or how contended the
//! sharded registry actually is. This crate closes that gap:
//!
//! - [`Histogram`] — lock-free log2-bucketed latency histogram with
//!   count/sum/max and bucket-resolution quantiles.
//! - [`Registry`] — a name → histogram/counter map; [`Registry::snapshot`]
//!   freezes it into a serializable [`MetricsSnapshot`].
//! - A process-global recorder ([`enable`], [`span`], [`observe`], [`add`])
//!   guarded by one relaxed atomic load: while disabled (the default) every
//!   recording call returns immediately, [`span`] never reads the clock, and
//!   the global registry is never even allocated.
//!
//! Values are dimensionless `u64`s; by convention the pipeline records
//! **nanoseconds** into every `*` stage histogram (see [`stage`]) and plain
//! event counts into the [`counter`] names.

mod hist;
mod registry;
mod snapshot;

pub use hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, N_BUCKETS};
pub use registry::Registry;
pub use snapshot::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot, MetricsWindow};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Canonical stage-histogram names recorded by the pipeline (values in
/// nanoseconds unless noted). Shared constants so producers and consumers
/// (CLI `stats` render, CI smoke checks) cannot drift apart.
pub mod stage {
    /// One `GridIndex::build_threads` call (serial or parallel).
    pub const GRID_BUILD: &str = "grid.build";
    /// One whole `WpgBuilder::build_with_index_threads` call.
    pub const WPG_BUILD: &str = "wpg.build";
    /// WPG sub-stage: per-user top-M rank lists.
    pub const WPG_RANK: &str = "wpg.build.rank";
    /// WPG sub-stage: mutual-edge emission.
    pub const WPG_EDGES: &str = "wpg.build.edges";
    /// WPG sub-stage: CSR assembly.
    pub const WPG_CSR: &str = "wpg.build.csr";
    /// Phase 1 of one request: k-clustering (per attempt on retry paths).
    pub const CLUSTERING: &str = "engine.phase1.cluster";
    /// Phase 2 of one request: secure bounding CPU time.
    pub const BOUNDING: &str = "engine.phase2.bound";
    /// One `ShardedRegistry::try_claim` call, end to end.
    pub const REGISTRY_CLAIM: &str = "registry.claim";
    /// Shard-lock acquisition wait inside one claim.
    pub const REGISTRY_LOCK_WAIT: &str = "registry.claim.lock_wait";
    /// One mobility tick's incremental WPG maintenance.
    pub const MOBILITY_INCREMENTAL: &str = "mobility.tick.incremental";
    /// Incremental sub-stage: staging the move batch into the sharded grid.
    pub const INC_STAGE: &str = "wpg.inc.stage";
    /// Incremental sub-stage: committing dirty shards (CSR rebuild).
    pub const INC_COMMIT: &str = "wpg.inc.commit";
    /// Incremental sub-stage: dirty-set collection (3×3 dilation gather).
    pub const INC_COLLECT: &str = "wpg.inc.collect";
    /// Incremental sub-stage: dirty-set rank rescore.
    pub const INC_RESCORE: &str = "wpg.inc.rescore";
    /// Incremental snapshot: mutual-edge emission from maintained ranks.
    pub const INC_EMIT: &str = "wpg.inc.emit";
    /// Incremental snapshot: in-place CSR refill.
    pub const INC_REFILL: &str = "wpg.inc.refill";
    /// One mobility tick's from-scratch rebuild (when measured).
    pub const MOBILITY_REBUILD: &str = "mobility.tick.rebuild";
    /// One `LbsServer::handle` call (query evaluation + transfer accounting).
    pub const LBS_HANDLE: &str = "lbs.handle";
    /// One server-side cloaked range query (`cloaked_range`).
    pub const LBS_RANGE: &str = "lbs.query.range";
    /// One server-side kRNN query (`cloaked_krnn`), its inner range query
    /// included.
    pub const LBS_KRNN: &str = "lbs.query.krnn";
    /// One client-side refinement (`refine_range` / `refine_knn`).
    pub const LBS_REFINE: &str = "lbs.refine";
    /// Serve mode: time a request spent queued before a worker picked it up.
    pub const SERVE_QUEUE_WAIT: &str = "serve.queue.wait";
    /// Serve mode: the cloaking leg of one request (cluster + bounding,
    /// claim retries included).
    pub const SERVE_CLOAK: &str = "serve.cloak";
    /// Serve mode: one request end to end — admission to refined answer.
    pub const SERVE_E2E: &str = "serve.request.e2e";
    /// Netsim-backed sessions: RPC retransmissions per cloaking request
    /// (dimensionless count, not nanoseconds).
    pub const NET_RETRANS_PER_REQ: &str = "net.request.retransmits";
    /// Netsim-backed sessions: RPC timeouts per cloaking request
    /// (dimensionless count, not nanoseconds).
    pub const NET_TIMEOUTS_PER_REQ: &str = "net.request.timeouts";
    /// Netsim-backed sessions: virtual network time one cloaking request
    /// spent on the radio (nanoseconds of simulated time).
    pub const NET_VIRTUAL_TIME: &str = "net.request.virtual";
}

/// Canonical counter names recorded by the pipeline (plain event counts).
pub mod counter {
    /// Requests served successfully (reuse included).
    pub const REQ_SERVED: &str = "engine.request.served";
    /// Requests that failed with a typed error.
    pub const REQ_FAILED: &str = "engine.request.failed";
    /// Served requests answered entirely from the registry.
    pub const REQ_REUSED: &str = "engine.request.reused";
    /// Extra clustering attempts forced by claim conflicts.
    pub const CLAIM_RETRIES: &str = "engine.claim.retries";
    /// Requests that starved on contention (retry budget exhausted).
    pub const REQ_CONTENTION: &str = "engine.request.contention";
    /// `try_claim` calls rejected because a rival won a member.
    pub const CLAIM_CONFLICTS: &str = "registry.claim.conflicts";
    /// RPC attempts beyond the first (netsim retransmissions).
    pub const RPC_RETRANSMITS: &str = "net.rpc.retransmits";
    /// Timeouts charged for lost transmissions (request or reply leg).
    pub const RPC_TIMEOUTS: &str = "net.rpc.timeouts";
    /// RPCs that completed.
    pub const RPC_OK: &str = "net.rpc.ok";
    /// RPCs abandoned after the full retry budget.
    pub const RPC_FAILED: &str = "net.rpc.failed";
    /// Cloaked LBS queries evaluated by the server.
    pub const LBS_QUERIES: &str = "lbs.query.served";
    /// Candidate POIs returned across all cloaked queries.
    pub const LBS_CANDIDATES: &str = "lbs.query.candidates";
    /// Serve mode: requests admitted into the queue.
    pub const SERVE_ADMITTED: &str = "serve.request.admitted";
    /// Serve mode: arrivals dropped because the queue was full.
    pub const SERVE_SHED: &str = "serve.request.shed";
    /// Serve mode: requests answered end to end (cloak + query + refine).
    pub const SERVE_SERVED: &str = "serve.request.served";
    /// Serve mode: admitted requests whose cloaking leg failed.
    pub const SERVE_FAILED: &str = "serve.request.failed";
    /// Serve mode: admitted requests dropped because their deadline passed
    /// while they waited in the queue.
    pub const SERVE_EXPIRED: &str = "serve.request.expired";
}

/// Whether the global recorder is live. Relaxed is enough: recording is
/// advisory — a racing `enable` may miss a few events, never corrupt state.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The global registry, allocated on first `enable()` — never while the
/// recorder stays disabled (the "allocates nothing" guarantee).
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// True when the global recorder is live. One relaxed load — the only cost
/// instrumented hot paths pay while metrics are off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True once the global registry has been allocated (it never is unless
/// [`enable`] ran). Exposed for the disabled-recorder guard tests.
pub fn initialized() -> bool {
    GLOBAL.get().is_some()
}

/// The global registry, allocating it on first use. Prefer the free
/// functions ([`add`], [`observe`], [`span`]) on hot paths — they skip the
/// allocation entirely while disabled.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Turns the global recorder on (idempotent).
pub fn enable() {
    let _ = global();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the global recorder off. Already-started spans still record their
/// duration; new recording calls become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears every histogram and counter in the global registry (keeps the
/// enabled/disabled state).
pub fn reset() {
    if let Some(r) = GLOBAL.get() {
        r.reset();
    }
}

/// Snapshot of the global registry. While the recorder was never enabled
/// this is an empty snapshot with `enabled: false`.
pub fn snapshot() -> MetricsSnapshot {
    match GLOBAL.get() {
        Some(r) => {
            let mut s = r.snapshot();
            s.enabled = enabled();
            s
        }
        None => MetricsSnapshot {
            enabled: false,
            histograms: Vec::new(),
            counters: Vec::new(),
        },
    }
}

/// Adds `delta` to the global counter `name` (no-op while disabled).
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        global().add(name, delta);
    }
}

/// Records `value` into the global histogram `name` (no-op while disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        global().observe(name, value);
    }
}

/// Records a duration, in nanoseconds, into the global histogram `name`.
#[inline]
pub fn observe_duration(name: &str, d: Duration) {
    if enabled() {
        global().observe(name, saturating_ns(d));
    }
}

/// Clamps a duration to u64 nanoseconds (saturating far beyond any span
/// this pipeline produces).
#[inline]
pub fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A scoped timer: records the elapsed nanoseconds into histogram `name`
/// when dropped. While the recorder is disabled the span is inert — it
/// holds no name, never reads the clock, and drops for free.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span(Option<(&'static str, Instant)>);

impl Span {
    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.0.take() {
            observe(name, saturating_ns(started.elapsed()));
        }
    }
}

/// Starts a scoped timer over histogram `name`. Returns an inert span while
/// the recorder is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span(Some((name, Instant::now())))
    } else {
        Span(None)
    }
}
