//! Log2-bucketed latency histogram with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. Bucket 0 holds the value 0; bucket `b` in
/// `1..N_BUCKETS-1` holds values in `[2^(b-1), 2^b - 1]`; the last bucket
/// is the +∞ overflow: everything at or above `2^(N_BUCKETS-2)`
/// (≈ 275 seconds when recording nanoseconds).
pub const N_BUCKETS: usize = 40;

/// The bucket a value falls into (see [`N_BUCKETS`] for the layout).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

/// Smallest value bucket `b` can hold.
pub fn bucket_lower_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Largest value bucket `b` can hold, or `None` for the +∞ overflow bucket.
pub fn bucket_upper_bound(b: usize) -> Option<u64> {
    if b + 1 >= N_BUCKETS {
        None
    } else {
        Some((1u64 << b) - 1)
    }
}

/// A fixed-size log2 histogram. Recording is wait-free (relaxed atomic
/// adds); concurrent recorders never lose a count. Reads are monotone but
/// not atomic across fields — a snapshot taken while writers are active can
/// be slightly torn, which is fine for telemetry.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> [u64; N_BUCKETS] {
        std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed))
    }

    /// Resets every cell to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// The `q`-quantile at bucket resolution; see [`quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), q, self.max())
    }
}

/// The `q`-quantile of a bucketed distribution, reported as the upper bound
/// of the bucket containing the target rank (so a quantile never
/// *understates* the latency), clamped to the observed `max` — which also
/// gives the +∞ overflow bucket a finite answer. `q` is clamped to [0, 1];
/// an empty histogram reports 0.
pub fn quantile_from_buckets(buckets: &[u64; N_BUCKETS], q: f64, max: u64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper_bound(b).unwrap_or(max).min(max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64_without_gaps() {
        // Consecutive buckets tile the u64 range: each upper bound + 1 is
        // the next lower bound, starting from 0.
        assert_eq!(bucket_lower_bound(0), 0);
        for b in 0..N_BUCKETS - 1 {
            let hi = bucket_upper_bound(b).expect("finite bucket");
            assert_eq!(bucket_lower_bound(b + 1), hi + 1, "gap after bucket {b}");
        }
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), None, "last is +inf");
    }

    #[test]
    fn values_land_in_their_buckets() {
        for b in 0..N_BUCKETS - 1 {
            let lo = bucket_lower_bound(b);
            let hi = bucket_upper_bound(b).unwrap();
            assert_eq!(bucket_index(lo), b, "lower bound of {b}");
            assert_eq!(bucket_index(hi), b, "upper bound of {b}");
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        let b = h.buckets();
        assert_eq!(b[bucket_index(0)], 1);
        assert_eq!(b[bucket_index(1)], 2);
        assert_eq!(b[bucket_index(5)], 1);
        assert_eq!(b[bucket_index(1000)], 1);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.buckets().iter().sum::<u64>(), 0);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        // 99 values of 10 and one of 1_000_000.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        // p50/p95 sit in 10's bucket [8, 15]; p100 hits the outlier.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.95), 15);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // Empty histogram reports 0.
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(9); // bucket [8, 15], but max is 9
        assert_eq!(h.quantile(0.5), 9);
        // Overflow bucket reports the observed max, not +inf.
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1_000 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8_000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 8_000);
    }
}
