//! A minimal discrete-event simulation core.
//!
//! Events are ordered by virtual time with a monotone sequence number as the
//! tiebreaker, so simultaneous events pop in scheduling order and runs are
//! fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(KeyWrapper, u64)>>,
    events: Vec<Option<E>>,
    clock: f64,
    seq: u64,
}

/// Newtype so `Key` can live inside the heap tuple (BinaryHeap needs Ord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct KeyWrapper(
    u64, /* time bits, monotone-mapped */
    u64, /* seq */
);

/// Maps an f64 time to monotone-comparable bits (times are non-negative in
/// a simulation, but the mapping handles the general case).
fn time_bits(t: f64) -> u64 {
    let bits = t.to_bits();
    if t >= 0.0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            clock: 0.0,
            seq: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at` (must be ≥ `now`).
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(
            at >= self.clock,
            "cannot schedule into the past: {at} < {}",
            self.clock
        );
        let idx = self.events.len() as u64;
        self.events.push(Some(event));
        self.heap
            .push(Reverse((KeyWrapper(time_bits(at), self.seq), idx)));
        self.seq += 1;
    }

    /// Schedules `event` `delay` after `now`.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.clock + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let Reverse((KeyWrapper(tb, _), idx)) = self.heap.pop()?;
        let time = bits_time(tb);
        self.clock = time;
        let event = self.events[idx as usize]
            .take()
            .expect("event popped twice");
        Some((time, event))
    }
}

fn bits_time(bits: u64) -> f64 {
    if bits & (1 << 63) != 0 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(1.5, "second");
        let (t, _) = q.pop().unwrap();
        assert!((t - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
        assert_eq!(q.len(), 0);
    }
}
