//! Neighbor discovery: the beaconing process that *produces* the weighted
//! proximity graph.
//!
//! The paper assumes each device already knows its peers' RSS (§III,
//! Fig. 1). This module simulates how that knowledge arises: every device
//! periodically broadcasts a beacon; every device within radio range
//! receives it — or loses it to fading/collisions — and records an RSS
//! sample perturbed by per-beacon measurement noise. After the discovery
//! phase each device ranks the peers it actually heard by mean measured
//! RSS, keeps its strongest M, and the WPG is assembled exactly as the
//! builder does from ideal knowledge (mutual membership, min-rank weights).
//!
//! Comparing the discovered WPG against the ideal one quantifies how beacon
//! loss and RSS noise distort the substrate the cloaking algorithms stand
//! on (`exp_robustness` uses the same machinery at the algorithm level).

use crate::event::EventQueue;
use crate::network::ConfigError;
use nela_geo::{GridIndex, Point, UserId};
use nela_wpg::{Edge, Wpg};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Discovery-phase configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Radio range δ.
    pub delta: f64,
    /// Peer cap M.
    pub max_peers: usize,
    /// Beacon rounds (each device beacons once per round).
    pub rounds: u32,
    /// Probability an individual reception is lost.
    pub beacon_loss: f64,
    /// Standard deviation of per-beacon RSS measurement noise, in the same
    /// (monotone-in-distance) units the ranking uses.
    pub rss_noise: f64,
    /// Beacon period in virtual seconds.
    pub period: f64,
    /// Master seed. Jitter, loss, and noise each draw from their own
    /// derived stream (`seed ^ tag`), so e.g. enabling RSS noise does not
    /// reshuffle which beacons are lost.
    pub seed: u64,
}

/// Stream tag for beacon-schedule jitter.
const JITTER_STREAM: u64 = 0x4a49_5454; // "JITT"
/// Stream tag for reception-loss draws.
const LOSS_STREAM: u64 = 0x4c4f_5353; // "LOSS"
/// Stream tag for RSS measurement noise.
const NOISE_STREAM: u64 = 0x4e4f_4953; // "NOIS"

impl DiscoveryConfig {
    /// Checks every field against its domain. [`run_discovery`] calls this
    /// at entry, so a malformed config is a typed error up front instead of
    /// a mid-run panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.delta.is_finite() || self.delta <= 0.0 {
            return Err(ConfigError::new("delta", self.delta, "finite and > 0"));
        }
        if self.max_peers < 1 {
            return Err(ConfigError::new("max_peers", self.max_peers as f64, ">= 1"));
        }
        if self.rounds < 1 {
            return Err(ConfigError::new("rounds", self.rounds as f64, ">= 1"));
        }
        if !(0.0..1.0).contains(&self.beacon_loss) {
            return Err(ConfigError::new(
                "beacon_loss",
                self.beacon_loss,
                "in [0, 1)",
            ));
        }
        if !self.rss_noise.is_finite() || self.rss_noise < 0.0 {
            return Err(ConfigError::new(
                "rss_noise",
                self.rss_noise,
                "finite and >= 0",
            ));
        }
        if !self.period.is_finite() || self.period <= 0.0 {
            return Err(ConfigError::new("period", self.period, "finite and > 0"));
        }
        Ok(())
    }
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            delta: 2e-3,
            max_peers: 10,
            rounds: 8,
            beacon_loss: 0.0,
            rss_noise: 0.0,
            period: 1.0,
            seed: 0,
        }
    }
}

/// Aggregate discovery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiscoveryStats {
    /// Beacons broadcast.
    pub beacons: u64,
    /// Successful receptions.
    pub receptions: u64,
    /// Receptions lost.
    pub lost: u64,
    /// Virtual time at completion.
    pub finished_at: f64,
}

/// One scheduled transmission.
#[derive(Debug, Clone, Copy)]
struct Beacon {
    sender: UserId,
}

/// Runs the discovery phase and assembles the discovered WPG.
///
/// # Errors
/// [`ConfigError`] when any [`DiscoveryConfig`] field is outside its domain
/// (see [`DiscoveryConfig::validate`]).
///
/// # Panics
/// Panics if `grid` does not index `points` — a programming error at the
/// call site, not a configuration problem.
pub fn run_discovery(
    points: &[Point],
    grid: &GridIndex,
    cfg: &DiscoveryConfig,
) -> Result<(Wpg, DiscoveryStats), ConfigError> {
    assert_eq!(points.len(), grid.len(), "grid must index the population");
    cfg.validate()?;
    let n = points.len();
    let mut jitter_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ JITTER_STREAM);
    let mut loss_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ LOSS_STREAM);
    let mut noise_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ NOISE_STREAM);
    let mut queue: EventQueue<Beacon> = EventQueue::new();
    // Jittered beacon schedule: round r, device u beacons at
    // r·period + jitter(u, r) — the jitter decorrelates collisions.
    for round in 0..cfg.rounds {
        for u in 0..n as UserId {
            let jitter: f64 = jitter_rng.gen::<f64>() * cfg.period * 0.9;
            queue.schedule(round as f64 * cfg.period + jitter, Beacon { sender: u });
        }
    }

    // Per-receiver accumulated RSS samples: (sum, count) per heard sender.
    let mut samples: Vec<std::collections::HashMap<UserId, (f64, u32)>> =
        vec![std::collections::HashMap::new(); n];
    let mut stats = DiscoveryStats::default();
    let mut in_range = Vec::new();
    while let Some((_, beacon)) = queue.pop() {
        stats.beacons += 1;
        grid.neighbors_within(beacon.sender, cfg.delta, &mut in_range);
        for &(receiver, d_sq) in &in_range {
            if loss_rng.gen::<f64>() < cfg.beacon_loss {
                stats.lost += 1;
                continue;
            }
            stats.receptions += 1;
            // The ranking only needs a strictly distance-decreasing signal;
            // use −distance plus measurement noise (cf. nela-wpg's RSS
            // models).
            let rss = -d_sq.sqrt() + cfg.rss_noise * standard_normal(&mut noise_rng);
            let entry = samples[receiver as usize]
                .entry(beacon.sender)
                .or_insert((0.0, 0));
            entry.0 += rss;
            entry.1 += 1;
        }
    }
    stats.finished_at = queue.now();

    // Rank heard peers by mean RSS; keep the strongest M.
    let mut rank_of: Vec<Vec<(UserId, u32)>> = vec![Vec::new(); n];
    for u in 0..n {
        let mut scored: Vec<(f64, UserId)> = samples[u]
            .iter()
            .map(|(&peer, &(sum, count))| (sum / count as f64, peer))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(cfg.max_peers);
        rank_of[u] = scored
            .iter()
            .enumerate()
            .map(|(i, &(_, v))| (v, i as u32 + 1))
            .collect();
    }
    // Mutual edges with min-rank weights (same rule as `WpgBuilder`).
    let mut edges = Vec::new();
    for u in 0..n as UserId {
        for &(v, rank_v_at_u) in &rank_of[u as usize] {
            if v <= u {
                continue;
            }
            if let Some(&(_, rank_u_at_v)) = rank_of[v as usize].iter().find(|&&(x, _)| x == u) {
                edges.push(Edge::new(u, v, rank_v_at_u.min(rank_u_at_v)));
            }
        }
    }
    Ok((Wpg::from_edges(n, &edges), stats))
}

/// Measures how much of the reference WPG's edge set survives in the
/// discovered one (edge recall, ignoring weights).
pub fn edge_recall(reference: &Wpg, discovered: &Wpg) -> f64 {
    if reference.m() == 0 {
        return 1.0;
    }
    let found: std::collections::HashSet<(UserId, UserId)> =
        discovered.edges().map(|e| (e.u, e.v)).collect();
    let hit = reference
        .edges()
        .filter(|e| found.contains(&(e.u, e.v)))
        .count();
    hit as f64 / reference.m() as f64
}

fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_geo::DatasetSpec;
    use nela_wpg::{InverseDistanceRss, WpgBuilder};

    fn population(n: usize, seed: u64) -> (Vec<Point>, GridIndex) {
        let points = DatasetSpec::small_uniform(n, seed).generate();
        let grid = GridIndex::build(&points, 0.05);
        (points, grid)
    }

    fn cfg() -> DiscoveryConfig {
        DiscoveryConfig {
            delta: 0.05,
            max_peers: 6,
            rounds: 4,
            ..Default::default()
        }
    }

    #[test]
    fn lossless_noiseless_discovery_matches_ideal_wpg() {
        let (points, grid) = population(400, 1);
        let (discovered, stats) = run_discovery(&points, &grid, &cfg()).unwrap();
        let ideal = WpgBuilder::new(0.05, 6, InverseDistanceRss).build_with_index(&points, &grid);
        let a: Vec<_> = discovered.edges().collect();
        let b: Vec<_> = ideal.edges().collect();
        assert_eq!(a, b, "perfect channel must reproduce the ideal WPG");
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.beacons, 400 * 4);
    }

    #[test]
    fn loss_removes_edges_gracefully() {
        let (points, grid) = population(400, 2);
        let ideal = WpgBuilder::new(0.05, 6, InverseDistanceRss).build_with_index(&points, &grid);
        let lossy = DiscoveryConfig {
            beacon_loss: 0.6,
            rounds: 1, // single round: losses directly erase peers
            ..cfg()
        };
        let (discovered, stats) = run_discovery(&points, &grid, &lossy).unwrap();
        assert!(stats.lost > 0);
        let recall = edge_recall(&ideal, &discovered);
        assert!(recall < 1.0, "60% loss with one round must lose edges");
        assert!(recall > 0.05, "but not everything");
    }

    #[test]
    fn more_rounds_recover_lossy_channels() {
        let (points, grid) = population(400, 3);
        let ideal = WpgBuilder::new(0.05, 6, InverseDistanceRss).build_with_index(&points, &grid);
        let one = DiscoveryConfig {
            beacon_loss: 0.5,
            rounds: 1,
            ..cfg()
        };
        let many = DiscoveryConfig {
            beacon_loss: 0.5,
            rounds: 12,
            ..cfg()
        };
        let (d1, _) = run_discovery(&points, &grid, &one).unwrap();
        let (d12, _) = run_discovery(&points, &grid, &many).unwrap();
        assert!(
            edge_recall(&ideal, &d12) > edge_recall(&ideal, &d1),
            "redundant beaconing must improve recall"
        );
        assert!(edge_recall(&ideal, &d12) > 0.95);
    }

    #[test]
    fn noise_perturbs_ranks_but_keeps_the_graph_similar() {
        let (points, grid) = population(400, 4);
        let ideal = WpgBuilder::new(0.05, 6, InverseDistanceRss).build_with_index(&points, &grid);
        let noisy = DiscoveryConfig {
            rss_noise: 0.005, // 10% of the radio range per beacon
            rounds: 6,        // averaging tames it
            ..cfg()
        };
        let (discovered, _) = run_discovery(&points, &grid, &noisy).unwrap();
        let recall = edge_recall(&ideal, &discovered);
        assert!(recall > 0.7, "recall {recall}");
    }

    #[test]
    fn discovery_is_deterministic_per_seed() {
        let (points, grid) = population(200, 5);
        let noisy = DiscoveryConfig {
            beacon_loss: 0.3,
            rss_noise: 0.002,
            ..cfg()
        };
        let (a, sa) = run_discovery(&points, &grid, &noisy).unwrap();
        let (b, sb) = run_discovery(&points, &grid, &noisy).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_eq!(sa, sb);
    }

    #[test]
    fn rejects_malformed_configs_with_typed_errors() {
        let (points, grid) = population(20, 7);
        let bad_loss = DiscoveryConfig {
            beacon_loss: 1.0,
            ..cfg()
        };
        let err = run_discovery(&points, &grid, &bad_loss).unwrap_err();
        assert_eq!(err.field, "beacon_loss");
        assert_eq!(
            err.to_string(),
            "invalid beacon_loss = 1: must be in [0, 1)"
        );

        let err = DiscoveryConfig { rounds: 0, ..cfg() }
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "rounds");

        let err = DiscoveryConfig {
            delta: f64::NAN,
            ..cfg()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "delta");

        let err = DiscoveryConfig {
            max_peers: 0,
            ..cfg()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "max_peers");

        let err = DiscoveryConfig {
            rss_noise: -0.1,
            ..cfg()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "rss_noise");

        let err = DiscoveryConfig {
            period: 0.0,
            ..cfg()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "period");

        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn degree_cap_is_respected() {
        let (points, grid) = population(300, 6);
        let (discovered, _) = run_discovery(&points, &grid, &cfg()).unwrap();
        for u in 0..discovered.n() as UserId {
            assert!(discovered.degree(u) <= 6);
        }
    }
}
