//! Concurrency control for simultaneous cloaking requests (paper §VII).
//!
//! "A single user can only join one cluster but can participate \[in\] the
//! clustering process of multiple host users; our protocols must prevent
//! deadlocks while making the best clustering decision." This module
//! implements the natural optimistic scheme:
//!
//! 1. **Snapshot** — the host reads the current membership table.
//! 2. **Compute** — the clustering algorithm runs against the snapshot,
//!    outside any lock (peers answer proximity queries regardless of other
//!    in-flight requests).
//! 3. **Validate & claim** — under a single short critical section the host
//!    re-checks that every member of every produced cluster is still
//!    unclaimed, and registers them all atomically.
//! 4. **Retry** — on conflict, recompute against the updated table.
//!
//! Deadlock freedom is structural: there is exactly one lock and it is never
//! held across computation or communication. Starvation is bounded by a
//! retry budget; in practice a loser's second attempt sees the winner's
//! users as removed and (thanks to the near-isolation of the t-connectivity
//! algorithm) succeeds with an equally good cluster.

use nela_cluster::distributed::distributed_k_clustering;
use nela_cluster::registry::ClusterRegistry;
use nela_cluster::{Cluster, ClusterError};
use nela_geo::UserId;
use nela_wpg::Wpg;
use parking_lot::Mutex;

/// How one host's request ended.
#[derive(Debug, Clone)]
pub enum RequestResolution {
    /// A fresh cluster was formed and claimed.
    Served { cluster: Cluster, attempts: u32 },
    /// Another request already clustered this host; the shared cluster is
    /// reused at zero cost (workflow ® of paper Fig. 3).
    Reused { cluster: Cluster },
    /// The host cannot be served at all (e.g. its component is below k).
    Unservable { error: ClusterError },
    /// The retry budget was exhausted under contention.
    Contention { attempts: u32 },
}

impl RequestResolution {
    /// The cluster the host ends up in, if served.
    pub fn cluster(&self) -> Option<&Cluster> {
        match self {
            RequestResolution::Served { cluster, .. } | RequestResolution::Reused { cluster } => {
                Some(cluster)
            }
            _ => None,
        }
    }
}

/// A batch of cloaking requests executed concurrently over one shared
/// membership table.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentWorkload {
    /// Anonymity level.
    pub k: usize,
    /// Attempts per host before giving up under contention.
    pub max_attempts: u32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ConcurrentWorkload {
    fn default() -> Self {
        ConcurrentWorkload {
            k: 10,
            max_attempts: 8,
            threads: 4,
        }
    }
}

impl ConcurrentWorkload {
    /// Runs the requests of `hosts` concurrently against `g`. Returns the
    /// final registry and each host's resolution (in `hosts` order).
    pub fn run(&self, g: &Wpg, hosts: &[UserId]) -> (ClusterRegistry, Vec<RequestResolution>) {
        assert!(self.threads >= 1 && self.max_attempts >= 1);
        let registry = Mutex::new(ClusterRegistry::new(g.n()));
        let mut resolutions: Vec<Option<RequestResolution>> = vec![None; hosts.len()];

        std::thread::scope(|scope| {
            let chunk = hosts.len().div_ceil(self.threads);
            if chunk == 0 {
                return;
            }
            let registry = &registry;
            for (hosts_chunk, res_chunk) in hosts.chunks(chunk).zip(resolutions.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (&host, slot) in hosts_chunk.iter().zip(res_chunk.iter_mut()) {
                        *slot = Some(self.serve_one(g, registry, host));
                    }
                });
            }
        });

        (
            registry.into_inner(),
            resolutions
                .into_iter()
                .map(|r| r.expect("all slots filled"))
                .collect(),
        )
    }

    fn serve_one(
        &self,
        g: &Wpg,
        registry: &Mutex<ClusterRegistry>,
        host: UserId,
    ) -> RequestResolution {
        for attempt in 1..=self.max_attempts {
            // Snapshot the membership table.
            let snapshot: Vec<bool> = {
                let reg = registry.lock();
                if let Some(rc) = reg.cluster_of(host) {
                    return RequestResolution::Reused {
                        cluster: rc.cluster.clone(),
                    };
                }
                (0..g.n() as UserId).map(|u| reg.is_clustered(u)).collect()
            };
            // Compute outside the lock.
            let removed = |u: UserId| snapshot[u as usize];
            let outcome = match distributed_k_clustering(g, host, self.k, &removed) {
                Ok(o) => o,
                Err(e @ ClusterError::ComponentTooSmall { .. }) => {
                    return RequestResolution::Unservable { error: e }
                }
                Err(e) => return RequestResolution::Unservable { error: e },
            };
            // Validate and claim atomically.
            let mut reg = registry.lock();
            if let Some(rc) = reg.cluster_of(host) {
                return RequestResolution::Reused {
                    cluster: rc.cluster.clone(),
                };
            }
            let conflict = outcome
                .all_clusters
                .iter()
                .flat_map(|c| &c.members)
                .any(|&m| reg.is_clustered(m));
            if conflict {
                continue; // a rival claimed one of our users: recompute
            }
            for c in &outcome.all_clusters {
                reg.register(c.clone());
            }
            return RequestResolution::Served {
                cluster: outcome.host_cluster,
                attempts: attempt,
            };
        }
        RequestResolution::Contention {
            attempts: self.max_attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_wpg::topology;

    #[test]
    fn all_hosts_served_without_double_membership() {
        let g = topology::small_world(200, 6, 0.2, 10, 11);
        let hosts: Vec<UserId> = (0..60).map(|i| i * 3).collect();
        let wl = ConcurrentWorkload {
            k: 4,
            max_attempts: 10,
            threads: 6,
        };
        let (registry, resolutions) = wl.run(&g, &hosts);
        assert_eq!(registry.reciprocity_violation(), None);
        for (host, res) in hosts.iter().zip(&resolutions) {
            match res {
                RequestResolution::Served { cluster, .. }
                | RequestResolution::Reused { cluster } => {
                    assert!(cluster.contains(*host));
                    assert!(cluster.is_valid(4));
                }
                RequestResolution::Contention { .. } => {
                    panic!("host {host} starved under a generous retry budget")
                }
                RequestResolution::Unservable { .. } => {} // legitimately stuck
            }
        }
    }

    #[test]
    fn same_host_twice_reuses() {
        let g = topology::ring_lattice(50, 4, 5, 2);
        let wl = ConcurrentWorkload {
            k: 5,
            max_attempts: 4,
            threads: 2,
        };
        let (_, res) = wl.run(&g, &[10, 10]);
        let served = res
            .iter()
            .filter(|r| matches!(r, RequestResolution::Served { .. }))
            .count();
        let reused = res
            .iter()
            .filter(|r| matches!(r, RequestResolution::Reused { .. }))
            .count();
        assert_eq!((served, reused), (1, 1));
    }

    #[test]
    fn deterministic_single_thread_matches_sequential() {
        let g = topology::small_world(100, 4, 0.3, 8, 5);
        let hosts: Vec<UserId> = vec![1, 20, 40, 60, 80];
        let wl = ConcurrentWorkload {
            k: 4,
            max_attempts: 4,
            threads: 1,
        };
        let (registry, _) = wl.run(&g, &hosts);
        // Sequential reference.
        let mut reference = ClusterRegistry::new(g.n());
        for &h in &hosts {
            if reference.is_clustered(h) {
                continue;
            }
            let removed = |u: UserId| reference.is_clustered(u);
            if let Ok(o) = distributed_k_clustering(&g, h, 4, &removed) {
                for c in &o.all_clusters {
                    reference.register(c.clone());
                }
            }
        }
        assert_eq!(registry.clustered_users(), reference.clustered_users());
        for &h in &hosts {
            assert_eq!(
                registry.cluster_of(h).map(|c| &c.cluster.members),
                reference.cluster_of(h).map(|c| &c.cluster.members)
            );
        }
    }

    #[test]
    fn heavy_contention_on_one_neighborhood_terminates() {
        // Many hosts in the same dense neighborhood all racing: no deadlock,
        // everyone either serves, reuses, or reports contention.
        let g = topology::ring_lattice(120, 8, 4, 9);
        let hosts: Vec<UserId> = (0..40).collect();
        let wl = ConcurrentWorkload {
            k: 6,
            max_attempts: 12,
            threads: 8,
        };
        let (registry, res) = wl.run(&g, &hosts);
        assert_eq!(res.len(), 40);
        assert_eq!(registry.reciprocity_violation(), None);
        let starved = res
            .iter()
            .filter(|r| matches!(r, RequestResolution::Contention { .. }))
            .count();
        assert!(starved <= 2, "{starved} hosts starved");
    }
}
