//! Adapters running the real NELA protocols over the simulated network.
//!
//! `nela-cluster` and `nela-bounding` implement their algorithms against
//! transport traits ([`nela_cluster::fetch::PeerFetch`],
//! [`nela_bounding::protocol::VerifyTransport`]). The adapters here bind
//! those traits to [`Network`], so the *identical algorithm code* that the
//! analytic experiments use also runs under loss, latency and crashes — the
//! robustness scenarios of the paper's §VII.

use crate::network::{Network, RpcError};
use nela_bounding::bbox::BboxOutcome;
use nela_bounding::protocol::{
    progressive_upper_bound_with, BoundingError, IncrementPolicy, VerifyTransport,
};
use nela_cluster::fetch::PeerFetch;
use nela_geo::{Point, Rect, UserId};
use nela_wpg::{Weight, Wpg};

/// Adjacency fetch over the simulated network: each fetch is one RPC from
/// the host to the peer; the reply carries the peer's adjacency list read
/// from the ground-truth WPG.
pub struct SimFetch<'a> {
    net: &'a mut Network,
    g: &'a Wpg,
    host: UserId,
}

impl<'a> SimFetch<'a> {
    /// Binds a host's fetches to a network and the ground-truth graph.
    pub fn new(net: &'a mut Network, g: &'a Wpg, host: UserId) -> Self {
        SimFetch { net, g, host }
    }
}

impl PeerFetch for SimFetch<'_> {
    fn fetch(&mut self, u: UserId) -> Option<Vec<(UserId, Weight)>> {
        if u == self.host {
            // The host's own adjacency is local knowledge.
            return Some(self.g.neighbors(u).collect());
        }
        match self.net.rpc(self.host, u) {
            Ok(()) => Some(self.g.neighbors(u).collect()),
            Err(RpcError::PeerDown(_) | RpcError::RetriesExhausted(_)) => None,
        }
    }
}

/// Bound-verification transport over the simulated network: each
/// verification is one RPC from the host to the participant, whose reply
/// compares its private value against the proposed bound.
pub struct SimVerify<'a> {
    net: &'a mut Network,
    host: UserId,
    /// `(user id, private value)` per participant index.
    participants: &'a [(UserId, f64)],
}

impl<'a> SimVerify<'a> {
    /// Binds a bounding run's participants to a network.
    pub fn new(net: &'a mut Network, host: UserId, participants: &'a [(UserId, f64)]) -> Self {
        SimVerify {
            net,
            host,
            participants,
        }
    }
}

impl VerifyTransport for SimVerify<'_> {
    fn len(&self) -> usize {
        self.participants.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        let (peer, value) = self.participants[index];
        if peer == self.host {
            return Some(value <= bound);
        }
        match self.net.rpc(self.host, peer) {
            Ok(()) => Some(value <= bound),
            Err(_) => None,
        }
    }
}

/// The netsim twin of `nela_bounding::bbox::secure_bounding_box`: four
/// directional progressive bounding runs (`x`-high, `x`-low over negated
/// coordinates, `y`-high, `y`-low) where every per-round verification is one
/// [`Network::rpc`] from the host to the participant ([`SimVerify`]; the
/// host answers its own questions for free). The assembly — anchors at the
/// host's coordinates, domain clipping, message/round totals — matches the
/// in-memory function exactly, so over a lossless network the two produce
/// bit-identical regions while a lossy one adds retransmissions, timeouts
/// and, past the retry budget, [`BoundingError::Unreachable`] failures.
///
/// # Errors
/// [`BoundingError::EmptyCluster`] on an empty member list, plus any failure
/// of the four directional runs (including unreachable participants).
pub fn sim_bounding_box(
    net: &mut Network,
    host: UserId,
    host_point: Point,
    members: &[(UserId, Point)],
    domain: Rect,
    mut policy_factory: impl FnMut() -> Box<dyn IncrementPolicy>,
) -> Result<BboxOutcome, BoundingError> {
    if members.is_empty() {
        return Err(BoundingError::EmptyCluster);
    }
    let run = |values: Vec<(UserId, f64)>,
               x0: f64,
               domain_min: f64,
               net: &mut Network,
               policy: &mut dyn IncrementPolicy| {
        let mut transport = SimVerify::new(net, host, &values);
        progressive_upper_bound_with(&mut transport, x0, domain_min, policy)
    };
    let vals = |f: fn(&Point) -> f64| -> Vec<(UserId, f64)> {
        members.iter().map(|&(u, p)| (u, f(&p))).collect()
    };
    let x_hi = run(
        vals(|p| p.x),
        host_point.x,
        domain.min_x,
        net,
        &mut *policy_factory(),
    )?;
    let x_lo = run(
        vals(|p| -p.x),
        -host_point.x,
        -domain.max_x,
        net,
        &mut *policy_factory(),
    )?;
    let y_hi = run(
        vals(|p| p.y),
        host_point.y,
        domain.min_y,
        net,
        &mut *policy_factory(),
    )?;
    let y_lo = run(
        vals(|p| -p.y),
        -host_point.y,
        -domain.max_y,
        net,
        &mut *policy_factory(),
    )?;
    let rect = Rect::new(
        (-x_lo.bound).clamp(domain.min_x, domain.max_x),
        (-y_lo.bound).clamp(domain.min_y, domain.max_y),
        x_hi.bound.clamp(domain.min_x, domain.max_x),
        y_hi.bound.clamp(domain.min_y, domain.max_y),
    );
    let messages = x_hi.messages + x_lo.messages + y_hi.messages + y_lo.messages;
    let rounds = x_hi.rounds + x_lo.rounds + y_hi.rounds + y_lo.rounds;
    Ok(BboxOutcome {
        rect,
        messages,
        rounds,
        runs: [x_hi, x_lo, y_hi, y_lo],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use nela_bounding::baselines::LinearPolicy;
    use nela_bounding::protocol::progressive_upper_bound_with;
    use nela_cluster::distributed::distributed_k_clustering_with;
    use nela_cluster::ClusterError;
    use nela_wpg::topology;

    fn no_removed(_: UserId) -> bool {
        false
    }

    #[test]
    fn clustering_over_reliable_network_matches_analytic_run() {
        let g = topology::small_world(60, 4, 0.2, 8, 21);
        let analytic = nela_cluster::distributed_k_clustering(&g, 7, 5, &no_removed).unwrap();
        let mut net = Network::reliable();
        let mut fetch = SimFetch::new(&mut net, &g, 7);
        let simulated = distributed_k_clustering_with(&mut fetch, 7, 5, &no_removed).unwrap();
        assert_eq!(analytic.host_cluster, simulated.host_cluster);
        assert_eq!(analytic.super_cluster, simulated.super_cluster);
        assert_eq!(analytic.involved_users, simulated.involved_users);
        // One successful RPC per involved peer.
        assert_eq!(net.stats().rpcs_ok as usize, simulated.involved_users);
    }

    #[test]
    fn clustering_survives_moderate_loss() {
        let g = topology::small_world(60, 4, 0.2, 8, 21);
        let mut net = Network::new(NetworkConfig {
            loss: 0.15,
            max_retries: 6,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let mut fetch = SimFetch::new(&mut net, &g, 7);
        let simulated = distributed_k_clustering_with(&mut fetch, 7, 5, &no_removed).unwrap();
        assert!(simulated.host_cluster.is_valid(5));
        assert!(
            net.stats().transmissions > 2 * net.stats().rpcs_ok,
            "loss should force retransmissions"
        );
    }

    #[test]
    fn clustering_aborts_when_required_peer_is_down() {
        // Path graph: the host's only route to k users runs through peer 1.
        let g = Wpg::from_edges(
            5,
            &[
                nela_wpg::Edge::new(0, 1, 1),
                nela_wpg::Edge::new(1, 2, 1),
                nela_wpg::Edge::new(2, 3, 1),
                nela_wpg::Edge::new(3, 4, 1),
            ],
        );
        let mut net = Network::reliable();
        net.crash_peer(1);
        let mut fetch = SimFetch::new(&mut net, &g, 0);
        let err = distributed_k_clustering_with(&mut fetch, 0, 3, &no_removed).unwrap_err();
        assert_eq!(err, ClusterError::PeerUnreachable { peer: 1 });
    }

    #[test]
    fn bounding_over_network_counts_rpcs() {
        let participants: Vec<(UserId, f64)> = vec![(10, 0.05), (11, 0.15), (12, 0.25)];
        let mut net = Network::reliable();
        let mut transport = SimVerify::new(&mut net, 99, &participants);
        let run =
            progressive_upper_bound_with(&mut transport, 0.0, 0.0, &mut LinearPolicy::new(0.1))
                .unwrap();
        assert_eq!(run.rounds, 3);
        assert_eq!(run.messages, 6);
        assert_eq!(net.stats().rpcs_ok, 6);
    }

    #[test]
    fn bounding_host_participates_for_free() {
        let participants: Vec<(UserId, f64)> = vec![(99, 0.05), (11, 0.15)];
        let mut net = Network::reliable();
        let mut transport = SimVerify::new(&mut net, 99, &participants);
        let run =
            progressive_upper_bound_with(&mut transport, 0.0, 0.0, &mut LinearPolicy::new(0.2))
                .unwrap();
        assert_eq!(run.records.len(), 2);
        // Only user 11 needed the radio.
        assert_eq!(net.stats().rpcs_ok, 1);
    }

    #[test]
    fn sim_bounding_box_matches_in_memory_assembly_over_reliable_network() {
        let members: Vec<(UserId, Point)> = vec![
            (3, Point::new(0.30, 0.40)),
            (7, Point::new(0.35, 0.42)),
            (9, Point::new(0.28, 0.47)),
            (12, Point::new(0.33, 0.38)),
        ];
        let points: Vec<Point> = members.iter().map(|&(_, p)| p).collect();
        let host_point = points[0];
        let analytic =
            nela_bounding::bbox::secure_bounding_box(&points, host_point, Rect::UNIT, || {
                Box::new(LinearPolicy::new(0.01))
            })
            .unwrap();
        let mut net = Network::reliable();
        let simulated = sim_bounding_box(&mut net, 3, host_point, &members, Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.01))
        })
        .unwrap();
        assert_eq!(analytic.rect, simulated.rect);
        assert_eq!(analytic.messages, simulated.messages);
        assert_eq!(analytic.rounds, simulated.rounds);
        // The host (id 3) answered its own questions locally: one RPC per
        // message to each of the three remote peers only.
        assert!(net.stats().rpcs_ok < simulated.messages);
        assert!(net.stats().rpcs_ok > 0);
    }

    #[test]
    fn sim_bounding_box_fails_typed_when_a_participant_crashes() {
        let members: Vec<(UserId, Point)> =
            vec![(3, Point::new(0.30, 0.40)), (7, Point::new(0.95, 0.42))];
        let mut net = Network::reliable();
        net.crash_peer(7);
        let err = sim_bounding_box(&mut net, 3, members[0].1, &members, Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.05))
        })
        .unwrap_err();
        assert!(matches!(err, BoundingError::Unreachable { .. }));
        assert!(net.stats().rpcs_failed > 0);
    }

    #[test]
    fn sim_bounding_box_rejects_empty_cluster() {
        let mut net = Network::reliable();
        let err = sim_bounding_box(&mut net, 3, Point::new(0.5, 0.5), &[], Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.05))
        })
        .unwrap_err();
        assert_eq!(err, BoundingError::EmptyCluster);
    }

    #[test]
    fn bounding_reports_unreachable_participant() {
        let participants: Vec<(UserId, f64)> = vec![(10, 0.05), (11, 0.95)];
        let mut net = Network::reliable();
        net.crash_peer(11);
        let mut transport = SimVerify::new(&mut net, 99, &participants);
        let err =
            progressive_upper_bound_with(&mut transport, 0.0, 0.0, &mut LinearPolicy::new(0.1))
                .unwrap_err();
        assert_eq!(
            err,
            nela_bounding::protocol::BoundingError::Unreachable { index: 1 }
        );
    }
}
