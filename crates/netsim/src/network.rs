//! Virtual-time point-to-point network with loss, latency and crashes.
//!
//! Protocol interactions in NELA are strictly request/reply (a host asks a
//! peer for its adjacency list, or asks "is your ξ ≤ X?"). The network
//! therefore exposes a blocking [`Network::rpc`] that advances a virtual
//! clock by the sampled latencies, loses each transmission independently
//! with probability `loss`, retransmits up to `max_retries` times, and fails
//! permanently against crashed peers. Every transmission — including lost
//! ones and unanswered requests to dead peers — is counted in
//! [`NetworkStats`]: radios spend energy regardless of delivery.

use nela_geo::UserId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One-way latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed base latency (virtual seconds).
    pub base: f64,
    /// Uniform jitter added on top: `U(0, jitter)`.
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 10 ms base, up to 5 ms jitter — typical short-range radio.
        LatencyModel {
            base: 0.010,
            jitter: 0.005,
        }
    }
}

/// A rejected configuration value: which field, what it held, and what it
/// must satisfy. Returned by the `validate()` entry points instead of
/// panicking mid-run, so callers can surface bad configs as ordinary errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The offending field, e.g. `"loss"` or `"beacon_loss"`.
    pub field: &'static str,
    /// The rejected value (integer fields are widened to f64).
    pub value: f64,
    /// What the field must satisfy, e.g. `"in [0, 1)"`.
    pub requirement: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} = {}: must be {}",
            self.field, self.value, self.requirement
        )
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    pub(crate) fn new(field: &'static str, value: f64, requirement: &'static str) -> Self {
        ConfigError {
            field,
            value,
            requirement,
        }
    }
}

/// Network configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Probability each individual transmission is lost.
    pub loss: f64,
    /// Retransmissions after the first attempt before giving up.
    pub max_retries: u32,
    /// Timeout charged to the clock per lost round-trip.
    pub timeout: f64,
    /// Latency model.
    pub latency: LatencyModel,
    /// RNG seed (loss and jitter are reproducible).
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loss: 0.0,
            max_retries: 3,
            timeout: 0.1,
            latency: LatencyModel::default(),
            seed: 0,
        }
    }
}

impl NetworkConfig {
    /// Checks every field against its domain. [`Network::new`] calls this,
    /// so a malformed config is rejected at construction with a typed error
    /// instead of silently mis-simulating (`loss = 1.5` used to drop every
    /// packet; a negative `timeout` ran the clock backwards).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..1.0).contains(&self.loss) {
            return Err(ConfigError::new("loss", self.loss, "in [0, 1)"));
        }
        if !self.timeout.is_finite() || self.timeout < 0.0 {
            return Err(ConfigError::new("timeout", self.timeout, "finite and >= 0"));
        }
        if !self.latency.base.is_finite() || self.latency.base < 0.0 {
            return Err(ConfigError::new(
                "latency.base",
                self.latency.base,
                "finite and >= 0",
            ));
        }
        if !self.latency.jitter.is_finite() || self.latency.jitter < 0.0 {
            return Err(ConfigError::new(
                "latency.jitter",
                self.latency.jitter,
                "finite and >= 0",
            ));
        }
        Ok(())
    }
}

/// Message and timing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Transmissions put on the air (requests + replies, incl. lost ones).
    pub transmissions: u64,
    /// Completed request/reply exchanges.
    pub rpcs_ok: u64,
    /// RPCs abandoned after all retries.
    pub rpcs_failed: u64,
    /// Transmissions that were lost.
    pub lost: u64,
    /// RPC attempts beyond the first (mirrors `net.rpc.retransmits`, but
    /// scoped to this network instance — per-request aggregation needs the
    /// local view, not the process-global obs counter).
    pub retransmits: u64,
    /// Timeouts charged for lost transmissions (request or reply leg).
    pub timeouts: u64,
}

/// Why an RPC failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The destination peer has crashed.
    PeerDown(UserId),
    /// Every attempt (original + retries) lost a message.
    RetriesExhausted(UserId),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::PeerDown(p) => write!(f, "peer {p} is down"),
            RpcError::RetriesExhausted(p) => write!(f, "retries exhausted contacting peer {p}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// The simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    rng: ChaCha8Rng,
    clock: f64,
    down: std::collections::HashSet<UserId>,
    stats: NetworkStats,
}

impl Network {
    /// Creates a network with the given configuration.
    ///
    /// # Errors
    /// [`ConfigError`] when any field is outside its domain (see
    /// [`NetworkConfig::validate`]).
    pub fn new(cfg: NetworkConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Network {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            clock: 0.0,
            down: std::collections::HashSet::new(),
            stats: NetworkStats::default(),
        })
    }

    /// A lossless, crash-free network (analysis parity).
    pub fn reliable() -> Self {
        Network::new(NetworkConfig::default()).expect("default config is valid")
    }

    /// A fresh network sharing this one's (already validated) configuration
    /// and crash set, but reseeded and with clock and counters zeroed.
    /// Serving sessions derive one network per request this way — the seed
    /// mixes in the request identity, so loss and latency outcomes depend
    /// only on the request, never on worker interleaving.
    pub fn with_seed(&self, seed: u64) -> Network {
        let mut cfg = self.cfg;
        cfg.seed = seed;
        Network {
            rng: ChaCha8Rng::seed_from_u64(seed),
            cfg,
            clock: 0.0,
            down: self.down.clone(),
            stats: NetworkStats::default(),
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Marks a peer as crashed; subsequent RPCs to it fail after the full
    /// retry budget (the caller cannot distinguish a crash from loss).
    pub fn crash_peer(&mut self, peer: UserId) {
        self.down.insert(peer);
    }

    /// Revives a crashed peer.
    pub fn revive_peer(&mut self, peer: UserId) {
        self.down.remove(&peer);
    }

    /// True when `peer` is marked down.
    pub fn is_down(&self, peer: UserId) -> bool {
        self.down.contains(&peer)
    }

    fn one_way_latency(&mut self) -> f64 {
        self.cfg.latency.base + self.rng.gen::<f64>() * self.cfg.latency.jitter
    }

    /// Executes a blocking request/reply exchange from `from` to `to`.
    /// On success the clock has advanced by the attempt latencies; on
    /// failure by the full retry budget's timeouts.
    pub fn rpc(&mut self, _from: UserId, to: UserId) -> Result<(), RpcError> {
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.stats.retransmits += 1;
                nela_obs::add(nela_obs::counter::RPC_RETRANSMITS, 1);
            }
            // Request leg.
            self.stats.transmissions += 1;
            let request_lost = self.rng.gen::<f64>() < self.cfg.loss || self.down.contains(&to);
            if request_lost {
                self.stats.lost += 1;
                self.stats.timeouts += 1;
                self.clock += self.cfg.timeout;
                nela_obs::add(nela_obs::counter::RPC_TIMEOUTS, 1);
                continue;
            }
            self.clock += self.one_way_latency();
            // Reply leg.
            self.stats.transmissions += 1;
            let reply_lost = self.rng.gen::<f64>() < self.cfg.loss;
            if reply_lost {
                self.stats.lost += 1;
                self.stats.timeouts += 1;
                self.clock += self.cfg.timeout;
                nela_obs::add(nela_obs::counter::RPC_TIMEOUTS, 1);
                continue;
            }
            self.clock += self.one_way_latency();
            self.stats.rpcs_ok += 1;
            nela_obs::add(nela_obs::counter::RPC_OK, 1);
            return Ok(());
        }
        self.stats.rpcs_failed += 1;
        nela_obs::add(nela_obs::counter::RPC_FAILED, 1);
        if self.down.contains(&to) {
            Err(RpcError::PeerDown(to))
        } else {
            Err(RpcError::RetriesExhausted(to))
        }
    }

    /// One-way broadcast-style upload (used by the centralized anonymizer
    /// model: every user pushes its proximity list once). Counts one
    /// transmission per user; lossless uplink assumed (the paper treats the
    /// anonymizer path as infrastructure, not radio).
    pub fn bulk_upload(&mut self, users: usize) {
        self.stats.transmissions += users as u64;
        self.clock += self.one_way_latency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_rpc_always_succeeds_and_advances_clock() {
        let mut net = Network::reliable();
        for _ in 0..10 {
            net.rpc(0, 1).unwrap();
        }
        assert_eq!(net.stats().rpcs_ok, 10);
        assert_eq!(net.stats().transmissions, 20);
        assert_eq!(net.stats().lost, 0);
        assert!(net.now() >= 10.0 * 2.0 * 0.010);
    }

    #[test]
    fn crashed_peer_fails_after_retries() {
        let mut net = Network::reliable();
        net.crash_peer(7);
        let err = net.rpc(0, 7).unwrap_err();
        assert_eq!(err, RpcError::PeerDown(7));
        // 1 original + 3 retries, each one request transmission.
        assert_eq!(net.stats().transmissions, 4);
        assert_eq!(net.stats().rpcs_failed, 1);
    }

    #[test]
    fn revive_restores_connectivity() {
        let mut net = Network::reliable();
        net.crash_peer(3);
        assert!(net.rpc(0, 3).is_err());
        net.revive_peer(3);
        assert!(net.rpc(0, 3).is_ok());
    }

    #[test]
    fn lossy_network_still_mostly_delivers_with_retries() {
        let mut net = Network::new(NetworkConfig {
            loss: 0.2,
            max_retries: 5,
            seed: 42,
            ..Default::default()
        })
        .unwrap();
        let mut ok = 0;
        for i in 0..200 {
            if net.rpc(0, (i % 10) + 1).is_ok() {
                ok += 1;
            }
        }
        // P(all 6 attempts fail) = (1−0.8²)^6 ≈ 2e-3 per RPC.
        assert!(ok >= 197, "only {ok}/200 RPCs succeeded");
        assert!(net.stats().lost > 0, "loss never triggered at 20%");
    }

    #[test]
    fn loss_accounting_is_consistent() {
        let mut net = Network::new(NetworkConfig {
            loss: 0.5,
            max_retries: 2,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..50 {
            let _ = net.rpc(0, 1);
        }
        let s = net.stats();
        assert_eq!(s.rpcs_ok + s.rpcs_failed, 50);
        assert!(s.lost > 0 && s.lost < s.transmissions);
        // Every loss is charged exactly one timeout, and every loss except a
        // failed RPC's final one triggers a retransmission.
        assert_eq!(s.timeouts, s.lost);
        assert_eq!(s.retransmits, s.lost - s.rpcs_failed);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = Network::new(NetworkConfig {
                loss: 0.3,
                seed,
                ..Default::default()
            })
            .unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(net.rpc(0, 1).is_ok());
            }
            (outcomes, net.now())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn bulk_upload_counts_each_user() {
        let mut net = Network::reliable();
        net.bulk_upload(104_770);
        assert_eq!(net.stats().transmissions, 104_770);
    }

    #[test]
    fn rejects_malformed_configs_with_typed_errors() {
        let err = Network::new(NetworkConfig {
            loss: 1.0,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "loss");
        assert_eq!(err.to_string(), "invalid loss = 1: must be in [0, 1)");

        let err = Network::new(NetworkConfig {
            loss: -0.1,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "loss");

        let err = Network::new(NetworkConfig {
            timeout: -1.0,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "timeout");

        let err = Network::new(NetworkConfig {
            timeout: f64::NAN,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "timeout");

        let err = Network::new(NetworkConfig {
            latency: LatencyModel {
                base: f64::INFINITY,
                jitter: 0.0,
            },
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "latency.base");

        let err = Network::new(NetworkConfig {
            latency: LatencyModel {
                base: 0.01,
                jitter: -0.5,
            },
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.field, "latency.jitter");

        // The boundary values are accepted.
        assert!(NetworkConfig {
            loss: 0.0,
            timeout: 0.0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }
}
