//! Simulated peer-to-peer radio network for the NELA protocols.
//!
//! The paper's evaluation counts messages analytically; its future-work
//! section (§VII) calls for handling "undesired scenarios": communication
//! failures during clustering or bounding, and concurrency control when
//! several users request cloaking at the same time. This crate supplies the
//! substrate for both:
//!
//! - [`event`] — a deterministic discrete-event simulation core,
//! - [`discovery`] — the beaconing phase that produces the proximity graph
//!   in the first place: jittered broadcast rounds, per-beacon loss and RSS
//!   measurement noise, rank assembly, and recall metrics against the ideal
//!   WPG,
//! - [`network`] — a virtual-time point-to-point network with a latency
//!   model, i.i.d. message loss, bounded retransmission, per-message
//!   accounting and peer crash injection,
//! - [`proto`] — adapters that run the *actual* protocol implementations
//!   (`nela-cluster`'s Algorithm 2 / kNN, `nela-bounding`'s progressive
//!   bounding) over the simulated network instead of an in-memory graph,
//! - [`concurrency`] — optimistic concurrency control for simultaneous host
//!   requests: snapshot, compute, validate-and-claim, retry on conflict —
//!   deadlock-free because claims are atomic and ordered.

pub mod concurrency;
pub mod discovery;
pub mod event;
pub mod network;
pub mod proto;

pub use concurrency::{ConcurrentWorkload, RequestResolution};
pub use discovery::{edge_recall, run_discovery, DiscoveryConfig, DiscoveryStats};
pub use event::EventQueue;
pub use network::{ConfigError, LatencyModel, Network, NetworkConfig, NetworkStats, RpcError};
pub use proto::{sim_bounding_box, SimFetch, SimVerify};
