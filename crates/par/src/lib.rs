//! Scoped-thread parallel-chunks utilities for the NELA hot paths.
//!
//! The workspace builds offline from vendored stubs, so no rayon: this crate
//! hand-rolls the small slice-parallelism surface the pipeline needs on top
//! of `std::thread::scope`. Every helper is **deterministic by
//! construction** — work is split into contiguous index ranges, each range
//! is processed independently, and results are reassembled in range order —
//! so a parallel run is bit-identical to the serial one regardless of
//! scheduling. `threads == 1` never spawns and runs the exact serial loop,
//! which is the fallback the CLI exposes.
//!
//! The one piece of `unsafe` lives in [`ScatterWriter`]: a shared write-only
//! view of a slice for counting-sort-style scatter phases where each index
//! is provably written by exactly one thread (the grid index bucket fill).

use std::marker::PhantomData;
use std::ops::Range;

/// Clamps a requested thread count to at least one worker over `n` items
/// (no point spawning more threads than items).
#[inline]
pub fn effective_threads(requested: usize, n: usize) -> usize {
    requested.max(1).min(n.max(1))
}

/// Splits `0..n` into at most `threads` contiguous, near-equal ranges
/// covering every index exactly once, in ascending order. Returns fewer
/// ranges when `n < threads`; returns no ranges when `n == 0`.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = effective_threads(threads, n);
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads);
    (0..n)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(n))
        .collect()
}

/// Runs `f` over each chunk of `0..n` on its own scoped thread and returns
/// the per-chunk results in chunk (ascending index) order. With
/// `threads <= 1` the chunks run serially on the caller's thread.
pub fn map_chunks<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            let f = &f;
            scope.spawn(move || *slot = Some(f(range)));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("chunk thread completed"))
        .collect()
}

/// Element-wise parallel map over `0..n`, preserving index order. The
/// output equals `(0..n).map(f).collect()` for any thread count.
pub fn map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = map_chunks(threads, n, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Splits `data` into contiguous chunks and mutates each on its own scoped
/// thread. `f` receives the chunk's starting index and the chunk slice.
pub fn for_each_chunk_mut<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let f = &f;
            let lo = start;
            scope.spawn(move || f(lo, chunk));
            start += range.len();
        }
    });
}

/// A shared write-only view of a slice for scatter phases where the caller
/// guarantees every index is written by at most one thread (e.g. a
/// counting-sort fill whose per-thread cursor ranges are disjoint).
pub struct ScatterWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: concurrent `write` calls touch disjoint indices (the caller's
// contract, see `write`), so sharing the raw pointer across threads is safe
// for `T: Send`.
unsafe impl<T: Send> Sync for ScatterWriter<'_, T> {}

impl<'a, T> ScatterWriter<'a, T> {
    /// Wraps an exclusive slice borrow for disjoint scatter writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        ScatterWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// Each index must be written by at most one thread over the writer's
    /// lifetime, and `index` must be in bounds (checked in debug builds).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len, "scatter write out of bounds");
        // SAFETY: in-bounds per the caller contract; no concurrent access to
        // this index per the caller contract.
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, threads);
                let mut covered = Vec::new();
                for r in &ranges {
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} t={threads}");
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn map_indexed_matches_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [1usize, 2, 4, 8] {
            let par = map_indexed(threads, 1000, |i| (i as u64).wrapping_mul(31));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let chunks = map_chunks(4, 10, |r| (r.start, r.end));
        let flat: Vec<usize> = chunks.iter().flat_map(|&(a, b)| [a, b]).collect();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]), "{chunks:?}");
    }

    #[test]
    fn for_each_chunk_mut_touches_every_element_once() {
        let mut data = vec![0u32; 97];
        for_each_chunk_mut(5, &mut data, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn scatter_writer_fills_disjoint_indices() {
        let n = 64usize;
        let mut out = vec![0usize; n];
        let writer = ScatterWriter::new(&mut out);
        std::thread::scope(|scope| {
            let writer = &writer;
            for t in 0..4usize {
                scope.spawn(move || {
                    for i in (t..n).step_by(4) {
                        // SAFETY: each index is owned by exactly one thread
                        // (stride-4 partition) and is in bounds.
                        unsafe { writer.write(i, i * 2) };
                    }
                });
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn zero_items_spawn_nothing() {
        let out: Vec<u8> = map_indexed(8, 0, |_| 0);
        assert!(out.is_empty());
        let mut empty: [u8; 0] = [];
        for_each_chunk_mut(8, &mut empty, |_, _| panic!("no chunks expected"));
    }
}
