//! Secure bounding — phase 2 of non-exposure location cloaking (paper §V).
//!
//! After phase 1 identifies a k-anonymity cluster, the cloaked region — a
//! bounding box of the members' coordinates — must be computed **without any
//! member revealing a coordinate**. Full secure multi-party computation is
//! rejected by the paper as impractical on mobile devices, so a progressive
//! "hypothesis–verification" protocol is used instead: the host proposes a
//! bound, every disagreeing member says only "not yet", and the bound grows
//! by an increment optimized against a communication-cost model until
//! everyone agrees.
//!
//! Modules:
//!
//! - [`distribution`] — models of the "excess" random variable ξ − X₀
//!   (uniform and exponential, Examples 5.1–5.4),
//! - [`cost`] — the communication-cost model: per-round verification cost
//!   `Cb` and service-request cost `R(x)` (area- or length-proportional),
//! - [`unary`] — the single-user optimal bound (Equation 2): closed forms
//!   plus Newton's method for the exponential transcendental case,
//! - [`nbound`] — N-user optimal increments: the paper's approximation
//!   (Equation 5) and the exact bottom-up dynamic program over Equation 3
//!   used to validate it,
//! - [`protocol`] — the progressive bounding engine (Algorithms 3–4) with
//!   message accounting and per-user agreement transcripts,
//! - [`baselines`] — the linear, exponential, and (non-private) optimal
//!   bounding competitors of §VI-D,
//! - [`bbox`] — the 2-D cloaked rectangle assembled from four directional
//!   1-D bounds,
//! - [`privacy`] — the privacy-loss accounting sketched in the paper's
//!   future work: the interval of ξ each user's transcript exposes, and
//!   what a coalition of colluding peers can pool out of it,
//! - [`adversary`] — crashing and lying verification transports for the
//!   scenario matrix's stronger-than-semi-honest adversaries.

pub mod adversary;
pub mod baselines;
pub mod bbox;
pub mod cost;
pub mod distribution;
pub mod nbound;
pub mod privacy;
pub mod protocol;
pub mod unary;

pub use adversary::{CrashingValues, LieMode, LyingValues};
pub use baselines::{optimal_bound, ExponentialPolicy, LinearPolicy};
pub use bbox::{secure_bounding_box, BboxOutcome};
pub use cost::{AreaCost, CostParams, LengthCost, RequestCost};
pub use distribution::{ExcessDistribution, Exponential, Uniform};
pub use nbound::{exact_dp_increment, n_bounding_increment, SecurePolicy};
pub use privacy::{
    collusion_exposed_interval, collusion_leak_report, leak_report, CollusionLeakReport, LeakReport,
};
pub use protocol::{
    progressive_upper_bound, progressive_upper_bound_resilient, progressive_upper_bound_with,
    BoundingError, BoundingRun, IncrementPolicy, LocalValues, ResilientOutcome, VerifyTransport,
};
pub use unary::{unary_optimal, UnaryOptimum};
