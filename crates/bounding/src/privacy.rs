//! Privacy-loss accounting for progressive bounding.
//!
//! The paper's concluding discussion (§VII) observes that a user who rejects
//! bound `X` and accepts `X'` has exposed `ξ ∈ (X, X']`: the finer the
//! increments, the narrower the exposed interval — a quantifiable privacy
//! loss. This module turns a bounding transcript into that metric, enabling
//! the cost-vs-privacy comparison the paper leaves as future work: linear
//! bounding (small steps) leaks the most per user, exponential the least,
//! secure bounding sits between.

use crate::protocol::BoundingRun;

/// Per-run privacy-loss summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakReport {
    /// Number of users in the transcript.
    pub users: usize,
    /// Narrowest exposed interval across users (worst privacy).
    pub min_width: f64,
    /// Mean exposed interval width.
    pub mean_width: f64,
    /// Users whose interval is narrower than `threshold` passed to
    /// [`leak_report`] — "effectively exposed" users.
    pub exposed_below_threshold: usize,
}

/// Summarizes the privacy loss of a bounding run. Interval widths of
/// round-1 agreers may be infinite when the domain minimum is unbounded;
/// they are excluded from `mean_width` and can never be "exposed".
pub fn leak_report(run: &BoundingRun, threshold: f64) -> LeakReport {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let mut min_width = f64::INFINITY;
    let mut sum = 0.0;
    let mut finite = 0usize;
    let mut exposed = 0usize;
    for r in &run.records {
        let width = r.upper - r.lower;
        if width.is_finite() {
            min_width = min_width.min(width);
            sum += width;
            finite += 1;
            if width < threshold {
                exposed += 1;
            }
        }
    }
    LeakReport {
        users: run.records.len(),
        min_width,
        mean_width: if finite > 0 {
            sum / finite as f64
        } else {
            f64::INFINITY
        },
        exposed_below_threshold: exposed,
    }
}

/// Privacy loss of a bounding run as seen by a **coalition** of colluding
/// peers pooling what each overheard while participating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollusionLeakReport {
    /// Coalition size (colluder indices actually present in the run).
    pub coalition_size: usize,
    /// Non-colluding users the coalition holds an interval for.
    pub victims: usize,
    /// Rounds of the run the coalition observed: the latest round any
    /// colluder was still participating (and thus receiving hypothesis
    /// broadcasts and overhearing answers).
    pub pooled_rounds: usize,
    /// Narrowest finite interval the coalition pins a victim into (worst
    /// privacy). `INFINITY` when no victim interval is finite.
    pub worst_width: f64,
    /// Mean finite victim-interval width; `INFINITY` when none is finite.
    pub mean_width: f64,
    /// Victims whose coalition interval is narrower than the threshold.
    pub exposed_below_threshold: usize,
}

/// Computes what a coalition of colluding peers learns about every other
/// participant of `run` by pooling their transcripts.
///
/// The model: a colluder that agreed at round `a` participated in rounds
/// `1..=a`, so it observed the hypothesis bounds `X₁..X_a` and every
/// yes/no answered in those rounds (single broadcast domain, as in the
/// paper's P2P setting). The coalition's knowledge horizon is therefore
/// `r_pool = max aᵢ` over colluders. A victim that agreed at round
/// `a_v ≤ r_pool` is pinned into its exact transcript interval
/// `(X_{a_v − 1}, X_{a_v}]`; one still disagreeing when the last colluder
/// left is only known to lie in `(X_{r_pool}, B]` where `B` is the final
/// bound. Growing the coalition can only raise `r_pool`, so every victim
/// interval shrinks or stays — monotonicity the proptest suite pins.
///
/// `colluders` are indices into the run's input values; indices absent
/// from the transcript are ignored. The host is implicitly all-knowing
/// (it ran the protocol), so it should not be listed — the report measures
/// what *peers* extract beyond the protocol's design leak.
pub fn collusion_leak_report(
    run: &BoundingRun,
    colluders: &[usize],
    threshold: f64,
) -> CollusionLeakReport {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let is_colluder = |i: usize| colluders.contains(&i);
    let coalition_size = run.records.iter().filter(|r| is_colluder(r.index)).count();
    let r_pool = run
        .records
        .iter()
        .filter(|r| is_colluder(r.index))
        .map(|r| r.round)
        .max()
        .unwrap_or(0);
    let mut victims = 0usize;
    let mut worst = f64::INFINITY;
    let mut sum = 0.0;
    let mut finite = 0usize;
    let mut exposed = 0usize;
    for r in &run.records {
        if is_colluder(r.index) {
            continue;
        }
        victims += 1;
        let (lower, upper) = if r.round <= r_pool {
            // The coalition overheard this user's agreement: exact interval.
            (r.lower, r.upper)
        } else if r_pool > 0 {
            // Still disagreeing at the coalition's horizon: above the last
            // pooled bound, at most the final agreed bound.
            (run.bounds[r_pool - 1], run.bound)
        } else {
            // Empty (or absent) coalition learns nothing.
            (f64::NEG_INFINITY, f64::INFINITY)
        };
        let width = upper - lower;
        if width.is_finite() {
            worst = worst.min(width);
            sum += width;
            finite += 1;
            if width < threshold {
                exposed += 1;
            }
        }
    }
    CollusionLeakReport {
        coalition_size,
        victims,
        pooled_rounds: r_pool,
        worst_width: worst,
        mean_width: if finite > 0 {
            sum / finite as f64
        } else {
            f64::INFINITY
        },
        exposed_below_threshold: exposed,
    }
}

/// The interval the coalition pins `victim` into, or `None` when the
/// victim is not in the transcript (or is itself listed as a colluder).
/// The per-victim primitive behind [`collusion_leak_report`]; exposed so
/// property tests can assert monotonicity victim-by-victim.
pub fn collusion_exposed_interval(
    run: &BoundingRun,
    colluders: &[usize],
    victim: usize,
) -> Option<(f64, f64)> {
    if colluders.contains(&victim) {
        return None;
    }
    let record = run.records.iter().find(|r| r.index == victim)?;
    let r_pool = run
        .records
        .iter()
        .filter(|r| colluders.contains(&r.index))
        .map(|r| r.round)
        .max()
        .unwrap_or(0);
    Some(if record.round <= r_pool {
        (record.lower, record.upper)
    } else if r_pool > 0 {
        (run.bounds[r_pool - 1], run.bound)
    } else {
        (f64::NEG_INFINITY, f64::INFINITY)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ExponentialPolicy, LinearPolicy};
    use crate::protocol::progressive_upper_bound;

    fn values() -> Vec<f64> {
        vec![0.04, 0.11, 0.19, 0.33, 0.41, 0.52]
    }

    #[test]
    fn finer_steps_leak_more() {
        let v = values();
        let fine = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.01)).unwrap();
        let coarse = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.2)).unwrap();
        let fine_leak = leak_report(&fine, 0.0);
        let coarse_leak = leak_report(&coarse, 0.0);
        assert!(fine_leak.mean_width < coarse_leak.mean_width);
        assert!(fine_leak.min_width < coarse_leak.min_width);
    }

    #[test]
    fn exponential_leaks_less_than_linear() {
        let v = values();
        let lin = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.02)).unwrap();
        let exp = progressive_upper_bound(&v, 0.0, 0.0, &mut ExponentialPolicy::new(0.02)).unwrap();
        assert!(
            leak_report(&exp, 0.0).mean_width > leak_report(&lin, 0.0).mean_width,
            "doubling steps expose wider (safer) intervals"
        );
    }

    #[test]
    fn intervals_always_contain_the_value() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, -1.0, &mut LinearPolicy::new(0.07)).unwrap();
        for r in &run.records {
            assert!(v[r.index] <= r.upper && v[r.index] > r.lower - 1e-12);
        }
    }

    #[test]
    fn exposure_threshold_counts() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.05)).unwrap();
        let all_exposed = leak_report(&run, 1.0);
        assert_eq!(all_exposed.exposed_below_threshold, v.len());
        let none_exposed = leak_report(&run, 0.0);
        assert_eq!(none_exposed.exposed_below_threshold, 0);
    }

    #[test]
    fn empty_coalition_learns_nothing() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.05)).unwrap();
        let report = collusion_leak_report(&run, &[], 1.0);
        assert_eq!(report.coalition_size, 0);
        assert_eq!(report.pooled_rounds, 0);
        assert_eq!(report.victims, v.len());
        assert!(report.worst_width.is_infinite());
        assert_eq!(report.exposed_below_threshold, 0);
    }

    #[test]
    fn full_coalition_matches_transcript_view() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.05)).unwrap();
        // The last agreer colluding means r_pool == rounds: every victim's
        // coalition interval is its exact transcript interval.
        let last = run.records.iter().max_by_key(|r| r.round).unwrap().index;
        let report = collusion_leak_report(&run, &[last], 0.0);
        let full = leak_report(&run, 0.0);
        assert_eq!(report.pooled_rounds, run.rounds);
        assert_eq!(report.victims, v.len() - 1);
        assert!(report.worst_width >= full.min_width - 1e-12);
    }

    #[test]
    fn coalition_interval_contains_true_value() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.07)).unwrap();
        for c in 0..v.len() {
            for (victim, &value) in v.iter().enumerate() {
                if victim == c {
                    continue;
                }
                let (lo, hi) = collusion_exposed_interval(&run, &[c], victim).unwrap();
                assert!(value > lo - 1e-12 && value <= hi, "({lo}, {hi}]");
            }
        }
    }

    #[test]
    fn growing_coalition_never_widens_a_victim_interval() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.04)).unwrap();
        let victim = 5; // the largest value agrees last
        let mut last_width = f64::INFINITY;
        for size in 0..v.len() - 1 {
            let coalition: Vec<usize> = (0..size).collect();
            let (lo, hi) = collusion_exposed_interval(&run, &coalition, victim).unwrap();
            let width = hi - lo;
            assert!(width <= last_width + 1e-12, "{width} > {last_width}");
            last_width = width;
        }
    }

    #[test]
    fn colluders_are_not_victims() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.05)).unwrap();
        assert!(collusion_exposed_interval(&run, &[2], 2).is_none());
        let report = collusion_leak_report(&run, &[1, 2], 10.0);
        assert_eq!(report.coalition_size, 2);
        assert_eq!(report.victims, v.len() - 2);
    }

    #[test]
    fn unbounded_domain_round1_agreers_are_uncounted() {
        let v = vec![0.01, 0.9];
        let run = progressive_upper_bound(&v, 0.0, f64::NEG_INFINITY, &mut LinearPolicy::new(0.5))
            .unwrap();
        let leak = leak_report(&run, 0.6);
        // 0.01 agreed in round 1 with an infinite interval: excluded.
        assert_eq!(leak.users, 2);
        assert_eq!(leak.exposed_below_threshold, 1);
        assert!(leak.min_width.is_finite());
    }
}
