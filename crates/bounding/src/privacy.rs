//! Privacy-loss accounting for progressive bounding.
//!
//! The paper's concluding discussion (§VII) observes that a user who rejects
//! bound `X` and accepts `X'` has exposed `ξ ∈ (X, X']`: the finer the
//! increments, the narrower the exposed interval — a quantifiable privacy
//! loss. This module turns a bounding transcript into that metric, enabling
//! the cost-vs-privacy comparison the paper leaves as future work: linear
//! bounding (small steps) leaks the most per user, exponential the least,
//! secure bounding sits between.

use crate::protocol::BoundingRun;

/// Per-run privacy-loss summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakReport {
    /// Number of users in the transcript.
    pub users: usize,
    /// Narrowest exposed interval across users (worst privacy).
    pub min_width: f64,
    /// Mean exposed interval width.
    pub mean_width: f64,
    /// Users whose interval is narrower than `threshold` passed to
    /// [`leak_report`] — "effectively exposed" users.
    pub exposed_below_threshold: usize,
}

/// Summarizes the privacy loss of a bounding run. Interval widths of
/// round-1 agreers may be infinite when the domain minimum is unbounded;
/// they are excluded from `mean_width` and can never be "exposed".
pub fn leak_report(run: &BoundingRun, threshold: f64) -> LeakReport {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let mut min_width = f64::INFINITY;
    let mut sum = 0.0;
    let mut finite = 0usize;
    let mut exposed = 0usize;
    for r in &run.records {
        let width = r.upper - r.lower;
        if width.is_finite() {
            min_width = min_width.min(width);
            sum += width;
            finite += 1;
            if width < threshold {
                exposed += 1;
            }
        }
    }
    LeakReport {
        users: run.records.len(),
        min_width,
        mean_width: if finite > 0 {
            sum / finite as f64
        } else {
            f64::INFINITY
        },
        exposed_below_threshold: exposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ExponentialPolicy, LinearPolicy};
    use crate::protocol::progressive_upper_bound;

    fn values() -> Vec<f64> {
        vec![0.04, 0.11, 0.19, 0.33, 0.41, 0.52]
    }

    #[test]
    fn finer_steps_leak_more() {
        let v = values();
        let fine = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.01)).unwrap();
        let coarse = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.2)).unwrap();
        let fine_leak = leak_report(&fine, 0.0);
        let coarse_leak = leak_report(&coarse, 0.0);
        assert!(fine_leak.mean_width < coarse_leak.mean_width);
        assert!(fine_leak.min_width < coarse_leak.min_width);
    }

    #[test]
    fn exponential_leaks_less_than_linear() {
        let v = values();
        let lin = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.02)).unwrap();
        let exp = progressive_upper_bound(&v, 0.0, 0.0, &mut ExponentialPolicy::new(0.02)).unwrap();
        assert!(
            leak_report(&exp, 0.0).mean_width > leak_report(&lin, 0.0).mean_width,
            "doubling steps expose wider (safer) intervals"
        );
    }

    #[test]
    fn intervals_always_contain_the_value() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, -1.0, &mut LinearPolicy::new(0.07)).unwrap();
        for r in &run.records {
            assert!(v[r.index] <= r.upper && v[r.index] > r.lower - 1e-12);
        }
    }

    #[test]
    fn exposure_threshold_counts() {
        let v = values();
        let run = progressive_upper_bound(&v, 0.0, 0.0, &mut LinearPolicy::new(0.05)).unwrap();
        let all_exposed = leak_report(&run, 1.0);
        assert_eq!(all_exposed.exposed_below_threshold, v.len());
        let none_exposed = leak_report(&run, 0.0);
        assert_eq!(none_exposed.exposed_below_threshold, 0);
    }

    #[test]
    fn unbounded_domain_round1_agreers_are_uncounted() {
        let v = vec![0.01, 0.9];
        let run = progressive_upper_bound(&v, 0.0, f64::NEG_INFINITY, &mut LinearPolicy::new(0.5))
            .unwrap();
        let leak = leak_report(&run, 0.6);
        // 0.01 agreed in round 1 with an infinite interval: excluded.
        assert_eq!(leak.users, 2);
        assert_eq!(leak.exposed_below_threshold, 1);
        assert!(leak.min_width.is_finite());
    }
}
