//! The competitor bounding algorithms of §VI-D.
//!
//! - **Linear** — the bound grows by a fixed amount each round: the most
//!   conservative strategy, most rounds, tightest bound.
//! - **Exponential** — the bound doubles each round (the increment equals
//!   the length of the current bound): fewest rounds, loosest bound.
//! - **Optimal (OPT)** — every user reports its exact extreme coordinates;
//!   one message per user, perfectly tight — and no privacy. Used purely as
//!   the benchmark.

use crate::protocol::IncrementPolicy;

/// Fixed-increment policy (the paper's *linear* baseline).
#[derive(Debug, Clone, Copy)]
pub struct LinearPolicy {
    /// The constant per-round increment.
    pub step: f64,
}

impl LinearPolicy {
    /// Creates a linear policy with a positive step.
    pub fn new(step: f64) -> Self {
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        LinearPolicy { step }
    }
}

impl IncrementPolicy for LinearPolicy {
    fn increment(&mut self, _n: usize, _round: usize, _current_excess: f64) -> f64 {
        self.step
    }
}

/// Doubling policy (the paper's *exponential* baseline): the first round
/// proposes `initial`, every later round adds the full excess accumulated so
/// far, doubling the bound's distance from X₀.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialPolicy {
    /// The first round's increment (the paper's "initial bound").
    pub initial: f64,
}

impl ExponentialPolicy {
    /// Creates an exponential policy with a positive initial bound.
    pub fn new(initial: f64) -> Self {
        assert!(
            initial > 0.0 && initial.is_finite(),
            "initial must be positive"
        );
        ExponentialPolicy { initial }
    }
}

impl IncrementPolicy for ExponentialPolicy {
    fn increment(&mut self, _n: usize, round: usize, current_excess: f64) -> f64 {
        if round == 1 {
            self.initial
        } else {
            current_excess
        }
    }
}

/// Outcome of the non-private optimal bounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalRun {
    /// The exact maximum of the values.
    pub bound: f64,
    /// One message per user (each reports its value).
    pub messages: u64,
}

/// OPT: collect every value and take the exact maximum. One message per
/// user; zero slack; every coordinate exposed.
pub fn optimal_bound(values: &[f64]) -> OptimalRun {
    assert!(!values.is_empty(), "cannot bound an empty cluster");
    OptimalRun {
        bound: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        messages: values.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::progressive_upper_bound;

    #[test]
    fn linear_is_tight_but_chatty() {
        let values = [0.11, 0.52, 0.37];
        let step = 0.01;
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step)).unwrap();
        assert!(run.slack(&values) <= step + 1e-12);
        assert_eq!(run.rounds, 52); // ⌈0.52/0.01⌉
    }

    #[test]
    fn exponential_doubles_the_excess() {
        let values = [0.9];
        let run =
            progressive_upper_bound(&values, 0.0, 0.0, &mut ExponentialPolicy::new(0.1)).unwrap();
        // Bounds visited: 0.1, 0.2, 0.4, 0.8, 1.6 → 5 rounds.
        assert_eq!(run.rounds, 5);
        assert!((run.bound - 1.6).abs() < 1e-12);
    }

    #[test]
    fn exponential_fewer_rounds_than_linear_looser_bound() {
        let values = [0.03, 0.41, 0.77, 0.12, 0.58];
        let lin = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(0.02)).unwrap();
        let exp =
            progressive_upper_bound(&values, 0.0, 0.0, &mut ExponentialPolicy::new(0.02)).unwrap();
        assert!(exp.rounds < lin.rounds);
        assert!(exp.messages < lin.messages);
        assert!(exp.slack(&values) > lin.slack(&values));
    }

    #[test]
    fn optimal_is_exact_with_one_message_per_user() {
        let values = [0.4, 0.1, 0.77];
        let opt = optimal_bound(&values);
        assert_eq!(opt.bound, 0.77);
        assert_eq!(opt.messages, 3);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn linear_rejects_zero_step() {
        LinearPolicy::new(0.0);
    }
}
