//! The communication-cost model of secure bounding (paper §V-A).
//!
//! Two cost sources trade off against each other:
//!
//! - every verification round costs a fixed `Cb` per disagreeing user
//!   (a round-trip, fixed-size message), and
//! - the eventual service request costs `R(x)`, growing with the bound —
//!   proportional to the *area* of the cloaked region for range queries
//!   (`R(x) = Cr·x²`, Examples 5.1/5.3) or to its *length* for 1-D content
//!   (`R(x) = Cr·x`, Examples 5.2/5.4).
//!
//! Small increments → many rounds (high `Cb` total); large increments →
//! loose bound (high `R`). The optimizers in [`crate::unary`] and
//! [`crate::nbound`] pick the increment minimizing the expected total.

/// The service-request cost function `R(x)` and its derivative.
pub trait RequestCost {
    /// Cost of a service request over a bound of extent `x`.
    fn r(&self, x: f64) -> f64;
    /// Derivative `R'(x)`.
    fn r_prime(&self, x: f64) -> f64;
}

/// Area-proportional request cost `R(x) = Cr·x²` (range queries over a 2-D
/// cloaked region whose extent scales with `x`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaCost {
    pub cr: f64,
}

impl RequestCost for AreaCost {
    #[inline]
    fn r(&self, x: f64) -> f64 {
        self.cr * x * x
    }

    #[inline]
    fn r_prime(&self, x: f64) -> f64 {
        2.0 * self.cr * x
    }
}

/// Length-proportional request cost `R(x) = Cr·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthCost {
    pub cr: f64,
}

impl RequestCost for LengthCost {
    #[inline]
    fn r(&self, x: f64) -> f64 {
        self.cr * x
    }

    #[inline]
    fn r_prime(&self, _x: f64) -> f64 {
        self.cr
    }
}

/// Bundled cost parameters used across the bounding algorithms and the
/// experiments (Table I: `Cb = 1`, `Cr = 1000`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Per-user, per-round verification cost.
    pub cb: f64,
    /// Service-request cost coefficient.
    pub cr: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Table I defaults: a POI's content is 1000× a bounding message.
        CostParams {
            cb: 1.0,
            cr: 1000.0,
        }
    }
}

impl CostParams {
    /// Creates cost parameters; both must be positive.
    pub fn new(cb: f64, cr: f64) -> Self {
        assert!(cb > 0.0 && cr > 0.0, "costs must be positive");
        CostParams { cb, cr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_cost_and_derivative() {
        let c = AreaCost { cr: 1000.0 };
        assert_eq!(c.r(0.1), 10.0);
        assert_eq!(c.r_prime(0.1), 200.0);
    }

    #[test]
    fn length_cost_and_derivative() {
        let c = LengthCost { cr: 5.0 };
        assert_eq!(c.r(2.0), 10.0);
        assert_eq!(c.r_prime(123.0), 5.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let a = AreaCost { cr: 7.0 };
        let x = 0.3;
        let h = 1e-6;
        let fd = (a.r(x + h) - a.r(x - h)) / (2.0 * h);
        assert!((a.r_prime(x) - fd).abs() < 1e-6);
    }

    #[test]
    fn default_params_match_table1() {
        let p = CostParams::default();
        assert_eq!(p.cb, 1.0);
        assert_eq!(p.cr, 1000.0);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn rejects_non_positive_costs() {
        CostParams::new(0.0, 1.0);
    }
}
