//! The 2-D cloaked rectangle from four directional 1-D secure bounds.
//!
//! The paper presents the protocol for a scalar attribute ξ and notes the
//! identifier is "without loss of generality" scalar (§V). A rectangular
//! cloaked region needs four scalar bounds: upper bounds on `x` and `y`, and
//! lower bounds obtained by upper-bounding the *negated* coordinates. Each
//! directional run starts from the host's own coordinate — the region must
//! cover the host anyway, so this anchor reveals nothing beyond the final
//! region itself.

use crate::protocol::{progressive_upper_bound, BoundingError, BoundingRun, IncrementPolicy};
use nela_geo::{Point, Rect};

/// The four directional runs and the assembled region.
#[derive(Debug, Clone)]
pub struct BboxOutcome {
    /// The cloaked region (clipped to the domain rectangle).
    pub rect: Rect,
    /// Total verification messages across the four runs.
    pub messages: u64,
    /// Total rounds across the four runs.
    pub rounds: usize,
    /// The individual runs: `[x-high, x-low, y-high, y-low]` (the low runs
    /// operate on negated coordinates).
    pub runs: [BoundingRun; 4],
}

/// Runs secure bounding in all four directions over the cluster members'
/// `points`, anchored at the host's own position, and assembles the cloaked
/// rectangle. `policy_factory` builds a fresh increment policy per direction
/// (policies may carry per-run state).
///
/// # Errors
/// [`BoundingError::EmptyCluster`] on an empty member list, plus any failure
/// of the four directional runs — a malformed cluster degrades the single
/// request instead of aborting the process.
pub fn secure_bounding_box(
    points: &[Point],
    host: Point,
    domain: Rect,
    mut policy_factory: impl FnMut() -> Box<dyn IncrementPolicy>,
) -> Result<BboxOutcome, BoundingError> {
    if points.is_empty() {
        return Err(BoundingError::EmptyCluster);
    }
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let neg_xs: Vec<f64> = xs.iter().map(|v| -v).collect();
    let neg_ys: Vec<f64> = ys.iter().map(|v| -v).collect();

    let x_hi = progressive_upper_bound(&xs, host.x, domain.min_x, &mut *policy_factory())?;
    let x_lo = progressive_upper_bound(&neg_xs, -host.x, -domain.max_x, &mut *policy_factory())?;
    let y_hi = progressive_upper_bound(&ys, host.y, domain.min_y, &mut *policy_factory())?;
    let y_lo = progressive_upper_bound(&neg_ys, -host.y, -domain.max_y, &mut *policy_factory())?;

    let rect = Rect::new(
        (-x_lo.bound).clamp(domain.min_x, domain.max_x),
        (-y_lo.bound).clamp(domain.min_y, domain.max_y),
        x_hi.bound.clamp(domain.min_x, domain.max_x),
        y_hi.bound.clamp(domain.min_y, domain.max_y),
    );
    let messages = x_hi.messages + x_lo.messages + y_hi.messages + y_lo.messages;
    let rounds = x_hi.rounds + x_lo.rounds + y_hi.rounds + y_lo.rounds;
    Ok(BboxOutcome {
        rect,
        messages,
        rounds,
        runs: [x_hi, x_lo, y_hi, y_lo],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::LinearPolicy;

    fn cluster() -> Vec<Point> {
        vec![
            Point::new(0.30, 0.40),
            Point::new(0.35, 0.42),
            Point::new(0.28, 0.47),
            Point::new(0.33, 0.38),
        ]
    }

    #[test]
    fn region_covers_every_member() {
        let pts = cluster();
        let out = secure_bounding_box(&pts, pts[0], Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.01))
        })
        .unwrap();
        for p in &pts {
            assert!(out.rect.contains(p), "{p:?} outside {:?}", out.rect);
        }
    }

    #[test]
    fn region_contains_tight_bbox_with_bounded_slack() {
        let pts = cluster();
        let step = 0.005;
        let out = secure_bounding_box(&pts, pts[0], Rect::UNIT, || {
            Box::new(LinearPolicy::new(step))
        })
        .unwrap();
        let tight = Rect::bounding(&pts).unwrap();
        assert!(out.rect.contains_rect(&tight));
        assert!(out.rect.width() <= tight.width() + 2.0 * step + 1e-12);
        assert!(out.rect.height() <= tight.height() + 2.0 * step + 1e-12);
    }

    #[test]
    fn region_clipped_to_domain() {
        let pts = vec![Point::new(0.99, 0.99), Point::new(0.97, 0.98)];
        let out = secure_bounding_box(&pts, pts[0], Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.05))
        })
        .unwrap();
        assert!(out.rect.max_x <= 1.0 && out.rect.max_y <= 1.0);
        assert!(Rect::UNIT.contains_rect(&out.rect));
    }

    #[test]
    fn messages_are_summed_over_four_runs() {
        let pts = cluster();
        let out = secure_bounding_box(&pts, pts[0], Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.5))
        })
        .unwrap();
        // Step 0.5 covers each direction in one round of 4 messages.
        assert_eq!(out.rounds, 4);
        assert_eq!(out.messages, 16);
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        let err = secure_bounding_box(&[], Point::new(0.5, 0.5), Rect::UNIT, || {
            Box::new(LinearPolicy::new(0.05))
        })
        .unwrap_err();
        assert_eq!(err, BoundingError::EmptyCluster);
    }

    #[test]
    fn host_is_always_inside() {
        let pts = cluster();
        let host = pts[2];
        let out = secure_bounding_box(&pts, host, Rect::UNIT, || Box::new(LinearPolicy::new(0.02)))
            .unwrap();
        assert!(out.rect.contains(&host));
    }
}
