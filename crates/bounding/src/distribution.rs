//! Distributions of the excess variable ξ − X₀.
//!
//! During a bounding iteration, the amounts by which the disagreeing users'
//! private values exceed the rejected bound are modeled as i.i.d. positive
//! random variables (paper §V-A). Two families are used in the paper's
//! examples and evaluation:
//!
//! - **Uniform(0, U)** — Examples 5.1/5.3; the evaluation instantiates
//!   U = N/|D| (the expected coordinate span of an N-user cluster in a unit
//!   square holding |D| users).
//! - **Exponential(λ)** — Examples 5.2/5.4. The paper writes the density as
//!   `e^{−λx}/λ`, which does not integrate to 1 unless λ = 1; we implement
//!   the standard exponential `p(x) = λe^{−λx}` and derive the matching
//!   closed forms (documented in `DESIGN.md` as a corrected transcription).

/// A distribution of the positive excess ξ − X₀.
pub trait ExcessDistribution {
    /// Probability density at `x ≥ 0`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative probability `P(ξ − X₀ ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
    /// An upper limit of the support useful for capping increments:
    /// the smallest `x` with `cdf(x) = 1`, or a high quantile for unbounded
    /// supports.
    fn effective_span(&self) -> f64;
    /// The same distribution family stretched by `factor` (> 1 widens the
    /// support). Used by the secure bounding policy to recalibrate when the
    /// observed excesses exceed the modeled span.
    fn widened(&self, factor: f64) -> Self
    where
        Self: Sized;
}

/// Uniform on `(0, U)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    pub span: f64,
}

impl Uniform {
    /// Creates a uniform excess model with the given span `U > 0`.
    pub fn new(span: f64) -> Self {
        assert!(span > 0.0 && span.is_finite(), "span must be positive");
        Uniform { span }
    }

    /// The paper's evaluation instantiation: a cluster of `n` users out of a
    /// `population` spread over the unit interval spans about `n/population`.
    pub fn paper_cluster_span(n: usize, population: usize) -> Self {
        Uniform::new(n as f64 / population as f64)
    }
}

impl ExcessDistribution for Uniform {
    #[inline]
    fn pdf(&self, x: f64) -> f64 {
        if (0.0..self.span).contains(&x) {
            1.0 / self.span
        } else {
            0.0
        }
    }

    #[inline]
    fn cdf(&self, x: f64) -> f64 {
        (x / self.span).clamp(0.0, 1.0)
    }

    #[inline]
    fn effective_span(&self) -> f64 {
        self.span
    }

    fn widened(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Uniform::new(self.span * factor)
    }
}

/// Exponential with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential excess model with rate `λ > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }
}

impl ExcessDistribution for Exponential {
    #[inline]
    fn pdf(&self, x: f64) -> f64 {
        if x >= 0.0 {
            self.rate * (-self.rate * x).exp()
        } else {
            0.0
        }
    }

    #[inline]
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// 99.9th percentile: `ln(1000)/λ`.
    #[inline]
    fn effective_span(&self) -> f64 {
        (1000f64).ln() / self.rate
    }

    fn widened(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Exponential::new(self.rate / factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pdf_cdf_consistency() {
        let u = Uniform::new(2.0);
        assert_eq!(u.pdf(1.0), 0.5);
        assert_eq!(u.pdf(3.0), 0.0);
        assert_eq!(u.cdf(1.0), 0.5);
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(5.0), 1.0);
        assert_eq!(u.effective_span(), 2.0);
    }

    #[test]
    fn paper_cluster_span_matches_table1() {
        let u = Uniform::paper_cluster_span(10, 104_770);
        assert!((u.span - 10.0 / 104_770.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_pdf_integrates_to_one() {
        let e = Exponential::new(3.0);
        // Trapezoid integral of the pdf over a long range ≈ 1.
        let mut total = 0.0;
        let dx = 1e-4;
        let mut x = 0.0;
        while x < 10.0 {
            total += 0.5 * (e.pdf(x) + e.pdf(x + dx)) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn exponential_cdf_matches_closed_form() {
        let e = Exponential::new(2.0);
        assert_eq!(e.cdf(0.0), 0.0);
        assert!((e.cdf(1.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
        assert!(e.cdf(100.0) > 0.999999);
    }

    #[test]
    fn exponential_effective_span_covers_tail() {
        let e = Exponential::new(5.0);
        assert!(e.cdf(e.effective_span()) >= 0.999);
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn uniform_rejects_zero_span() {
        Uniform::new(0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_negative_rate() {
        Exponential::new(-1.0);
    }
}
