//! N-bounding: the optimal increment when N users disagree (paper §V-B).
//!
//! The exact formulation (Equation 3) sums over every possible number of
//! still-disagreeing users and requires a dynamic program with one
//! differential-equation solve per N — CPU-heavy for a mobile device. The
//! paper therefore derives the approximation of Equations 4–5,
//!
//! ```text
//! R'(x) = (C* − R*) · N · p(x)
//! ```
//!
//! whose solutions are closed-form for the evaluation's uniform/area case
//! (Example 5.3: `x = N(C*−R*) / (2·Cr·U)`). Both the approximation and the
//! exact bottom-up DP are implemented; the test suite validates the
//! approximation against the DP at small N.

use crate::cost::RequestCost;
use crate::distribution::ExcessDistribution;
use crate::protocol::IncrementPolicy;
use crate::unary::{golden_section_min, unary_optimal};

/// Approximate optimal N-bounding increment (Equation 5), solved generically
/// by minimizing the approximate cost of Equation 4 over `(0, span]`.
/// For `n == 1` this reduces to the unary optimum.
pub fn n_bounding_increment(
    n: usize,
    dist: &dyn ExcessDistribution,
    cost: &dyn RequestCost,
    cb: f64,
) -> f64 {
    assert!(n >= 1, "need at least one disagreeing user");
    let u = unary_optimal(dist, cost, cb);
    if n == 1 {
        return u.x;
    }
    let span = dist.effective_span();
    let c_minus_r = (u.cost - u.request_cost).max(0.0);
    // Equation 4 objective (terms constant in x dropped):
    //   R(x) + N(1−P(x))(1−P(x)^N)(C*−R*)
    let objective = |x: f64| -> f64 {
        let p = dist.cdf(x);
        cost.r(x) + n as f64 * (1.0 - p) * (1.0 - p.powi(n as i32)) * c_minus_r
    };
    golden_section_min(objective, span * 1e-9, span).min(span)
}

/// Example 5.3 closed form for the uniform/area case:
/// `x = N(C*−R*) / (2·Cr·U)`, capped at U. (The cap corresponds to proposing
/// the whole remaining span, after which every modeled user agrees.)
pub fn n_bounding_uniform_area_closed_form(n: usize, cb: f64, cr: f64, span: f64) -> f64 {
    assert!(n >= 1);
    let u = crate::unary::unary_uniform_area(cb, cr, span);
    if n == 1 {
        return u.x;
    }
    (n as f64 * (u.cost - u.request_cost) / (2.0 * cr * span)).min(span)
}

/// Example 5.4 closed form for the exponential/length case:
/// `x = ln(λ·N·(C*−R*) / Cr) / λ` (clamped into `(0, span]`).
pub fn n_bounding_exponential_length_closed_form(n: usize, cb: f64, cr: f64, lambda: f64) -> f64 {
    assert!(n >= 1);
    let u = crate::unary::unary_exponential_length(cb, cr, lambda);
    if n == 1 {
        return u.x;
    }
    let arg = lambda * n as f64 * (u.cost - u.request_cost) / cr;
    let span = (1000f64).ln() / lambda;
    if arg <= 1.0 {
        // Verification is so cheap relative to the request cost that the
        // stationary point falls at (or below) zero: take a minimal step.
        span * 1e-6
    } else {
        (arg.ln() / lambda).min(span)
    }
}

/// The exact bottom-up dynamic program over Equation 3. `cost[i]` is the
/// optimal expected total cost of i-bounding and `increment[i]` the optimal
/// first increment, for `i ∈ 0..=n_max`.
///
/// For a candidate increment x with failure probability `q = 1 − P(x)`:
///
/// ```text
/// C(x, N) · (1 − q^N) = N·Cb + R(x) + Σ_{i=1}^{N−1} B(N,i) q^i (1−q)^{N−i} C*(i)
/// ```
///
/// (the i = N term re-enters state N and is folded to the left-hand side —
/// conditional on total failure the protocol faces N disagreeing users
/// again). The minimization per N is a grid-plus-golden-section search.
#[derive(Debug, Clone)]
pub struct ExactDp {
    pub cost: Vec<f64>,
    pub increment: Vec<f64>,
}

/// Runs the exact DP up to `n_max` users.
pub fn exact_dp_increment(
    n_max: usize,
    dist: &dyn ExcessDistribution,
    cost_fn: &dyn RequestCost,
    cb: f64,
) -> ExactDp {
    assert!(n_max >= 1);
    let span = dist.effective_span();
    let mut cost = vec![0.0; n_max + 1];
    let mut increment = vec![0.0; n_max + 1];
    for n in 1..=n_max {
        let objective = |x: f64| -> f64 {
            let p = dist.cdf(x).clamp(0.0, 1.0);
            let q = 1.0 - p;
            let qn = q.powi(n as i32);
            if 1.0 - qn <= 1e-12 {
                return f64::INFINITY;
            }
            // Binomial expectation over 1..n−1 surviving disagree-ers.
            let mut expect = 0.0;
            // B(n,i) q^i p^(n−i), built iteratively.
            let mut term = (n as f64) * q * p.powi(n as i32 - 1); // i = 1
            for (i, &c_i) in cost.iter().enumerate().take(n).skip(1) {
                expect += term * c_i;
                // term(i+1) = term(i) · (n−i)/(i+1) · q/p
                if p > 0.0 {
                    term *= (n - i) as f64 / (i + 1) as f64 * q / p;
                } else {
                    term = 0.0;
                }
            }
            (n as f64 * cb + cost_fn.r(x) + expect) / (1.0 - qn)
        };
        // Grid scan to bracket the global minimum, then refine.
        let mut best_x = span;
        let mut best_c = objective(span);
        const GRID: usize = 256;
        for g in 1..GRID {
            let x = span * g as f64 / GRID as f64;
            let c = objective(x);
            if c < best_c {
                best_c = c;
                best_x = x;
            }
        }
        let lo = (best_x - span / GRID as f64).max(span * 1e-9);
        let hi = (best_x + span / GRID as f64).min(span);
        let x = golden_section_min(objective, lo, hi);
        increment[n] = x;
        cost[n] = objective(x);
    }
    ExactDp { cost, increment }
}

/// The secure bounding increment policy (paper Algorithm 4): each round's
/// increment is the N-bounding optimum for the current number of disagreeing
/// users.
///
/// The paper models the excesses with a fixed span U = N/|D|; real cluster
/// extents routinely exceed that (clusters in sparse areas span several
/// radio ranges). A model-faithful policy would then crawl: every round
/// proposes at most the modeled span while nobody agrees. The policy
/// therefore *recalibrates*: whenever a round ends with zero new agreements
/// (the count of disagreeing users did not drop), the modeled span doubles
/// and increments are re-derived — the optimal-increment structure is kept,
/// anchored to a span consistent with the evidence. Increments are memoized
/// per (N, recalibration level).
pub struct SecurePolicy<D, R> {
    dist: D,
    cost: R,
    cb: f64,
    /// Doublings applied so far.
    widenings: u32,
    /// `n_disagreeing` seen in the previous round (zero-progress detector).
    last_n: Option<usize>,
    memo: std::collections::HashMap<(usize, u32), f64>,
}

impl<D: ExcessDistribution, R: RequestCost> SecurePolicy<D, R> {
    /// Creates the policy from the excess model and cost model.
    pub fn new(dist: D, cost: R, cb: f64) -> Self {
        SecurePolicy {
            dist,
            cost,
            cb,
            widenings: 0,
            last_n: None,
            memo: std::collections::HashMap::new(),
        }
    }
}

impl<D: ExcessDistribution, R: RequestCost> IncrementPolicy for SecurePolicy<D, R> {
    fn increment(&mut self, n_disagreeing: usize, _round: usize, _current_excess: f64) -> f64 {
        if self.last_n == Some(n_disagreeing) {
            // No one agreed last round: the modeled span is too small.
            self.widenings += 1;
        }
        self.last_n = Some(n_disagreeing);
        let dist = self.dist.widened(f64::powi(2.0, self.widenings as i32));
        let floor = dist.effective_span() * 1e-3;
        let inc = *self
            .memo
            .entry((n_disagreeing, self.widenings))
            .or_insert_with(|| n_bounding_increment(n_disagreeing, &dist, &self.cost, self.cb));
        inc.max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AreaCost, LengthCost};
    use crate::distribution::{Exponential, Uniform};

    #[test]
    fn n1_reduces_to_unary() {
        let dist = Uniform::new(0.2);
        let cost = AreaCost { cr: 100.0 };
        let u = unary_optimal(&dist, &cost, 1.0);
        let x1 = n_bounding_increment(1, &dist, &cost, 1.0);
        assert_eq!(u.x, x1);
    }

    #[test]
    fn closed_form_matches_example_5_3_formula() {
        // Uncapped regime: make the formula produce an interior value.
        let (cb, cr, span) = (1.0, 5000.0, 0.5);
        let u = crate::unary::unary_uniform_area(cb, cr, span);
        for n in [2usize, 5, 10] {
            let x = n_bounding_uniform_area_closed_form(n, cb, cr, span);
            let expect = (n as f64 * (u.cost - u.request_cost) / (2.0 * cr * span)).min(span);
            assert!((x - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn increment_grows_with_n() {
        // More disagreeing users → each round is costlier → larger steps.
        let dist = Uniform::new(0.3);
        let cost = AreaCost { cr: 500.0 };
        let x2 = n_bounding_increment(2, &dist, &cost, 1.0);
        let x8 = n_bounding_increment(8, &dist, &cost, 1.0);
        assert!(x8 >= x2, "x8 {x8} < x2 {x2}");
    }

    #[test]
    fn exact_dp_monotone_cost_in_n() {
        let dist = Uniform::new(0.2);
        let cost = AreaCost { cr: 300.0 };
        let dp = exact_dp_increment(10, &dist, &cost, 1.0);
        for n in 2..=10 {
            assert!(
                dp.cost[n] >= dp.cost[n - 1],
                "bounding more users cannot be cheaper: C*({n}) = {} < C*({}) = {}",
                dp.cost[n],
                n - 1,
                dp.cost[n - 1]
            );
        }
    }

    #[test]
    fn exact_dp_n1_matches_unary() {
        let dist = Uniform::new(0.2);
        let cost = AreaCost { cr: 300.0 };
        let dp = exact_dp_increment(3, &dist, &cost, 1.0);
        let u = unary_optimal(&dist, &cost, 1.0);
        assert!((dp.cost[1] - u.cost).abs() / u.cost < 1e-3);
        assert!((dp.increment[1] - u.x).abs() < 1e-3 * dist.span);
    }

    #[test]
    fn approximation_is_near_exact_dp_for_small_n() {
        // The paper's claim behind Eq. 5: the cheap approximation tracks the
        // exact DP. Compare the *costs achieved* when using each increment
        // in the exact recursion (costs are flat near the optimum, so
        // comparing x directly would be too strict).
        let dist = Uniform::new(0.25);
        let cost = AreaCost { cr: 400.0 };
        let dp = exact_dp_increment(6, &dist, &cost, 1.0);
        for n in 2..=6usize {
            let x_approx = n_bounding_increment(n, &dist, &cost, 1.0);
            let eval = |x: f64| -> f64 {
                let p = dist.cdf(x);
                let q = 1.0 - p;
                let qn = q.powi(n as i32);
                let mut expect = 0.0;
                let mut term = (n as f64) * q * p.powi(n as i32 - 1);
                for i in 1..n {
                    expect += term * dp.cost[i];
                    term *= (n - i) as f64 / (i + 1) as f64 * q / p.max(1e-300);
                }
                (n as f64 * 1.0 + cost.r(x) + expect) / (1.0 - qn)
            };
            let c_approx = eval(x_approx);
            assert!(
                c_approx <= dp.cost[n] * 1.25,
                "n={n}: approx increment {x_approx} costs {c_approx}, exact {}",
                dp.cost[n]
            );
        }
    }

    #[test]
    fn exponential_closed_form_is_positive_and_bounded() {
        for n in [1usize, 2, 10, 50] {
            let x = n_bounding_exponential_length_closed_form(n, 1.0, 10.0, 4.0);
            assert!(x > 0.0);
            assert!(x <= (1000f64).ln() / 4.0);
        }
    }

    #[test]
    fn exponential_generic_close_to_closed_form() {
        let (cb, cr, lambda) = (1.0, 3.0, 2.0);
        let dist = Exponential::new(lambda);
        let cost = LengthCost { cr };
        for n in [2usize, 4, 8] {
            let generic = n_bounding_increment(n, &dist, &cost, cb);
            let closed = n_bounding_exponential_length_closed_form(n, cb, cr, lambda);
            // Both should land in the same cost basin: compare Eq.4 values.
            let u = unary_optimal(&dist, &cost, cb);
            let cmr = u.cost - u.request_cost;
            let obj = |x: f64| {
                let p = dist.cdf(x);
                cost.r(x) + n as f64 * (1.0 - p) * (1.0 - p.powi(n as i32)) * cmr
            };
            assert!(
                obj(generic) <= obj(closed) * 1.05 + 1e-9,
                "n={n}: generic {generic} vs closed {closed}"
            );
        }
    }

    #[test]
    fn secure_policy_widens_on_stall_and_floors() {
        let mut p = SecurePolicy::new(Uniform::new(0.2), AreaCost { cr: 100.0 }, 1.0);
        let a = p.increment(4, 1, 0.0);
        assert!(a >= 0.2 * 1e-3, "floored increment");
        // Same N again = nobody agreed: the span doubles, increments grow.
        let b = p.increment(4, 2, a);
        assert!(b > a, "stalled round must widen the model: {a} -> {b}");
        // Progress (smaller N) does not widen further; increments for the
        // same (N, widening level) are memoized.
        let c1 = p.increment(2, 3, a + b);
        let c2 = {
            let dist = Uniform::new(0.2).widened(2.0);
            n_bounding_increment(2, &dist, &AreaCost { cr: 100.0 }, 1.0)
                .max(dist.effective_span() * 1e-3)
        };
        assert!((c1 - c2).abs() < 1e-12, "memoized against widened model");
    }
}
