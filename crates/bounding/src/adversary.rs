//! Adversarial verification transports for the bounding protocol.
//!
//! The paper evaluates secure bounding under semi-honest peers; these
//! transports model the stronger adversaries of the scenario matrix:
//! peers that **crash** mid-run (stop answering from a given round) and
//! peers that **lie** (answer verifications dishonestly). Both are driven
//! by the same [`VerifyTransport`] interface the honest
//! [`LocalValues`](crate::LocalValues) implements, so every bounding entry
//! point — plain, resilient, or the engine's — can be exercised against
//! them without special-casing.
//!
//! The transports infer the current round from the broadcast hypothesis
//! bound: within one run bounds strictly increase, so a bound at or below
//! the last one observed means the protocol restarted (the resilient
//! re-run over survivors).

use crate::protocol::VerifyTransport;

/// Tracks the 1-based round of the run in progress from the strictly
/// increasing hypothesis bounds, resetting on restart.
#[derive(Debug, Clone, Copy)]
struct RoundTracker {
    round: usize,
    last_bound: f64,
}

impl RoundTracker {
    fn new() -> Self {
        RoundTracker {
            round: 0,
            last_bound: f64::NEG_INFINITY,
        }
    }

    /// Observes a broadcast bound and returns the current 1-based round.
    fn observe(&mut self, bound: f64) -> usize {
        if bound > self.last_bound {
            self.round += 1;
        } else if bound < self.last_bound {
            // A smaller hypothesis can only mean a fresh run (restart over
            // survivors): bounds within one run are strictly increasing.
            self.round = 1;
        }
        self.last_bound = bound;
        self.round
    }
}

/// Transport in which a chosen set of peers answers honestly until a given
/// round and then crashes (returns `None`, the protocol's "unreachable").
pub struct CrashingValues<'a> {
    values: &'a [f64],
    crashers: &'a [usize],
    crash_round: usize,
    tracker: RoundTracker,
}

impl<'a> CrashingValues<'a> {
    /// Peers listed in `crashers` (indices into `values`) answer honestly
    /// for rounds `< crash_round` and are unreachable from `crash_round`
    /// on. `crash_round` is 1-based; `1` means unreachable from the start.
    pub fn new(values: &'a [f64], crashers: &'a [usize], crash_round: usize) -> Self {
        assert!(crash_round >= 1, "rounds are 1-based");
        CrashingValues {
            values,
            crashers,
            crash_round,
            tracker: RoundTracker::new(),
        }
    }
}

impl VerifyTransport for CrashingValues<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        let round = self.tracker.observe(bound);
        if round >= self.crash_round && self.crashers.contains(&index) {
            return None;
        }
        Some(self.values[index] <= bound)
    }
}

/// How a lying peer misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LieMode {
    /// Answers "yes" to every verification, agreeing before its true value
    /// is covered — the agreed box may not contain the liar. Only the liar
    /// itself loses coverage; truthful members stay covered.
    AgreeEarly,
    /// Answers "no" forever, so the run cannot terminate and must trip the
    /// round cap as a typed [`BoundingError::RoundLimitExceeded`]
    /// (a denial-of-service liar).
    ///
    /// [`BoundingError::RoundLimitExceeded`]: crate::BoundingError::RoundLimitExceeded
    DenyForever,
}

/// Transport in which a chosen set of peers lies per [`LieMode`] while the
/// rest answer honestly.
pub struct LyingValues<'a> {
    values: &'a [f64],
    liars: &'a [usize],
    mode: LieMode,
}

impl<'a> LyingValues<'a> {
    /// Peers listed in `liars` (indices into `values`) answer per `mode`.
    pub fn new(values: &'a [f64], liars: &'a [usize], mode: LieMode) -> Self {
        LyingValues {
            values,
            liars,
            mode,
        }
    }
}

impl VerifyTransport for LyingValues<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        if self.liars.contains(&index) {
            return Some(self.mode == LieMode::AgreeEarly);
        }
        Some(self.values[index] <= bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{progressive_upper_bound_with, BoundingError, IncrementPolicy};

    struct Step(f64);
    impl IncrementPolicy for Step {
        fn increment(&mut self, _n: usize, _round: usize, _excess: f64) -> f64 {
            self.0
        }
    }

    #[test]
    fn crasher_before_crash_round_is_honest() {
        let values = [0.05, 0.95];
        // Crash at round 50: both values are covered by round 10, so the
        // run finishes before the crash ever fires.
        let mut t = CrashingValues::new(&values, &[1], 50);
        let run = progressive_upper_bound_with(&mut t, 0.0, 0.0, &mut Step(0.1)).unwrap();
        assert!(run.bound >= 0.95);
        assert_eq!(run.records.len(), 2);
    }

    #[test]
    fn crash_surfaces_as_typed_unreachable() {
        let values = [0.05, 0.95];
        let mut t = CrashingValues::new(&values, &[1], 2);
        let err = progressive_upper_bound_with(&mut t, 0.0, 0.0, &mut Step(0.1)).unwrap_err();
        assert_eq!(err, BoundingError::Unreachable { index: 1 });
    }

    #[test]
    fn agree_early_liar_escapes_the_bound() {
        let values = [0.1, 0.9];
        let mut t = LyingValues::new(&values, &[1], LieMode::AgreeEarly);
        let run = progressive_upper_bound_with(&mut t, 0.0, 0.0, &mut Step(0.2)).unwrap();
        // The liar "agreed" in round 1, so the bound stops at 0.2 and does
        // not cover its true value — the liar only hurt itself.
        assert!(run.bound < 0.9);
        assert!(run.bound >= 0.1, "truthful member still covered");
    }

    #[test]
    fn deny_forever_liar_trips_the_round_cap() {
        let values = [0.1, 0.2];
        let mut t = LyingValues::new(&values, &[0], LieMode::DenyForever);
        let err = progressive_upper_bound_with(&mut t, 0.0, 0.0, &mut Step(0.5)).unwrap_err();
        assert!(matches!(err, BoundingError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn round_tracker_resets_on_restart() {
        let mut tracker = RoundTracker::new();
        assert_eq!(tracker.observe(0.1), 1);
        assert_eq!(tracker.observe(0.2), 2);
        assert_eq!(tracker.observe(0.2), 2, "same round, second peer");
        assert_eq!(tracker.observe(0.1), 1, "smaller bound means restart");
        assert_eq!(tracker.observe(0.2), 2);
    }
}
