//! The progressive bounding engine (paper Algorithms 3–4).
//!
//! The host maintains a hypothesis bound `X`, initially a reference value
//! `X₀` (the host's own coordinate in the cloaking pipeline — the region must
//! cover the host anyway, so this reveals nothing extra). Each round the
//! bound grows by a policy-chosen increment and every still-disagreeing user
//! is asked to verify `ξ ≤ X`; a user answers only yes/no, never a value.
//! The round costs one fixed-size round-trip (`Cb`) per asked user. The
//! protocol ends when nobody disagrees.
//!
//! The engine is strategy-agnostic: secure bounding, the linear and
//! exponential baselines of §VI-D, and any user-supplied policy plug in via
//! [`IncrementPolicy`].

/// Chooses the bound increment for the next round.
pub trait IncrementPolicy {
    /// The (strictly positive) increment to add to the current bound.
    ///
    /// * `n_disagreeing` — number of users who rejected the previous bound
    ///   (all users before the first round),
    /// * `round` — 1-based round number about to execute,
    /// * `current_excess` — how far the bound has already traveled from X₀
    ///   (what the exponential baseline doubles).
    fn increment(&mut self, n_disagreeing: usize, round: usize, current_excess: f64) -> f64;
}

/// What one user's participation in a bounding run revealed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreementRecord {
    /// Index into the input `values`.
    pub index: usize,
    /// Round at which the user first agreed (1-based).
    pub round: usize,
    /// The protocol transcript pins the user's value into `(lower, upper]`.
    /// For round-1 agreers `lower` is the public domain minimum — nothing
    /// tighter is learned about them.
    pub lower: f64,
    /// Upper end of the revealed interval (the bound the user accepted).
    pub upper: f64,
}

/// Outcome of one 1-D progressive bounding run.
#[derive(Debug, Clone)]
pub struct BoundingRun {
    /// The agreed bound: an upper bound of every input value.
    pub bound: f64,
    /// Number of hypothesis–verification rounds.
    pub rounds: usize,
    /// Total verification messages: Σ over rounds of the number of users
    /// asked that round (each costs `Cb`).
    pub messages: u64,
    /// Per-user agreement transcript (one record per input value), in input
    /// order.
    pub records: Vec<AgreementRecord>,
    /// The hypothesis bound broadcast each round: `bounds[r - 1]` is the
    /// `X` of round `r` (1-based). A peer that participated through round
    /// `r` has observed exactly the prefix `bounds[..r]` — this is the raw
    /// material of the collusion model in [`crate::privacy`].
    pub bounds: Vec<f64>,
}

impl BoundingRun {
    /// Slack between the agreed bound and the true maximum (≥ 0).
    pub fn slack(&self, values: &[f64]) -> f64 {
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        self.bound - max
    }
}

/// Hard cap on rounds; a policy producing vanishing increments is a bug and
/// is reported loudly instead of hanging.
const MAX_ROUNDS: usize = 100_000;

/// Transport carrying the per-round yes/no verification question to a user.
/// Implementations range from a local value array to `nela-netsim`'s
/// simulated radio network with loss and retries.
pub trait VerifyTransport {
    /// Number of participating users.
    fn len(&self) -> usize;
    /// True when no users participate.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Ask user `index` whether its private value is ≤ `bound`. `None` means
    /// the user is unreachable (crashed, messages lost beyond retry).
    fn verify(&mut self, index: usize, bound: f64) -> Option<bool>;
}

/// In-memory transport over a slice of values.
pub struct LocalValues<'a> {
    values: &'a [f64],
}

impl<'a> LocalValues<'a> {
    /// Wraps a value slice.
    pub fn new(values: &'a [f64]) -> Self {
        LocalValues { values }
    }
}

impl VerifyTransport for LocalValues<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        Some(self.values[index] <= bound)
    }
}

/// Typed failure of a bounding run. Clusters are caller-supplied (a
/// malformed one must degrade the single request, not abort the process), so
/// none of these conditions panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundingError {
    /// The cluster has no participants to bound.
    EmptyCluster,
    /// A participant stopped answering verifications (crashed, messages lost
    /// beyond retry). Carries the index into the input values.
    Unreachable {
        /// Index of the user that never answered.
        index: usize,
    },
    /// The increment policy produced a non-positive or non-finite step.
    InvalidIncrement {
        /// The offending increment.
        increment: f64,
        /// 1-based round at which it was produced.
        round: usize,
    },
    /// The run exceeded the internal round cap (a policy producing vanishing
    /// increments would otherwise hang the protocol).
    RoundLimitExceeded {
        /// The cap that was hit.
        rounds: usize,
    },
}

impl std::fmt::Display for BoundingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundingError::EmptyCluster => write!(f, "cannot bound an empty cluster"),
            BoundingError::Unreachable { index } => {
                write!(f, "bounding participant {index} is unreachable")
            }
            BoundingError::InvalidIncrement { increment, round } => {
                write!(
                    f,
                    "policy produced invalid increment {increment} at round {round}"
                )
            }
            BoundingError::RoundLimitExceeded { rounds } => {
                write!(f, "bounding did not terminate within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for BoundingError {}

/// Runs progressive upper bounding of `values` starting from `x0`.
///
/// `domain_min` is the public lower end of the value domain (used only for
/// the leak transcript of round-1 agreers). Values at or below `x0` are
/// covered by the first accepted bound like everyone else.
///
/// # Errors
/// [`BoundingError::EmptyCluster`] on empty input,
/// [`BoundingError::InvalidIncrement`]/[`BoundingError::RoundLimitExceeded`]
/// on a misbehaving policy. (Local values are always reachable.)
pub fn progressive_upper_bound(
    values: &[f64],
    x0: f64,
    domain_min: f64,
    policy: &mut dyn IncrementPolicy,
) -> Result<BoundingRun, BoundingError> {
    let mut transport = LocalValues::new(values);
    progressive_upper_bound_with(&mut transport, x0, domain_min, policy)
}

/// Transport-generic progressive upper bounding (Algorithms 3–4).
///
/// # Errors
/// [`BoundingError`]: empty cluster, unreachable participant, or a policy
/// producing invalid/vanishing increments.
pub fn progressive_upper_bound_with(
    transport: &mut dyn VerifyTransport,
    x0: f64,
    domain_min: f64,
    policy: &mut dyn IncrementPolicy,
) -> Result<BoundingRun, BoundingError> {
    if transport.is_empty() {
        return Err(BoundingError::EmptyCluster);
    }
    let mut disagreeing: Vec<usize> = (0..transport.len()).collect();
    let mut x = x0;
    let mut rounds = 0usize;
    let mut messages = 0u64;
    let mut records: Vec<AgreementRecord> = Vec::with_capacity(transport.len());
    let mut bounds: Vec<f64> = Vec::new();

    while !disagreeing.is_empty() {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(BoundingError::RoundLimitExceeded { rounds: MAX_ROUNDS });
        }
        let inc = policy.increment(disagreeing.len(), rounds, x - x0);
        if !(inc.is_finite() && inc > 0.0) {
            return Err(BoundingError::InvalidIncrement {
                increment: inc,
                round: rounds,
            });
        }
        let prev = x;
        x += inc;
        bounds.push(x);
        messages += disagreeing.len() as u64;
        let mut still = Vec::with_capacity(disagreeing.len());
        for &i in &disagreeing {
            match transport.verify(i, x) {
                Some(true) => records.push(AgreementRecord {
                    index: i,
                    round: rounds,
                    lower: if rounds == 1 { domain_min } else { prev },
                    upper: x,
                }),
                Some(false) => still.push(i),
                None => return Err(BoundingError::Unreachable { index: i }),
            }
        }
        disagreeing = still;
    }
    records.sort_by_key(|r| r.index);
    Ok(BoundingRun {
        bound: x,
        rounds,
        messages,
        records,
        bounds,
    })
}

/// Result of a crash-resilient bounding run: the final successful run plus
/// the peers dropped along the way.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The successful run over the surviving participants. Record indices
    /// refer to the **original** input indexing, so transcripts stay
    /// attributable after drops.
    pub run: BoundingRun,
    /// Original indices of participants dropped as unreachable, in drop
    /// order.
    pub dropped: Vec<usize>,
    /// Number of restarts performed (equals `dropped.len()`).
    pub restarts: usize,
    /// Verification messages across *all* attempts, including the aborted
    /// ones (`run.messages` only counts the final attempt).
    pub total_messages: u64,
}

/// Counts every verification question sent through the underlying
/// transport, across restarts.
struct CountingTransport<'a> {
    inner: &'a mut dyn VerifyTransport,
    asked: u64,
}

impl VerifyTransport for CountingTransport<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        self.asked += 1;
        self.inner.verify(index, bound)
    }
}

/// Presents the surviving subset of a transport under dense indices
/// `0..map.len()`, translating back to original indices on every question.
struct SurvivorView<'a, 'b> {
    inner: &'a mut CountingTransport<'b>,
    map: &'a [usize],
}

impl VerifyTransport for SurvivorView<'_, '_> {
    fn len(&self) -> usize {
        self.map.len()
    }

    fn verify(&mut self, index: usize, bound: f64) -> Option<bool> {
        self.inner.verify(self.map[index], bound)
    }
}

/// Crash-resilient progressive bounding: whenever a participant becomes
/// unreachable mid-run, it is dropped and the protocol **restarts over the
/// survivors** (with a fresh policy from `policy_factory`) instead of
/// aborting the whole request. The returned bound covers every survivor;
/// the dropped peers are reported so the caller can decide whether the
/// shrunken cluster still meets its anonymity requirement.
///
/// # Errors
/// [`BoundingError::EmptyCluster`] when the input is empty or every
/// participant crashed; policy errors ([`BoundingError::InvalidIncrement`],
/// [`BoundingError::RoundLimitExceeded`]) propagate unchanged. Never
/// returns [`BoundingError::Unreachable`] and never panics.
pub fn progressive_upper_bound_resilient(
    transport: &mut dyn VerifyTransport,
    x0: f64,
    domain_min: f64,
    policy_factory: &mut dyn FnMut() -> Box<dyn IncrementPolicy>,
) -> Result<ResilientOutcome, BoundingError> {
    let mut alive: Vec<usize> = (0..transport.len()).collect();
    let mut dropped: Vec<usize> = Vec::new();
    let mut counting = CountingTransport {
        inner: transport,
        asked: 0,
    };
    loop {
        if alive.is_empty() {
            return Err(BoundingError::EmptyCluster);
        }
        let mut view = SurvivorView {
            inner: &mut counting,
            map: &alive,
        };
        let mut policy = policy_factory();
        match progressive_upper_bound_with(&mut view, x0, domain_min, policy.as_mut()) {
            Ok(mut run) => {
                for r in &mut run.records {
                    r.index = alive[r.index];
                }
                // Final-attempt message count reflects the survivor run;
                // re-sorting keeps the in-input-order record contract.
                run.records.sort_by_key(|r| r.index);
                let restarts = dropped.len();
                return Ok(ResilientOutcome {
                    run,
                    dropped,
                    restarts,
                    total_messages: counting.asked,
                });
            }
            Err(BoundingError::Unreachable { index }) => {
                let original = alive.remove(index);
                dropped.push(original);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-step policy for tests.
    struct Step(f64);
    impl IncrementPolicy for Step {
        fn increment(&mut self, _n: usize, _round: usize, _excess: f64) -> f64 {
            self.0
        }
    }

    #[test]
    fn bound_covers_all_values() {
        let values = [0.31, 0.12, 0.48, 0.05];
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.1)).unwrap();
        assert!(run.bound >= 0.48);
        assert_eq!(run.records.len(), 4);
    }

    #[test]
    fn rounds_and_messages_accounting() {
        // Values 0.05, 0.15, 0.25 with step 0.1 from 0:
        // round 1 (X=0.1): 3 asked, one agrees; round 2 (X=0.2): 2 asked,
        // one agrees; round 3 (X=0.3): 1 asked, agrees. 3+2+1 = 6 messages.
        let values = [0.05, 0.15, 0.25];
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.1)).unwrap();
        assert_eq!(run.rounds, 3);
        assert_eq!(run.messages, 6);
        assert!((run.bound - 0.3).abs() < 1e-12);
    }

    #[test]
    fn transcript_intervals_contain_true_values() {
        let values = [0.07, 0.33, 0.18, 0.0, 0.51];
        let run = progressive_upper_bound(&values, 0.0, -1.0, &mut Step(0.08)).unwrap();
        for r in &run.records {
            let v = values[r.index];
            assert!(
                v > r.lower || (r.round == 1 && v >= r.lower),
                "{r:?} vs {v}"
            );
            assert!(v <= r.upper, "{r:?} vs {v}");
        }
    }

    #[test]
    fn round1_agreers_leak_only_domain_floor() {
        let values = [0.01, 0.9];
        let run = progressive_upper_bound(&values, 0.0, -2.5, &mut Step(0.5)).unwrap();
        let r0 = run.records.iter().find(|r| r.index == 0).unwrap();
        assert_eq!(r0.round, 1);
        assert_eq!(r0.lower, -2.5);
    }

    #[test]
    fn values_below_x0_agree_in_round_one() {
        let values = [-0.3, 0.2];
        let run = progressive_upper_bound(&values, 0.0, -1.0, &mut Step(0.25)).unwrap();
        let r0 = run.records.iter().find(|r| r.index == 0).unwrap();
        assert_eq!(r0.round, 1);
    }

    #[test]
    fn slack_is_nonnegative() {
        let values = [0.2, 0.6];
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.07)).unwrap();
        assert!(run.slack(&values) >= 0.0);
        assert!(run.slack(&values) < 0.07 + 1e-12);
    }

    #[test]
    fn zero_increment_is_a_typed_error() {
        let err = progressive_upper_bound(&[0.5], 0.0, 0.0, &mut Step(0.0)).unwrap_err();
        assert_eq!(
            err,
            BoundingError::InvalidIncrement {
                increment: 0.0,
                round: 1
            }
        );
    }

    #[test]
    fn empty_values_are_a_typed_error() {
        let err = progressive_upper_bound(&[], 0.0, 0.0, &mut Step(0.1)).unwrap_err();
        assert_eq!(err, BoundingError::EmptyCluster);
    }

    #[test]
    fn vanishing_policy_hits_round_cap_as_error() {
        /// Returns a finite positive increment too small to ever cover the
        /// gap, so the run must trip the round cap instead of hanging.
        struct Vanishing;
        impl IncrementPolicy for Vanishing {
            fn increment(&mut self, _n: usize, _round: usize, _excess: f64) -> f64 {
                1e-12
            }
        }
        let err = progressive_upper_bound(&[1.0], 0.0, 0.0, &mut Vanishing).unwrap_err();
        assert!(matches!(err, BoundingError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn single_round_when_step_covers_everything() {
        let values = [0.1, 0.2, 0.3];
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(1.0)).unwrap();
        assert_eq!(run.rounds, 1);
        assert_eq!(run.messages, 3);
    }

    #[test]
    fn bounds_trace_one_hypothesis_per_round() {
        let values = [0.05, 0.15, 0.25];
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.1)).unwrap();
        assert_eq!(run.bounds.len(), run.rounds);
        assert!(run.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*run.bounds.last().unwrap(), run.bound);
        // Every record's upper is the broadcast bound of its round.
        for r in &run.records {
            assert_eq!(r.upper, run.bounds[r.round - 1]);
        }
    }

    #[test]
    fn resilient_run_without_crashes_matches_plain_run() {
        let values = [0.31, 0.12, 0.48, 0.05];
        let plain = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.1)).unwrap();
        let mut transport = LocalValues::new(&values);
        let out = progressive_upper_bound_resilient(&mut transport, 0.0, 0.0, &mut || {
            Box::new(Step(0.1))
        })
        .unwrap();
        assert!(out.dropped.is_empty());
        assert_eq!(out.restarts, 0);
        assert_eq!(out.run.bound, plain.bound);
        assert_eq!(out.run.records, plain.records);
        assert_eq!(out.total_messages, plain.messages);
    }

    #[test]
    fn resilient_drops_crasher_and_rebounds_survivors() {
        use crate::adversary::CrashingValues;
        let values = [0.05, 0.95, 0.15];
        // Index 1 (the largest value) crashes at round 2: the re-run covers
        // the two survivors only.
        let mut transport = CrashingValues::new(&values, &[1], 2);
        let out = progressive_upper_bound_resilient(&mut transport, 0.0, 0.0, &mut || {
            Box::new(Step(0.1))
        })
        .unwrap();
        assert_eq!(out.dropped, vec![1]);
        assert_eq!(out.restarts, 1);
        assert_eq!(out.run.records.len(), 2);
        assert!(out.run.bound >= 0.15 && out.run.bound < 0.95);
        assert!(
            out.total_messages > out.run.messages,
            "aborted attempt messages are accounted"
        );
        // Records carry original indices.
        let idx: Vec<usize> = out.run.records.iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn resilient_all_crashed_is_typed_empty_cluster() {
        use crate::adversary::CrashingValues;
        let values = [0.3, 0.6];
        let mut transport = CrashingValues::new(&values, &[0, 1], 1);
        let err = progressive_upper_bound_resilient(&mut transport, 0.0, 0.0, &mut || {
            Box::new(Step(0.1))
        })
        .unwrap_err();
        assert_eq!(err, BoundingError::EmptyCluster);
    }

    /// Satellite: a peer going `Unreachable` at *every* round index `r` of
    /// a run either yields a successful re-run over the survivors or a
    /// typed `BoundingError` — never a panic, never a silently-wrong box.
    #[test]
    fn crash_at_every_round_recovers_or_errors_typed() {
        use crate::adversary::CrashingValues;
        let values = [0.07, 0.33, 0.18, 0.02, 0.51, 0.44];
        let honest = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.05)).unwrap();
        // One past the honest round count: the crash never fires there and
        // the run must complete with nobody dropped.
        for r in 1..=honest.rounds + 1 {
            for crasher in 0..values.len() {
                let crashers = [crasher];
                let mut transport = CrashingValues::new(&values, &crashers, r);
                let out = progressive_upper_bound_resilient(&mut transport, 0.0, 0.0, &mut || {
                    Box::new(Step(0.05))
                })
                .unwrap_or_else(|e| panic!("crash@{r} of {crasher}: unexpected {e}"));
                if out.dropped.is_empty() {
                    // Crasher agreed before round r: full honest outcome.
                    assert_eq!(out.run.bound, honest.bound, "crash@{r} of {crasher}");
                    assert_eq!(out.run.records.len(), values.len());
                } else {
                    assert_eq!(out.dropped, vec![crasher], "crash@{r}");
                    assert_eq!(out.run.records.len(), values.len() - 1);
                    // The survivor bound covers every survivor value.
                    for (i, &v) in values.iter().enumerate() {
                        if i != crasher {
                            assert!(out.run.bound >= v, "crash@{r}: {v} uncovered");
                        }
                    }
                }
            }
        }
    }

    /// The non-resilient entry point stays typed (no panic) for the same
    /// exhaustive crash sweep.
    #[test]
    fn plain_run_crash_at_every_round_is_typed_unreachable() {
        use crate::adversary::CrashingValues;
        let values = [0.07, 0.33, 0.18, 0.02, 0.51];
        let honest = progressive_upper_bound(&values, 0.0, 0.0, &mut Step(0.05)).unwrap();
        for r in 1..=honest.rounds {
            for crasher in 0..values.len() {
                let crashers = [crasher];
                let mut transport = CrashingValues::new(&values, &crashers, r);
                match progressive_upper_bound_with(&mut transport, 0.0, 0.0, &mut Step(0.05)) {
                    Ok(run) => assert_eq!(run.bound, honest.bound),
                    Err(e) => assert_eq!(e, BoundingError::Unreachable { index: crasher }),
                }
            }
        }
    }
}
