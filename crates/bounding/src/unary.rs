//! Unary bounding: the optimal bound for a single disagreeing user
//! (paper §V-A, Equation 2).
//!
//! For one user whose excess follows `P(x)`, proposing bound `x` costs
//! `C(x) = Cb + R(x) + (1 − P(x))·C*`, and at the optimum `C* = min C(x)`,
//! which rearranges to the stationary condition `P(x)·R'(x) = (Cb + R(x))·p(x)`
//! — equivalently, `C* = (Cb + R(x*)) / P(x*)`. The generic solver minimizes
//! that ratio; the closed forms of Examples 5.1 and 5.2 are provided and
//! differentially tested against it.

use crate::cost::RequestCost;
use crate::distribution::ExcessDistribution;

/// The solution of the unary bounding optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnaryOptimum {
    /// Optimal proposed bound x* (capped at the distribution's span: beyond
    /// it the user always agrees and larger proposals only cost more).
    pub x: f64,
    /// Expected total communication cost C*.
    pub cost: f64,
    /// Service-request cost at the optimum, R* = R(x*).
    pub request_cost: f64,
}

/// Generic numeric solution: golden-section minimization of
/// `(Cb + R(x)) / P(x)` over `(0, span]`. The objective is unimodal for the
/// cost/distribution families used in the paper.
pub fn unary_optimal(
    dist: &dyn ExcessDistribution,
    cost: &dyn RequestCost,
    cb: f64,
) -> UnaryOptimum {
    assert!(cb > 0.0, "Cb must be positive");
    let hi = dist.effective_span();
    let lo = hi * 1e-9;
    let objective = |x: f64| -> f64 {
        let p = dist.cdf(x);
        if p <= 0.0 {
            f64::INFINITY
        } else {
            (cb + cost.r(x)) / p
        }
    };
    let x = golden_section_min(objective, lo, hi);
    // If the interior optimum is essentially the span, snap to it: proposing
    // the full span always succeeds in one round.
    let x = x.min(hi);
    UnaryOptimum {
        x,
        cost: objective(x),
        request_cost: cost.r(x),
    }
}

/// Example 5.1 closed form — uniform excess on `(0, U)`, area cost
/// `R = Cr·x²`: the optimum is `x* = √(Cb/Cr)` (independent of U), capped
/// at U.
pub fn unary_uniform_area(cb: f64, cr: f64, span: f64) -> UnaryOptimum {
    assert!(cb > 0.0 && cr > 0.0 && span > 0.0);
    let x = (cb / cr).sqrt().min(span);
    let p = (x / span).min(1.0);
    let r = cr * x * x;
    UnaryOptimum {
        x,
        cost: (cb + r) / p,
        request_cost: r,
    }
}

/// Example 5.2 closed form — exponential excess with rate λ, length cost
/// `R = Cr·x`: solve the transcendental `e^{λx} = 1 + λ·Cb/Cr + λx` by
/// Newton's method (convex, so Newton from the right of the root converges
/// monotonically).
pub fn unary_exponential_length(cb: f64, cr: f64, lambda: f64) -> UnaryOptimum {
    assert!(cb > 0.0 && cr > 0.0 && lambda > 0.0);
    let a = lambda * cb / cr;
    // f(x) = e^{λx} − 1 − a − λx; f(0) = −a < 0 and f → ∞: unique positive root.
    let f = |x: f64| (lambda * x).exp() - 1.0 - a - lambda * x;
    let fp = |x: f64| lambda * ((lambda * x).exp() - 1.0);
    // Start right of the root: e^{λx} ≥ 1+a+λx is implied by λx ≥ ln(1+a)+… —
    // (2·(ln(1+a)+1))/λ overshoots comfortably for all a > 0.
    let mut x = 2.0 * ((1.0 + a).ln() + 1.0) / lambda;
    for _ in 0..64 {
        let step = f(x) / fp(x);
        x -= step;
        if step.abs() < 1e-14 * (1.0 + x.abs()) {
            break;
        }
    }
    let p = 1.0 - (-lambda * x).exp();
    let r = cr * x;
    UnaryOptimum {
        x,
        cost: (cb + r) / p,
        request_cost: r,
    }
}

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
pub(crate) fn golden_section_min(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..200 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
        if (hi - lo).abs() < 1e-14 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AreaCost, LengthCost};
    use crate::distribution::{Exponential, Uniform};

    #[test]
    fn uniform_area_closed_form_matches_example_5_1() {
        // x* = √(Cb/Cr), independent of U when it fits inside the span.
        let o = unary_uniform_area(1.0, 100.0, 1.0);
        assert!((o.x - 0.1).abs() < 1e-12);
        assert!((o.request_cost - 1.0).abs() < 1e-12); // Cr·x*² = Cb always
        let o2 = unary_uniform_area(1.0, 100.0, 0.5);
        assert!((o2.x - 0.1).abs() < 1e-12, "still independent of U");
    }

    #[test]
    fn uniform_area_caps_at_span() {
        // √(Cb/Cr) = 1.0 but U = 0.01: cap, one guaranteed round.
        let o = unary_uniform_area(1.0, 1.0, 0.01);
        assert_eq!(o.x, 0.01);
        assert!((o.cost - (1.0 + 1e-4)).abs() < 1e-9);
    }

    #[test]
    fn generic_solver_matches_uniform_closed_form() {
        for (cb, cr, span) in [(1.0, 100.0, 1.0), (2.0, 50.0, 0.4), (1.0, 1000.0, 0.02)] {
            let closed = unary_uniform_area(cb, cr, span);
            let numeric = unary_optimal(&Uniform::new(span), &AreaCost { cr }, cb);
            assert!(
                (closed.x - numeric.x).abs() < 1e-5 * span,
                "x mismatch: closed {} numeric {} (cb={cb},cr={cr},U={span})",
                closed.x,
                numeric.x
            );
            assert!((closed.cost - numeric.cost).abs() / closed.cost < 1e-6);
        }
    }

    #[test]
    fn exponential_newton_satisfies_stationarity() {
        for (cb, cr, lambda) in [(1.0, 1.0, 1.0), (1.0, 1000.0, 50.0), (5.0, 2.0, 0.3)] {
            let o = unary_exponential_length(cb, cr, lambda);
            let lhs = (lambda * o.x).exp();
            let rhs = 1.0 + lambda * cb / cr + lambda * o.x;
            assert!(
                (lhs - rhs).abs() / rhs < 1e-9,
                "transcendental not satisfied: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn generic_solver_close_to_exponential_closed_form() {
        let (cb, cr, lambda) = (1.0, 10.0, 2.0);
        let closed = unary_exponential_length(cb, cr, lambda);
        let numeric = unary_optimal(&Exponential::new(lambda), &LengthCost { cr }, cb);
        // Numeric caps at the 99.9% quantile; the closed root is far inside.
        assert!(
            (closed.x - numeric.x).abs() < 1e-4,
            "closed {} vs numeric {}",
            closed.x,
            numeric.x
        );
        assert!((closed.cost - numeric.cost).abs() / closed.cost < 1e-4);
    }

    #[test]
    fn optimum_beats_neighbors() {
        let dist = Uniform::new(0.3);
        let cost = AreaCost { cr: 40.0 };
        let o = unary_optimal(&dist, &cost, 1.0);
        let c = |x: f64| (1.0 + cost.r(x)) / dist.cdf(x);
        assert!(o.cost <= c(o.x * 0.9) + 1e-9);
        assert!(o.cost <= c((o.x * 1.1).min(0.3)) + 1e-9);
    }

    #[test]
    fn cost_is_at_least_cb() {
        // One verification round is unavoidable.
        let o = unary_optimal(&Uniform::new(1.0), &AreaCost { cr: 10.0 }, 1.0);
        assert!(o.cost >= 1.0);
    }
}
