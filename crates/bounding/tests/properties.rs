//! Property-based tests for the bounding protocols and optimizers.

use nela_bounding::baselines::{ExponentialPolicy, LinearPolicy};
use nela_bounding::cost::{AreaCost, LengthCost, RequestCost};
use nela_bounding::distribution::{ExcessDistribution, Exponential, Uniform};
use nela_bounding::nbound::{n_bounding_increment, SecurePolicy};
use nela_bounding::protocol::progressive_upper_bound;
use nela_bounding::unary::{unary_exponential_length, unary_optimal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exponential_unary_newton_is_stationary(
        cb in 0.1f64..5.0,
        cr in 0.5f64..500.0,
        lambda in 0.1f64..50.0,
    ) {
        let o = unary_exponential_length(cb, cr, lambda);
        let lhs = (lambda * o.x).exp();
        let rhs = 1.0 + lambda * cb / cr + lambda * o.x;
        prop_assert!((lhs - rhs).abs() / rhs < 1e-6, "lhs {lhs} rhs {rhs}");
        prop_assert!(o.x > 0.0 && o.cost >= cb);
    }

    #[test]
    fn exponential_numeric_optimum_beats_perturbations(
        cb in 0.1f64..5.0,
        cr in 0.5f64..100.0,
        lambda in 0.2f64..20.0,
    ) {
        let dist = Exponential::new(lambda);
        let cost = LengthCost { cr };
        let o = unary_optimal(&dist, &cost, cb);
        let c = |x: f64| (cb + cost.r(x)) / dist.cdf(x).max(1e-300);
        for factor in [0.8, 0.9, 1.1, 1.25] {
            let x = (o.x * factor).min(dist.effective_span());
            prop_assert!(o.cost <= c(x) + 1e-6 * o.cost, "{} beaten at ×{factor}", o.cost);
        }
    }

    #[test]
    fn increments_are_positive_and_capped(
        n in 1usize..40,
        span in 1e-4f64..1.0,
        cr in 1.0f64..1e8,
    ) {
        let dist = Uniform::new(span);
        let cost = AreaCost { cr };
        let x = n_bounding_increment(n, &dist, &cost, 1.0);
        prop_assert!(x > 0.0);
        prop_assert!(x <= span * (1.0 + 1e-9));
    }

    #[test]
    fn all_policies_cover_and_terminate(
        values in proptest::collection::vec(0.0f64..0.2, 1..25),
        span in 1e-3f64..0.1,
    ) {
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut policies: Vec<Box<dyn nela_bounding::protocol::IncrementPolicy>> = vec![
            Box::new(LinearPolicy::new(span / 4.0)),
            Box::new(ExponentialPolicy::new(span)),
            Box::new(SecurePolicy::new(Uniform::new(span), AreaCost { cr: 1e6 }, 1.0)),
        ];
        for p in policies.iter_mut() {
            let run = progressive_upper_bound(&values, 0.0, 0.0, p.as_mut()).unwrap();
            prop_assert!(run.bound >= max);
            prop_assert!(run.rounds >= 1);
            prop_assert_eq!(run.records.len(), values.len());
        }
    }

    #[test]
    fn messages_equal_sum_of_round_participants(
        values in proptest::collection::vec(0.0f64..0.3, 1..30),
        step in 0.005f64..0.1,
    ) {
        let run = progressive_upper_bound(&values, 0.0, 0.0, &mut LinearPolicy::new(step)).unwrap();
        // Each user is asked once per round from round 1 through the round it
        // agreed in: total messages = Σ_user round(user).
        let expected: u64 = run.records.iter().map(|r| r.round as u64).sum();
        prop_assert_eq!(run.messages, expected);
    }

    #[test]
    fn widened_distributions_stretch_consistently(
        span in 1e-3f64..1.0,
        rate in 0.1f64..50.0,
        factor in 1.0f64..16.0,
    ) {
        let u = Uniform::new(span).widened(factor);
        prop_assert!((u.span - span * factor).abs() < 1e-12);
        let e = Exponential::new(rate).widened(factor);
        // Widening divides the rate → multiplies the mean.
        prop_assert!((e.rate - rate / factor).abs() < 1e-12);
        // CDF mass moves right: at any x, the widened CDF is ≤ the original.
        for x in [span * 0.5, span, span * 2.0] {
            prop_assert!(e.cdf(x) <= Exponential::new(rate).cdf(x) + 1e-12);
            prop_assert!(u.cdf(x) <= Uniform::new(span).cdf(x) + 1e-12);
        }
    }
}
